//! # linkpad
//!
//! A complete Rust implementation of the link-padding traffic-analysis
//! countermeasure system of **Fu, Graham, Bettati, Zhao and Xuan,
//! "Analytical and Empirical Analysis of Countermeasures to Traffic
//! Analysis Attacks" (ICPP 2003)** — the padding gateways (CIT and VIT),
//! the statistical adversary, the closed-form detection-rate theory, and
//! the simulated networks the paper's evaluation ran on.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a short module name.
//!
//! ```
//! use linkpad::prelude::*;
//!
//! // Build the paper's laboratory experiment: CIT padding, 40 pps
//! // payload, adversary tapping right at the sender gateway.
//! let piats_high = piats_for(
//!     &ScenarioBuilder::lab(1).with_payload_rate(40.0),
//!     TapPosition::SenderEgress,
//!     4_000,
//!     50,
//! )
//! .unwrap();
//! let piats_low = piats_for(
//!     &ScenarioBuilder::lab(2).with_payload_rate(10.0),
//!     TapPosition::SenderEgress,
//!     4_000,
//!     50,
//! )
//! .unwrap();
//!
//! // Attack with the sample-variance feature at n = 500.
//! let study = DetectionStudy { sample_size: 500, train_samples: 5, test_samples: 3 };
//! let report = study.run(&SampleVariance, &[piats_low, piats_high]).unwrap();
//! assert!(report.detection_rate() >= 0.5);
//! ```
//!
//! See `DESIGN.md` (workspace root) for the system inventory and the
//! per-figure experiment index, and `BENCH_1.json` for the recorded
//! performance baseline.

#![forbid(unsafe_code)]

/// Statistics substrate (special functions, distributions, KDE, RNG).
pub use linkpad_stats as stats;

/// Discrete-event network simulator (links, routers, taps).
pub use linkpad_sim as sim;

/// The padding countermeasure (schedules, gateways, jitter model).
pub use linkpad_core as core;

/// Workload generators and lab/campus/WAN scenarios.
pub use linkpad_workloads as workloads;

/// The statistical adversary (features, KDE-Bayes, detection pipeline).
pub use linkpad_adversary as adversary;

/// Closed-form theory: Theorems 1–3, planning, design guidelines.
pub use linkpad_analytic as analytic;

/// Real-time in-process testbed (real threads and timers).
pub use linkpad_testbed as testbed;

/// The names almost every program wants.
pub mod prelude {
    pub use linkpad_adversary::classifier::KdeBayes;
    pub use linkpad_adversary::feature::{
        Feature, MedianAbsDev, SampleEntropy, SampleMean, SampleVariance,
    };
    pub use linkpad_adversary::pipeline::{DetectionReport, DetectionStudy};
    pub use linkpad_analytic::guidelines::{DesignGuideline, DesignInput};
    pub use linkpad_analytic::planning::{required_sample_size, FeatureKind};
    pub use linkpad_analytic::ratio::VarianceComponents;
    pub use linkpad_analytic::theorems::{
        detection_rate_entropy, detection_rate_mean, detection_rate_variance,
    };
    pub use linkpad_core::calibration::CalibratedDefaults;
    pub use linkpad_core::gateway::TimerDiscipline;
    pub use linkpad_core::jitter::GatewayJitterModel;
    pub use linkpad_core::schedule::PaddingSchedule;
    pub use linkpad_sim::cohort::{CohortJitter, FlowCohort};
    pub use linkpad_sim::observer::{ObserverHandle, WindowStats, WindowedObserver};
    pub use linkpad_sim::parallel::{parallel_map, parallel_map_init};
    pub use linkpad_sim::time::{SimDuration, SimTime};
    pub use linkpad_stats::rng::MasterSeed;
    pub use linkpad_testbed::live::{run_live, LiveConfig};
    pub use linkpad_workloads::aggregate::PhaseSpec;
    pub use linkpad_workloads::cross::DiurnalProfile;
    pub use linkpad_workloads::scenario::{
        piats_for, AggregateHandles, BuiltScenario, ScenarioBuilder, TapPosition,
    };
    pub use linkpad_workloads::shard::{ShardedAggregate, ShardedRun};
    pub use linkpad_workloads::spec::{HopSpec, PayloadSpec, ScheduleSpec};
}
