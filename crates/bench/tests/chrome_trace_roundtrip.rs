//! The exported Chrome trace-event JSON must stay inside the subset of
//! JSON the workspace's own mini parser (`linkpad_bench::compare::Json`)
//! understands — the same discipline every `BENCH_N.json` follows.
//! Perfetto / `chrome://tracing` are strictly more permissive, so
//! round-tripping through the strict parser is the cheap local proof
//! the export is well-formed.

use linkpad_bench::compare::Json;
use linkpad_sim::engine::{Context, SimBuilder};
use linkpad_sim::node::{Node, NodeId};
use linkpad_sim::packet::{FlowId, Packet, PacketKind};
use linkpad_sim::time::{SimDuration, SimTime};
use linkpad_stats::rng::MasterSeed;

struct Ticker {
    sink: NodeId,
    remaining: u64,
}

impl Node for Ticker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.schedule_timer(SimDuration::from_nanos(700), 0);
    }
    fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_>) {
        let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 500);
        ctx.send_after(SimDuration::from_nanos(300), self.sink, pkt);
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.schedule_timer(SimDuration::from_nanos(700), 0);
        }
    }
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
    fn label(&self) -> &str {
        "ticker"
    }
}

struct Sink;

impl Node for Sink {
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
    fn label(&self) -> &str {
        "sink"
    }
}

fn traced_report() -> linkpad_obs::TraceReport {
    let mut b = SimBuilder::new(MasterSeed::new(5));
    let sink = b.add_node(Box::new(Sink));
    b.add_node(Box::new(Ticker {
        sink,
        remaining: 50,
    }));
    let mut sim = b.build().expect("sim builds").with_tracing();
    sim.run_until(SimTime::ZERO + SimDuration::from_nanos(100_000));
    sim.trace_report().expect("tracing was enabled")
}

#[test]
fn chrome_trace_json_round_trips_through_the_mini_parser() {
    let report = traced_report();
    assert!(!report.records.is_empty());
    let text = report.chrome_trace_json();
    let json = Json::parse(&text).expect("chrome trace parses with the strict mini parser");

    assert_eq!(
        json.get("displayTimeUnit"),
        Some(&Json::Str("ms".to_string()))
    );
    let Some(Json::Arr(events)) = json.get("traceEvents") else {
        panic!("traceEvents is an array")
    };
    // One thread_name metadata event per node track + one instant event
    // per recorded trace record.
    let metadata: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph") == Some(&Json::Str("M".to_string())))
        .collect();
    let instants: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph") == Some(&Json::Str("i".to_string())))
        .collect();
    assert_eq!(metadata.len(), report.node_labels.len());
    assert_eq!(instants.len(), report.records.len());
    assert_eq!(events.len(), metadata.len() + instants.len());

    // Every instant event carries the provenance args the exporter
    // promises: seq always, parent only for non-root events.
    let mut with_parent = 0usize;
    for e in &instants {
        let args = e.get("args").expect("instant has args");
        assert!(args.get("seq").and_then(Json::as_f64).is_some());
        assert!(args.get("batch").and_then(Json::as_f64).is_some());
        assert!(e.get("tid").and_then(Json::as_f64).is_some());
        assert!(e.get("ts").is_some());
        if args.get("parent").is_some() {
            with_parent += 1;
        }
    }
    // The ticker chain guarantees non-root records (every delivery and
    // every re-armed timer has a recorded parent at stride 1).
    assert!(with_parent > 0, "provenance survived the export");
    assert!(with_parent < instants.len(), "the first timer is a root");
}

#[test]
fn collapsed_stacks_are_flamegraph_shaped() {
    let report = traced_report();
    let folded = report.collapsed_stacks();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("frames <space> weight");
        assert!(weight.parse::<u64>().is_ok(), "weight is a count: {line}");
        assert!(
            stack
                .split(';')
                .all(|f| f.contains(':') || f == "[deep]" || f == "[truncated]"),
            "frames are label:kind or a fold marker: {line}"
        );
    }
}
