//! End-to-end checks of the aggregate-link adversary pipeline at test
//! budgets: simulator → streaming trunk observer → estimator/classifier.
//! The full sweep lives in the `fig_aggregate_adversary` binary; these
//! are the fast guards that the pieces stay wired together.

use linkpad_adversary::aggregate::{best_phase, estimate_flow_count};
use linkpad_adversary::feature::SampleMean;
use linkpad_adversary::pipeline::DetectionStudy;
use linkpad_sim::time::SimTime;
use linkpad_workloads::scenario::ScenarioBuilder;

/// Run an aggregate observer scenario and return steady-state window
/// counts (boot windows skipped).
fn window_counts(flows: usize, window: f64, skip: usize, measured: usize) -> Vec<f64> {
    let b = ScenarioBuilder::aggregate(5 + flows as u64, flows)
        .with_payload_rate(10.0)
        .with_trunk_observer(window);
    let mut s = b.build().expect("scenario builds");
    s.run_for_secs(window * (skip + measured + 1) as f64);
    let obs = s
        .aggregate
        .as_ref()
        .unwrap()
        .trunk_observer
        .clone()
        .unwrap();
    let counts = obs.counts();
    counts[skip..skip + measured].to_vec()
}

#[test]
fn flow_count_estimation_is_within_ten_percent() {
    let tau = ScenarioBuilder::aggregate(1, 1).defaults.tau;
    let window = 20.0 * tau;
    for flows in [10usize, 100] {
        let counts = window_counts(flows, window, 5, 12);
        let est = estimate_flow_count(&counts, window / tau).unwrap();
        assert!(
            est.relative_error(flows) <= 0.10,
            "N = {flows}: n_hat = {} ({}% off)",
            est.n_hat,
            est.relative_error(flows) * 100.0
        );
        assert_eq!(est.rounded() as usize, flows);
    }
}

#[test]
fn target_rate_detection_works_in_the_per_flow_regime() {
    // N = 1 is the degenerate aggregate — the lab regime seen through
    // window statistics. The window-feature adversary must beat chance
    // comfortably here; at larger N dilution erodes it (measured by the
    // fig binary, not gated here).
    let (dwell, w) = (2.0, 0.1);
    let study = DetectionStudy {
        sample_size: 4,
        train_samples: 30,
        test_samples: 20,
    };
    let needed = study.piats_needed();
    let per_seg = (dwell / w) as usize - 2;
    let sim_secs = dwell + (needed.div_ceil(per_seg) + 1) as f64 * 2.0 * dwell;
    let b = ScenarioBuilder::aggregate(77, 1)
        .with_trunk_observer(w)
        .with_switching_target([10.0, 40.0], dwell);
    let mut s = b.build().expect("scenario builds");
    s.run_for_secs(sim_secs);
    let agg = s.aggregate.as_ref().unwrap();
    let obs = agg.trunk_observer.clone().unwrap();
    let log = agg.target_rate_log.clone().unwrap();
    let vars = obs.piat_variances();
    let mut streams = [Vec::new(), Vec::new()];
    for (i, &v) in vars.iter().enumerate().skip((dwell / w) as usize) {
        let mid = (i as f64 + 0.5) * w;
        let phase = mid % dwell;
        if phase < w || phase > dwell - w || !v.is_finite() {
            continue;
        }
        if let Some(r) = log.rate_at(SimTime::from_secs_f64(mid)) {
            if r == 10.0 {
                streams[0].push(v);
            } else if r == 40.0 {
                streams[1].push(v);
            }
        }
    }
    for stream in &mut streams {
        assert!(stream.len() >= needed, "{} < {needed}", stream.len());
        stream.truncate(needed);
    }
    let report = study.run(&SampleMean, &streams).unwrap();
    let rate = report.detection_rate();
    assert!(rate > 0.65, "window-feature adversary near chance: {rate}");
    // The signature detector locks onto the true switching period
    // (correlating the steady-state series, boot dwell dropped)…
    let steady = &vars[(dwell / w) as usize..];
    let period = 2.0 * dwell / w;
    let (_, r_true) = best_phase(steady, period, 16).unwrap();
    assert!(r_true.abs() > 0.25, "no signature lock: {r_true}");
    // …and substantially less onto a wrong one.
    let (_, r_wrong) = best_phase(steady, period * 0.73, 16).unwrap();
    assert!(
        r_true.abs() > r_wrong.abs(),
        "true {r_true} vs wrong {r_wrong}"
    );
}
