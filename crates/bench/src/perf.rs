//! Engine-throughput microbenches shared by the criterion bench
//! (`benches/crit_kernels.rs`) and the `perf_baseline` binary.
//!
//! Workload: `pending` concurrent self-re-arming timers with co-prime
//! periods; every fire also sends one packet to a sink. That is the
//! gateway-tick shape every scenario in this workspace reduces to, and it
//! keeps `pending × 2` events resident in the event store — the regime
//! where the store's asymptotics dominate.
//!
//! Two implementations run the identical workload:
//!
//! * [`sim_events_per_sec`] — the real `linkpad-sim` engine (calendar
//!   queue + slab arena).
//! * [`heap_reference_events_per_sec`] — a faithful replica of the
//!   pre-rewrite engine: `BinaryHeap<HeapEntry>` with the packet payload
//!   inline in the heap nodes and the same `(time, seq)` FIFO ordering,
//!   driving the same boxed-trait-object dispatch.

use linkpad_sim::engine::{Context, SimBuilder};
use linkpad_sim::node::{Node, NodeId};
use linkpad_sim::packet::{FlowId, Packet, PacketKind};
use linkpad_sim::time::{SimDuration, SimTime};
use linkpad_stats::rng::MasterSeed;
use linkpad_workloads::scenario::{piats_for, ScenarioBuilder, TapPosition};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Spread of bench timer periods (ns): co-prime-ish steps over ~1 decade
/// so event times interleave instead of phase-locking.
fn period_ns(i: usize) -> u64 {
    10_000 + 7919 * (i as u64 % 13)
}

struct BenchTicker {
    sink: NodeId,
    period: SimDuration,
    remaining: u64,
}

impl Node for BenchTicker {
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.schedule_timer(self.period, 0);
    }
    fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_>) {
        let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 500);
        ctx.send_after(SimDuration::from_nanos(500), self.sink, pkt);
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.schedule_timer(self.period, 0);
        }
    }
}

struct NullSink {
    received: u64,
}

impl Node for NullSink {
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {
        self.received += 1;
    }
}

/// Total events the timer workload generates for the given shape.
fn workload_events(events: u64, pending: usize) -> (u64, u64) {
    let fires = (events / (2 * pending as u64)).max(1);
    (fires, fires * pending as u64 * 2)
}

/// Run the timer workload on the real engine; returns events/sec.
pub fn sim_events_per_sec(events: u64, pending: usize) -> f64 {
    let (fires, total) = workload_events(events, pending);
    let mut b = SimBuilder::new(MasterSeed::new(1));
    let sink = b.add_node(Box::new(NullSink { received: 0 }));
    for i in 0..pending {
        b.add_node(Box::new(BenchTicker {
            sink,
            period: SimDuration::from_nanos(period_ns(i)),
            remaining: fires,
        }));
    }
    let mut sim = b.build().expect("bench sim builds");
    let start = Instant::now();
    let stats = sim.run_until(SimTime::MAX);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(stats.events, total, "engine processed the whole workload");
    total as f64 / elapsed
}

// ---- The pre-rewrite reference engine ---------------------------------

enum RefEventKind {
    Deliver(Packet),
    // The tag payload mirrors the old engine's entry layout (it sized
    // the enum); the reference workload never reads it.
    Timer(#[allow(dead_code)] u64),
}

struct HeapEntry {
    time: SimTime,
    seq: u64,
    target: usize,
    kind: RefEventKind,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

/// Node interface of the reference engine (boxed dyn dispatch, like the
/// real one).
trait RefNode {
    fn on_timer(&mut self, ctx: &mut RefCtx<'_>);
    fn on_packet(&mut self, pkt: Packet, ctx: &mut RefCtx<'_>);
}

struct RefCtx<'a> {
    now: SimTime,
    self_id: usize,
    heap: &'a mut BinaryHeap<HeapEntry>,
    seq: &'a mut u64,
    next_packet_id: &'a mut u64,
}

impl RefCtx<'_> {
    fn schedule_timer(&mut self, delay: SimDuration) {
        let seq = *self.seq;
        *self.seq += 1;
        self.heap.push(HeapEntry {
            time: self.now + delay,
            seq,
            target: self.self_id,
            kind: RefEventKind::Timer(0),
        });
    }
    fn send_after(&mut self, delay: SimDuration, dst: usize, pkt: Packet) {
        let seq = *self.seq;
        *self.seq += 1;
        self.heap.push(HeapEntry {
            time: self.now + delay,
            seq,
            target: dst,
            kind: RefEventKind::Deliver(pkt),
        });
    }
    fn spawn_packet(&mut self) -> Packet {
        let id = *self.next_packet_id;
        *self.next_packet_id += 1;
        Packet::new(id, FlowId::PADDED, PacketKind::Dummy, 500, self.now)
    }
}

struct RefTicker {
    sink: usize,
    period: SimDuration,
    remaining: u64,
}

impl RefNode for RefTicker {
    fn on_timer(&mut self, ctx: &mut RefCtx<'_>) {
        let pkt = ctx.spawn_packet();
        ctx.send_after(SimDuration::from_nanos(500), self.sink, pkt);
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.schedule_timer(self.period);
        }
    }
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut RefCtx<'_>) {}
}

struct RefSink {
    received: u64,
}

impl RefNode for RefSink {
    fn on_timer(&mut self, _ctx: &mut RefCtx<'_>) {}
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut RefCtx<'_>) {
        self.received += 1;
    }
}

/// Run the identical timer workload on the `BinaryHeap` reference
/// engine; returns events/sec.
pub fn heap_reference_events_per_sec(events: u64, pending: usize) -> f64 {
    let (fires, total) = workload_events(events, pending);
    let mut nodes: Vec<Box<dyn RefNode>> = Vec::with_capacity(pending + 1);
    nodes.push(Box::new(RefSink { received: 0 }));
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    let mut next_packet_id = 0u64;
    for i in 0..pending {
        nodes.push(Box::new(RefTicker {
            sink: 0,
            period: SimDuration::from_nanos(period_ns(i)),
            remaining: fires,
        }));
        // on_start equivalent: arm the first tick.
        heap.push(HeapEntry {
            time: SimTime::ZERO + SimDuration::from_nanos(period_ns(i)),
            seq,
            target: i + 1,
            kind: RefEventKind::Timer(0),
        });
        seq += 1;
    }

    let start = Instant::now();
    let mut processed = 0u64;
    while let Some(entry) = heap.pop() {
        let mut ctx = RefCtx {
            now: entry.time,
            self_id: entry.target,
            heap: &mut heap,
            seq: &mut seq,
            next_packet_id: &mut next_packet_id,
        };
        // Mirror the old engine: one boxed virtual call per event.
        let node = &mut nodes[entry.target];
        match entry.kind {
            RefEventKind::Timer(_) => node.on_timer(&mut ctx),
            RefEventKind::Deliver(pkt) => node.on_packet(pkt, &mut ctx),
        }
        processed += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(processed, total, "reference processed the whole workload");
    total as f64 / elapsed
}

/// Wall-clock seconds for a representative two-class lab collection of
/// `piats_per_class` PIATs (the unit of work every detection point
/// repeats hundreds of times).
pub fn sweep_wall_clock_secs(piats_per_class: usize) -> f64 {
    let start = Instant::now();
    for (seed, rate) in [(101u64, 10.0), (102u64, 40.0)] {
        let b = ScenarioBuilder::lab(seed).with_payload_rate(rate);
        let piats = piats_for(&b, TapPosition::SenderEgress, piats_per_class, 64)
            .expect("baseline collection succeeds");
        assert_eq!(piats.len(), piats_per_class);
    }
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_complete_the_same_workload() {
        // Tiny shape: correctness only, not timing.
        let eps_new = sim_events_per_sec(2_000, 16);
        let eps_ref = heap_reference_events_per_sec(2_000, 16);
        assert!(eps_new > 0.0 && eps_ref > 0.0);
    }

    #[test]
    fn workload_accounting_is_exact() {
        let (fires, total) = workload_events(1000, 10);
        assert_eq!(fires, 50);
        assert_eq!(total, 1000);
        // Degenerate: at least one fire each.
        let (fires, total) = workload_events(1, 8);
        assert_eq!(fires, 1);
        assert_eq!(total, 16);
    }
}
