//! Engine-throughput microbenches shared by the criterion bench
//! (`benches/crit_kernels.rs`) and the `perf_baseline` binary.
//!
//! Workload: `pending` concurrent self-re-arming timers with co-prime
//! periods; every fire also sends one packet to a sink. That is the
//! gateway-tick shape every scenario in this workspace reduces to, and it
//! keeps `pending × 2` events resident in the event store — the regime
//! where the store's asymptotics dominate.
//!
//! Two implementations run the identical workload:
//!
//! * [`sim_events_per_sec`] — the real `linkpad-sim` engine (calendar
//!   queue + slab arena).
//! * [`heap_reference_events_per_sec`] — a faithful replica of the
//!   pre-rewrite engine: `BinaryHeap<HeapEntry>` with the packet payload
//!   inline in the heap nodes and the same `(time, seq)` FIFO ordering,
//!   driving the same boxed-trait-object dispatch.

use linkpad_sim::engine::{Context, Sim, SimBuilder};
use linkpad_sim::node::{Node, NodeId};
use linkpad_sim::packet::{FlowId, Packet, PacketKind};
use linkpad_sim::time::{SimDuration, SimTime};
use linkpad_stats::rng::MasterSeed;
use linkpad_workloads::scenario::{piats_for, ScenarioBuilder, TapPosition};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Spread of bench timer periods (ns): co-prime-ish steps over ~1 decade
/// so event times interleave instead of phase-locking.
fn period_ns(i: usize) -> u64 {
    10_000 + 7919 * (i as u64 % 13)
}

struct BenchTicker {
    sink: NodeId,
    period: SimDuration,
    remaining: u64,
}

impl Node for BenchTicker {
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.schedule_timer(self.period, 0);
    }
    fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_>) {
        let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 500);
        ctx.send_after(SimDuration::from_nanos(500), self.sink, pkt);
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.schedule_timer(self.period, 0);
        }
    }
}

struct NullSink {
    received: u64,
}

impl Node for NullSink {
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {
        self.received += 1;
    }
}

/// Total events the timer workload generates for the given shape.
fn workload_events(events: u64, pending: usize) -> (u64, u64) {
    let fires = (events / (2 * pending as u64)).max(1);
    (fires, fires * pending as u64 * 2)
}

/// Run the timer workload on the real engine; returns events/sec.
pub fn sim_events_per_sec(events: u64, pending: usize) -> f64 {
    sim_events_per_sec_with(events, pending, |_| {})
}

/// [`sim_events_per_sec`] with a pre-run engine configurator — how the
/// telemetry gate times the identical workload with profiling in its
/// plain / enabled-then-disabled / enabled states.
fn sim_events_per_sec_with(events: u64, pending: usize, configure: impl FnOnce(&mut Sim)) -> f64 {
    let (fires, total) = workload_events(events, pending);
    let mut b = SimBuilder::new(MasterSeed::new(1));
    let sink = b.add_node(Box::new(NullSink { received: 0 }));
    for i in 0..pending {
        b.add_node(Box::new(BenchTicker {
            sink,
            period: SimDuration::from_nanos(period_ns(i)),
            remaining: fires,
        }));
    }
    let mut sim = b.build().expect("bench sim builds");
    configure(&mut sim);
    let start = Instant::now();
    let stats = sim.run_until(SimTime::MAX);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(stats.events, total, "engine processed the whole workload");
    total as f64 / elapsed
}

// ---- The pre-rewrite reference engine ---------------------------------

enum RefEventKind {
    Deliver(Packet),
    // The tag payload mirrors the old engine's entry layout (it sized
    // the enum); the reference workload never reads it.
    Timer(#[allow(dead_code)] u64),
}

struct HeapEntry {
    time: SimTime,
    seq: u64,
    target: usize,
    kind: RefEventKind,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

/// Node interface of the reference engine (boxed dyn dispatch, like the
/// real one).
trait RefNode {
    fn on_timer(&mut self, ctx: &mut RefCtx<'_>);
    fn on_packet(&mut self, pkt: Packet, ctx: &mut RefCtx<'_>);
}

struct RefCtx<'a> {
    now: SimTime,
    self_id: usize,
    heap: &'a mut BinaryHeap<HeapEntry>,
    seq: &'a mut u64,
    next_packet_id: &'a mut u64,
}

impl RefCtx<'_> {
    fn schedule_timer(&mut self, delay: SimDuration) {
        let seq = *self.seq;
        *self.seq += 1;
        self.heap.push(HeapEntry {
            time: self.now + delay,
            seq,
            target: self.self_id,
            kind: RefEventKind::Timer(0),
        });
    }
    fn send_after(&mut self, delay: SimDuration, dst: usize, pkt: Packet) {
        let seq = *self.seq;
        *self.seq += 1;
        self.heap.push(HeapEntry {
            time: self.now + delay,
            seq,
            target: dst,
            kind: RefEventKind::Deliver(pkt),
        });
    }
    fn spawn_packet(&mut self) -> Packet {
        let id = *self.next_packet_id;
        *self.next_packet_id += 1;
        Packet::new(id, FlowId::PADDED, PacketKind::Dummy, 500, self.now)
    }
}

struct RefTicker {
    sink: usize,
    period: SimDuration,
    remaining: u64,
}

impl RefNode for RefTicker {
    fn on_timer(&mut self, ctx: &mut RefCtx<'_>) {
        let pkt = ctx.spawn_packet();
        ctx.send_after(SimDuration::from_nanos(500), self.sink, pkt);
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.schedule_timer(self.period);
        }
    }
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut RefCtx<'_>) {}
}

struct RefSink {
    received: u64,
}

impl RefNode for RefSink {
    fn on_timer(&mut self, _ctx: &mut RefCtx<'_>) {}
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut RefCtx<'_>) {
        self.received += 1;
    }
}

/// Run the identical timer workload on the `BinaryHeap` reference
/// engine; returns events/sec.
pub fn heap_reference_events_per_sec(events: u64, pending: usize) -> f64 {
    let (fires, total) = workload_events(events, pending);
    let mut nodes: Vec<Box<dyn RefNode>> = Vec::with_capacity(pending + 1);
    nodes.push(Box::new(RefSink { received: 0 }));
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    let mut next_packet_id = 0u64;
    for i in 0..pending {
        nodes.push(Box::new(RefTicker {
            sink: 0,
            period: SimDuration::from_nanos(period_ns(i)),
            remaining: fires,
        }));
        // on_start equivalent: arm the first tick.
        heap.push(HeapEntry {
            time: SimTime::ZERO + SimDuration::from_nanos(period_ns(i)),
            seq,
            target: i + 1,
            kind: RefEventKind::Timer(0),
        });
        seq += 1;
    }

    let start = Instant::now();
    let mut processed = 0u64;
    while let Some(entry) = heap.pop() {
        let mut ctx = RefCtx {
            now: entry.time,
            self_id: entry.target,
            heap: &mut heap,
            seq: &mut seq,
            next_packet_id: &mut next_packet_id,
        };
        // Mirror the old engine: one boxed virtual call per event.
        let node = &mut nodes[entry.target];
        match entry.kind {
            RefEventKind::Timer(_) => node.on_timer(&mut ctx),
            RefEventKind::Deliver(pkt) => node.on_packet(pkt, &mut ctx),
        }
        processed += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(processed, total, "reference processed the whole workload");
    total as f64 / elapsed
}

/// Wall-clock seconds for a representative two-class lab collection of
/// `piats_per_class` PIATs (the unit of work every detection point
/// repeats hundreds of times).
pub fn sweep_wall_clock_secs(piats_per_class: usize) -> f64 {
    let start = Instant::now();
    for (seed, rate) in [(101u64, 10.0), (102u64, 40.0)] {
        let b = ScenarioBuilder::lab(seed).with_payload_rate(rate);
        let piats = piats_for(&b, TapPosition::SenderEgress, piats_per_class, 64)
            .expect("baseline collection succeeds");
        assert_eq!(piats.len(), piats_per_class);
    }
    start.elapsed().as_secs_f64()
}

// ---- Aggregate trunk workload -----------------------------------------
//
// The store-bound regime as a *scenario-shaped* workload instead of a
// bag of independent timers: `flows` gateway tickers (period ~τ, jittered
// co-prime so ticks interleave) each send every fire into one shared
// trunk relay, which forwards after a long-haul `propagation`. At steady
// state the pending set holds one armed timer per flow **plus**
// `propagation/τ` in-flight trunk packets per flow — `flows × 11` with
// the default ×10 propagation — which is exactly the shape
// `ScenarioBuilder::aggregate` produces, minus per-event gateway work,
// so the engine-vs-heap ratio isolates the event store.

/// Ticker period for aggregate flow `i` (ns): ~1 ms ± a co-prime spread.
fn trunk_period_ns(i: usize) -> u64 {
    1_000_000 + 7919 * (i as u64 % 13)
}

/// Trunk propagation delay as a multiple of the base period.
const TRUNK_PROPAGATION_TICKS: u64 = 10;

/// Fan-in relay: forwards every packet after a fixed propagation delay
/// (the trunk's in-flight population is the store-bound pending mass).
struct TrunkRelay {
    next: NodeId,
    propagation: SimDuration,
}

impl Node for TrunkRelay {
    fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
        ctx.send_after(self.propagation, self.next, p);
    }
}

/// Result of one aggregate-trunk measurement.
#[derive(Debug, Clone, Copy)]
pub struct TrunkMeasurement {
    /// Events per wall-clock second over the timed (steady-state) span.
    pub events_per_sec: f64,
    /// Concurrent pending events observed at steady state, just before
    /// the timed span.
    pub pending: usize,
}

/// Total fires per ticker so the workload generates ~`events` events
/// (timer + trunk delivery + sink delivery per fire).
fn trunk_fires(events: u64, flows: usize) -> u64 {
    (events / (3 * flows as u64)).max(TRUNK_PROPAGATION_TICKS * 4)
}

/// Run the aggregate-trunk workload on the real engine.
pub fn aggregate_trunk_events_per_sec(events: u64, flows: usize) -> TrunkMeasurement {
    let fires = trunk_fires(events, flows);
    let mut b = SimBuilder::new(MasterSeed::new(1));
    let sink = b.add_node(Box::new(NullSink { received: 0 }));
    let trunk = b.add_node(Box::new(TrunkRelay {
        next: sink,
        propagation: SimDuration::from_nanos(1_000_000 * TRUNK_PROPAGATION_TICKS),
    }));
    for i in 0..flows {
        b.add_node(Box::new(BenchTicker {
            sink: trunk,
            period: SimDuration::from_nanos(trunk_period_ns(i)),
            remaining: fires,
        }));
    }
    let mut sim = b.build().expect("trunk sim builds");
    // Warm up past the propagation horizon so the in-flight population
    // is at steady state, then time the rest of the drain.
    let warmup = SimDuration::from_nanos(1_000_000 * TRUNK_PROPAGATION_TICKS * 2);
    let warm = sim.run_for(warmup);
    let pending = sim.pending_events();
    let start = Instant::now();
    let stats = sim.run_until(SimTime::MAX);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        warm.events + stats.events,
        fires * flows as u64 * 3,
        "engine processed the whole trunk workload"
    );
    TrunkMeasurement {
        events_per_sec: stats.events as f64 / elapsed,
        pending,
    }
}

/// Relay node for the heap-reference engine.
struct RefTrunkRelay {
    next: usize,
    propagation: SimDuration,
}

impl RefNode for RefTrunkRelay {
    fn on_timer(&mut self, _ctx: &mut RefCtx<'_>) {}
    fn on_packet(&mut self, pkt: Packet, ctx: &mut RefCtx<'_>) {
        ctx.send_after(self.propagation, self.next, pkt);
    }
}

/// Run the identical aggregate-trunk workload on the `BinaryHeap`
/// reference engine.
pub fn heap_reference_aggregate_events_per_sec(events: u64, flows: usize) -> TrunkMeasurement {
    let fires = trunk_fires(events, flows);
    let propagation = SimDuration::from_nanos(1_000_000 * TRUNK_PROPAGATION_TICKS);
    let mut nodes: Vec<Box<dyn RefNode>> = Vec::with_capacity(flows + 2);
    nodes.push(Box::new(RefSink { received: 0 }));
    nodes.push(Box::new(RefTrunkRelay {
        next: 0,
        propagation,
    }));
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    let mut next_packet_id = 0u64;
    for i in 0..flows {
        nodes.push(Box::new(RefTicker {
            sink: 1, // the trunk relay
            period: SimDuration::from_nanos(trunk_period_ns(i)),
            remaining: fires,
        }));
        heap.push(HeapEntry {
            time: SimTime::ZERO + SimDuration::from_nanos(trunk_period_ns(i)),
            seq,
            target: i + 2,
            kind: RefEventKind::Timer(0),
        });
        seq += 1;
    }

    let total = fires * flows as u64 * 3;
    let warmup_until = SimTime::ZERO + propagation + propagation;
    let mut warm_events = 0u64;
    let mut pending = heap.len();
    let mut timed_events = 0u64;
    let mut timing = false;
    let mut start = Instant::now();
    while let Some(entry) = heap.pop() {
        if !timing && entry.time > warmup_until {
            pending = heap.len() + 1; // the entry just popped is pending work
            timing = true;
            start = Instant::now();
        }
        let mut ctx = RefCtx {
            now: entry.time,
            self_id: entry.target,
            heap: &mut heap,
            seq: &mut seq,
            next_packet_id: &mut next_packet_id,
        };
        let node = &mut nodes[entry.target];
        match entry.kind {
            RefEventKind::Timer(_) => node.on_timer(&mut ctx),
            RefEventKind::Deliver(pkt) => node.on_packet(pkt, &mut ctx),
        }
        if timing {
            timed_events += 1;
        } else {
            warm_events += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        warm_events + timed_events,
        total,
        "reference processed the whole trunk workload"
    );
    TrunkMeasurement {
        events_per_sec: timed_events as f64 / elapsed,
        pending,
    }
}

/// Events/sec and steady-state pending count of the **real** aggregate
/// scenario (`ScenarioBuilder::aggregate`): full gateways, sources,
/// taps and demux, on a long-haul trunk. Slower per event than the
/// synthetic shape (gateway RNG + instrumentation ride on every tick);
/// recorded alongside it so the baseline shows both numbers.
pub fn aggregate_scenario_events_per_sec(flows: usize, sim_secs: f64) -> TrunkMeasurement {
    let b = ScenarioBuilder::aggregate(1, flows).with_trunk(10e9, 0.1);
    scenario_throughput(b, sim_secs)
}

/// Warm a built aggregate scenario past the trunk horizon, then time
/// `sim_secs` of steady-state simulation.
fn scenario_throughput(b: ScenarioBuilder, sim_secs: f64) -> TrunkMeasurement {
    scenario_throughput_with(b, sim_secs, |_| {})
}

/// [`scenario_throughput`] with an engine configurator applied after
/// the warm-up, immediately before the timed span.
fn scenario_throughput_with(
    b: ScenarioBuilder,
    sim_secs: f64,
    configure: impl FnOnce(&mut Sim),
) -> TrunkMeasurement {
    let mut s = b.build().expect("aggregate scenario builds");
    // Warm past the 100 ms trunk so the in-flight population is steady.
    s.run_for_secs(0.25);
    let pending = s.sim.pending_events();
    let before = s.sim.events_processed();
    configure(&mut s.sim);
    let start = Instant::now();
    s.run_for_secs(sim_secs);
    let elapsed = start.elapsed().as_secs_f64();
    TrunkMeasurement {
        events_per_sec: (s.sim.events_processed() - before) as f64 / elapsed,
        pending,
    }
}

// ---- Telemetry overhead -----------------------------------------------

/// Paired measurement of what engine self-profiling costs one workload,
/// in three configurations run back to back:
///
/// * **plain** — profiling never touched: the pre-telemetry code path
///   plus the one routing branch per `run_until` call.
/// * **disabled** — profiling enabled then disabled before the timed
///   span. Must match `plain` to measurement noise: `disable_profiling`
///   has to restore the exact fast path, leaving no residual state or
///   indirection behind. This is the telemetry analogue of the fault
///   hook's "configured but fault-free plan is free" contract, and the
///   `<1%` gate `perf_baseline` asserts in-binary.
/// * **enabled** — profiling on for the whole timed span (the outlined
///   profiled loop, per-event recording, periodic depth samples). The
///   honest cost of actually collecting an engine profile, recorded as
///   context rather than gated.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryMeasurement {
    /// Events/sec with profiling never touched.
    pub plain_events_per_sec: f64,
    /// Events/sec after `enable_profiling(); disable_profiling();`.
    pub disabled_events_per_sec: f64,
    /// Events/sec with profiling enabled throughout.
    pub enabled_events_per_sec: f64,
}

impl TelemetryMeasurement {
    /// Throughput cost of the disabled (enable-then-disable) state vs
    /// plain, percent (positive = slower). Zero by construction up to
    /// noise — the asserted zero-cost-disabled contract.
    pub fn disabled_overhead_pct(&self) -> f64 {
        (self.plain_events_per_sec / self.disabled_events_per_sec - 1.0) * 100.0
    }

    /// Throughput cost of enabled profiling vs plain, percent.
    pub fn enabled_overhead_pct(&self) -> f64 {
        (self.plain_events_per_sec / self.enabled_events_per_sec - 1.0) * 100.0
    }

    /// Fold another round in, per-config best (the measurement protocol
    /// every recorded baseline metric uses — see `perf_baseline`).
    pub fn fold_best(&mut self, other: &TelemetryMeasurement) {
        self.plain_events_per_sec = self.plain_events_per_sec.max(other.plain_events_per_sec);
        self.disabled_events_per_sec = self
            .disabled_events_per_sec
            .max(other.disabled_events_per_sec);
        self.enabled_events_per_sec = self
            .enabled_events_per_sec
            .max(other.enabled_events_per_sec);
    }
}

/// Telemetry cost on the timer microbench (the `event_loop` shape):
/// one plain / disabled / enabled round, back to back.
pub fn telemetry_overhead_event_loop(events: u64, pending: usize) -> TelemetryMeasurement {
    TelemetryMeasurement {
        plain_events_per_sec: sim_events_per_sec_with(events, pending, |_| {}),
        disabled_events_per_sec: sim_events_per_sec_with(events, pending, |sim| {
            sim.enable_profiling();
            sim.disable_profiling();
        }),
        enabled_events_per_sec: sim_events_per_sec_with(events, pending, |sim| {
            sim.enable_profiling();
        }),
    }
}

/// Telemetry cost on the real aggregate scenario (the `aggregate_trunk`
/// shape): one plain / disabled / enabled round, back to back.
pub fn telemetry_overhead_aggregate(flows: usize, sim_secs: f64) -> TelemetryMeasurement {
    let base = || ScenarioBuilder::aggregate(1, flows).with_trunk(10e9, 0.1);
    TelemetryMeasurement {
        plain_events_per_sec: scenario_throughput_with(base(), sim_secs, |_| {}).events_per_sec,
        disabled_events_per_sec: scenario_throughput_with(base(), sim_secs, |sim| {
            sim.enable_profiling();
            sim.disable_profiling();
        })
        .events_per_sec,
        enabled_events_per_sec: scenario_throughput_with(base(), sim_secs, |sim| {
            sim.enable_profiling();
        })
        .events_per_sec,
    }
}

/// Causal-trace cost on the timer microbench (the `event_loop` shape):
/// one plain / disabled / enabled round, back to back. Same three-state
/// protocol as [`telemetry_overhead_event_loop`] — `disabled` is
/// enable-then-disable and must match `plain` to noise (the `<1%` gate
/// `perf_baseline` asserts for tracing too), `enabled` is the honest
/// cost of the outlined traced loop with provenance threading.
pub fn tracing_overhead_event_loop(events: u64, pending: usize) -> TelemetryMeasurement {
    TelemetryMeasurement {
        plain_events_per_sec: sim_events_per_sec_with(events, pending, |_| {}),
        disabled_events_per_sec: sim_events_per_sec_with(events, pending, |sim| {
            sim.enable_tracing();
            sim.disable_tracing();
        }),
        enabled_events_per_sec: sim_events_per_sec_with(events, pending, |sim| {
            sim.enable_tracing();
        }),
    }
}

/// Causal-trace cost on the real aggregate scenario (the
/// `aggregate_trunk` shape): one plain / disabled / enabled round,
/// back to back.
pub fn tracing_overhead_aggregate(flows: usize, sim_secs: f64) -> TelemetryMeasurement {
    let base = || ScenarioBuilder::aggregate(1, flows).with_trunk(10e9, 0.1);
    TelemetryMeasurement {
        plain_events_per_sec: scenario_throughput_with(base(), sim_secs, |_| {}).events_per_sec,
        disabled_events_per_sec: scenario_throughput_with(base(), sim_secs, |sim| {
            sim.enable_tracing();
            sim.disable_tracing();
        })
        .events_per_sec,
        enabled_events_per_sec: scenario_throughput_with(base(), sim_secs, |sim| {
            sim.enable_tracing();
        })
        .events_per_sec,
    }
}

/// An engine profile of the aggregate-trunk workload: build the real
/// scenario, warm it, profile `sim_secs` of steady state. The evidence
/// record behind the dispatch bound — batch sizes, depth series, store
/// op mix — embedded in the baseline's context section.
pub fn aggregate_trunk_profile(flows: usize, sim_secs: f64) -> linkpad_obs::ProfileReport {
    let b = ScenarioBuilder::aggregate(1, flows).with_trunk(10e9, 0.1);
    let mut s = b.build().expect("aggregate scenario builds");
    s.run_for_secs(0.25);
    s.sim.enable_profiling();
    s.run_for_secs(sim_secs);
    s.sim
        .profile_report()
        .expect("profiling was enabled for the span")
}

/// A sampled wall-time attribution of the aggregate-trunk workload:
/// where each dispatch's nanoseconds go (store pop + batch collection
/// vs `Context` build vs the node handler), per node label. Runs the
/// same warmed scenario as [`aggregate_trunk_profile`] through the
/// engine's `run_until_attributed` twin, sampling every
/// `sample_every`-th dispatch. Recorded as context in the baseline's
/// `engine_profile` section — evidence for the dispatch bound, never a
/// gated number (it is wall-clock and container-dependent).
pub fn aggregate_trunk_attribution(
    flows: usize,
    sim_secs: f64,
    sample_every: u64,
) -> linkpad_sim::AttributionReport {
    let b = ScenarioBuilder::aggregate(1, flows).with_trunk(10e9, 0.1);
    let mut s = b.build().expect("aggregate scenario builds");
    s.run_for_secs(0.25);
    let mut sampler = linkpad_sim::AttributionSampler::new(sample_every);
    let until = s.sim.now() + SimDuration::from_secs_f64(sim_secs);
    s.sim.run_until_attributed(until, &mut sampler);
    sampler.report()
}

// ---- Fault-hook overhead ----------------------------------------------

/// Paired measurement of what the trunk fault hook costs the real
/// aggregate scenario, in three configurations run back to back (so
/// the ratios share one noise environment).
#[derive(Debug, Clone, Copy)]
pub struct FaultHookMeasurement {
    /// No `FaultPlan` configured at all — the pre-fault-subsystem path.
    pub plain_events_per_sec: f64,
    /// A `FaultPlan` configured but with no trunk axis: the build-time
    /// hook decides **not** to insert a gate, so this must match
    /// `plain` to measurement noise — the "loss hook is free when
    /// fault-free" contract.
    pub faultfree_plan_events_per_sec: f64,
    /// An **armed but lossless** gate (Bernoulli p = 0) on the trunk:
    /// every trunk packet takes the full hook path (RNG draw + outage
    /// check + one extra dispatch). The honest worst-case hook cost.
    pub gated_zero_loss_events_per_sec: f64,
}

impl FaultHookMeasurement {
    /// Throughput cost of the *fault-free* configured plan vs no plan,
    /// percent (positive = slower). Zero by construction up to noise.
    pub fn faultfree_overhead_pct(&self) -> f64 {
        (self.plain_events_per_sec / self.faultfree_plan_events_per_sec - 1.0) * 100.0
    }

    /// Throughput cost of the armed lossless gate vs no plan, percent.
    pub fn armed_overhead_pct(&self) -> f64 {
        (self.plain_events_per_sec / self.gated_zero_loss_events_per_sec - 1.0) * 100.0
    }
}

/// Measure the fault hook's throughput cost on the `flows`-pair
/// aggregate scenario (`sim_secs` of steady state per configuration).
pub fn fault_hook_overhead(flows: usize, sim_secs: f64) -> FaultHookMeasurement {
    use linkpad_sim::fault::{FaultPlan, LossModel};
    let base = || ScenarioBuilder::aggregate(1, flows).with_trunk(10e9, 0.1);
    let plain = scenario_throughput(base(), sim_secs);
    let faultfree = scenario_throughput(base().with_faults(FaultPlan::new(1)), sim_secs);
    let gated = scenario_throughput(
        base().with_faults(FaultPlan::new(1).with_trunk_loss(LossModel::Bernoulli { p: 0.0 })),
        sim_secs,
    );
    FaultHookMeasurement {
        plain_events_per_sec: plain.events_per_sec,
        faultfree_plan_events_per_sec: faultfree.events_per_sec,
        gated_zero_loss_events_per_sec: gated.events_per_sec,
    }
}

/// Result of one aggregate-observer measurement: the full aggregate
/// scenario with the streaming [`WindowedObserver`] on the trunk in
/// place of the store-everything tap.
///
/// [`WindowedObserver`]: linkpad_sim::observer::WindowedObserver
#[derive(Debug, Clone, Copy)]
pub struct ObserverMeasurement {
    /// Events per wall-clock second over the timed span.
    pub events_per_sec: f64,
    /// Concurrent pending events at steady state, before the timed span.
    pub pending: usize,
    /// Windows materialized by the observer over the whole run — the
    /// observer's entire memory footprint is proportional to this.
    pub windows: usize,
    /// Trunk arrivals folded into those windows. `arrivals / windows` is
    /// how many per-packet captures a trunk tap would have stored per
    /// window the observer actually keeps.
    pub arrivals: u64,
}

/// Events/sec and observer footprint of the **real** aggregate scenario
/// running with the streaming trunk observer (`window_secs`-wide
/// windows) instead of the trunk tap: the aggregate-adversary
/// observation path at scale. Comparable to
/// [`aggregate_scenario_events_per_sec`] — same topology, different
/// trunk instrument — while the windows/arrivals ratio documents the
/// O(windows)-vs-O(arrivals) memory contract.
pub fn aggregate_observer_events_per_sec(
    flows: usize,
    sim_secs: f64,
    window_secs: f64,
) -> ObserverMeasurement {
    let b = ScenarioBuilder::aggregate(1, flows)
        .with_trunk(10e9, 0.1)
        .with_trunk_observer(window_secs);
    let mut s = b.build().expect("aggregate observer scenario builds");
    // Warm past the 100 ms trunk so the in-flight population is steady.
    s.run_for_secs(0.25);
    let pending = s.sim.pending_events();
    let before = s.sim.events_processed();
    let start = Instant::now();
    s.run_for_secs(sim_secs);
    let elapsed = start.elapsed().as_secs_f64();
    let obs = s
        .aggregate
        .as_ref()
        .expect("aggregate handles")
        .trunk_observer
        .clone()
        .expect("observer-mode trunk");
    ObserverMeasurement {
        events_per_sec: (s.sim.events_processed() - before) as f64 / elapsed,
        pending,
        windows: obs.windows(),
        arrivals: obs.arrivals(),
    }
}

// ---- Sharded million-flow aggregate -----------------------------------

/// Result of one sharded cohort-aggregate measurement — the 10⁶-flow
/// execution path: non-target flows as `FlowCohort`s, the population
/// split over worker sub-sims, per-shard window series merged into one
/// trunk view.
#[derive(Debug, Clone, Copy)]
pub struct ShardedMeasurement {
    /// Events per wall-clock second, summed across all shard event loops
    /// over the whole fan-out (including merge).
    pub events_per_sec: f64,
    /// The same throughput divided by the shard count — a context ratio
    /// tied to this container's worker pool, not a gated engine number.
    pub per_shard_events_per_sec: f64,
    /// Wall-clock seconds for the whole sharded run.
    pub wall_clock_secs: f64,
    /// Largest pending-event population sampled in any shard (the
    /// per-worker memory high-water proxy).
    pub peak_pending: usize,
    /// Trunk arrivals folded across all shards.
    pub arrivals: u64,
    /// Windows in the merged trunk series.
    pub merged_windows: usize,
}

/// Trunk capacity for a cohort-scale aggregate of `flows` CIT flows:
/// ~2.5× the offered load (each τ = 10 ms flow offers 400 kb/s of
/// 500-byte packets), floored at the family's 10 Gb/s default — which
/// saturates above ~2.5×10⁴ flows. One policy shared by the recorded
/// baseline and the `fig_million_flows` experiment so both always
/// measure identically provisioned trunks.
pub fn provisioned_trunk_bps(flows: usize) -> f64 {
    (flows as f64 * 1e6).max(10e9)
}

/// Run the sharded cohort aggregate: `flows` CIT flows in cohorts of
/// `cohort_size`, split over `shards` sub-sims, observed in
/// `window_secs` windows for `sim_secs` of simulated time. The trunk
/// is provisioned by [`provisioned_trunk_bps`].
pub fn sharded_aggregate_measurement(
    flows: usize,
    cohort_size: usize,
    shards: usize,
    window_secs: f64,
    sim_secs: f64,
) -> ShardedMeasurement {
    let trunk_bps = provisioned_trunk_bps(flows);
    let builder = linkpad_workloads::scenario::ScenarioBuilder::aggregate(1, flows)
        .with_trunk(trunk_bps, 5e-3)
        .with_trunk_observer(window_secs)
        .with_cohorts(cohort_size)
        .with_shards(shards);
    let sharded =
        linkpad_workloads::shard::ShardedAggregate::new(builder).expect("sharded config valid");
    let run = sharded
        .run_for_secs(sim_secs)
        .expect("sharded run succeeds");
    ShardedMeasurement {
        events_per_sec: run.events_per_sec(),
        per_shard_events_per_sec: run.events_per_sec() / shards as f64,
        wall_clock_secs: run.wall_secs,
        peak_pending: run.pending_peak(),
        arrivals: run.arrivals(),
        merged_windows: run.windows.len(),
    }
}

// ---- Defense matrix ---------------------------------------------------

/// The canonical defense grid: every padding schedule the cohort path
/// supports, plus the variable-payload axis on a CIT clock. One policy
/// shared by the recorded baseline and the `fig_defense_matrix`
/// experiment so both always measure the same configurations.
pub fn defense_grid() -> Vec<(
    &'static str,
    linkpad_workloads::spec::ScheduleSpec,
    linkpad_workloads::spec::PayloadModel,
)> {
    use linkpad_workloads::spec::{PayloadModel, ScheduleSpec};
    vec![
        ("cit", ScheduleSpec::Cit, PayloadModel::Fixed),
        (
            "constant_rate",
            ScheduleSpec::ConstantRate { rate: 125.0 },
            PayloadModel::Fixed,
        ),
        (
            "adaptive",
            ScheduleSpec::AdaptivePadding { reactive: false },
            PayloadModel::Fixed,
        ),
        (
            "cit_var_payload",
            ScheduleSpec::Cit,
            PayloadModel::Uniform { lo: 300, hi: 900 },
        ),
    ]
}

/// One defense row of the `defense_matrix` baseline section: the
/// sharded cohort aggregate run under one schedule/payload pair, read
/// by both adversary channels.
#[derive(Debug, Clone, Copy)]
pub struct DefenseMeasurement {
    /// Grid key (also the JSON object key in the baseline).
    pub name: &'static str,
    /// The defense's mean emission interval E\[T\], seconds.
    pub mean_interval_secs: f64,
    /// Mean wire bytes per emission.
    pub mean_wire_bytes: f64,
    /// Trunk bandwidth relative to the CIT/fixed-payload baseline.
    pub overhead_factor: f64,
    /// Count-channel flow-count estimate error, percent (deterministic
    /// given the seed — a gated accuracy metric, not a noise band).
    pub count_err_pct: f64,
    /// Byte-channel flow-count estimate error, percent.
    pub byte_err_pct: f64,
    /// Events per wall-clock second, summed across shard event loops.
    pub events_per_sec: f64,
    /// Wall-clock seconds for the whole sharded run.
    pub wall_clock_secs: f64,
}

/// Run the whole [`defense_grid`] through the sharded cohort aggregate:
/// `flows` flows per defense, uniform clock phases, `measured`
/// steady-state windows fed to both flow-count channels. The trunk is
/// provisioned by [`provisioned_trunk_bps`]; the observer window is
/// 20τ (the rate law's exact regime for the deterministic schedules).
pub fn defense_matrix_measurement(
    flows: usize,
    cohort_size: usize,
    shards: usize,
    measured: usize,
) -> Vec<DefenseMeasurement> {
    use linkpad_adversary::aggregate::{estimate_flow_count, estimate_flow_count_from_bytes};
    const SKIP: usize = 2;
    let defaults = linkpad_workloads::scenario::ScenarioBuilder::aggregate(1, 1).defaults;
    let (tau, pkt) = (defaults.tau, defaults.packet_size);
    let window = 20.0 * tau;
    let sim_secs = window * (SKIP + measured + 1) as f64;
    let baseline_bps = pkt as f64 / tau;
    defense_grid()
        .into_iter()
        .enumerate()
        .map(|(i, (name, spec, payload))| {
            let interval = spec.mean_interval(tau);
            let mean_bytes = payload.mean_bytes(pkt);
            let window_over_interval = window / interval;
            let builder =
                linkpad_workloads::scenario::ScenarioBuilder::aggregate(2311 + i as u64, flows)
                    .with_payload_rate(10.0)
                    .with_trunk(provisioned_trunk_bps(flows), 5e-3)
                    .with_trunk_observer(window)
                    .with_cohorts(cohort_size)
                    .with_shards(shards)
                    .with_phases(linkpad_workloads::aggregate::PhaseSpec::Uniform { seed: 41 })
                    .with_schedule(spec)
                    .with_payload_model(payload);
            let sharded = linkpad_workloads::shard::ShardedAggregate::new(builder)
                .expect("defense-matrix config valid");
            let run = sharded
                .run_for_secs(sim_secs)
                .expect("defense-matrix run succeeds");
            let span = SKIP..SKIP + measured;
            let count_est = estimate_flow_count(&run.counts()[span.clone()], window_over_interval)
                .expect("count-channel estimator");
            let byte_rates: Vec<f64> = run.windows[span]
                .iter()
                .map(|w| w.bytes as f64 / window)
                .collect();
            let byte_est = estimate_flow_count_from_bytes(
                &byte_rates,
                window,
                mean_bytes,
                window_over_interval,
            )
            .expect("byte-channel estimator");
            DefenseMeasurement {
                name,
                mean_interval_secs: interval,
                mean_wire_bytes: mean_bytes,
                overhead_factor: (mean_bytes / interval) / baseline_bps,
                count_err_pct: count_est.relative_error(flows) * 100.0,
                byte_err_pct: byte_est.relative_error(flows) * 100.0,
                events_per_sec: run.events_per_sec(),
                wall_clock_secs: run.wall_secs,
            }
        })
        .collect()
}

// ---- Scenario reset vs rebuild ----------------------------------------

/// Timing of per-replication setup: rebuilding the lab topology from its
/// builder vs resetting a built one (`BuiltScenario::reset`).
#[derive(Debug, Clone, Copy)]
pub struct ResetMeasurement {
    /// Mean cost of `builder.build()` per replication, microseconds.
    pub build_us: f64,
    /// Mean cost of `scenario.reset(seed)` per replication, microseconds.
    pub reset_us: f64,
    /// Wall clock for a many-replication lab sweep unit that rebuilds
    /// per replication, seconds.
    pub sweep_rebuild_secs: f64,
    /// The same sweep unit reusing one topology via reset, seconds.
    pub sweep_reset_secs: f64,
}

impl ResetMeasurement {
    /// How many times cheaper reset is than rebuild, per replication.
    pub fn setup_speedup(&self) -> f64 {
        self.build_us / self.reset_us
    }
}

/// Measure scenario-reset vs rebuild on the lab sweep unit:
/// `reps` short replications of `piats_per_rep` PIATs each.
pub fn reset_vs_rebuild(reps: usize, piats_per_rep: usize) -> ResetMeasurement {
    let builder = ScenarioBuilder::lab(7).with_payload_rate(10.0);

    // Isolated setup cost: build N times vs reset N times.
    let start = Instant::now();
    let mut node_count = 0;
    for k in 0..reps {
        let s = builder
            .clone()
            .with_seed(1000 + k as u64)
            .build()
            .expect("lab builds");
        node_count = node_count.max(s.sim.node_count());
    }
    let build_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

    let mut s = builder.build().expect("lab builds");
    let start = Instant::now();
    for k in 0..reps {
        s.reset(1000 + k as u64);
    }
    let reset_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
    assert_eq!(s.sim.node_count(), node_count, "reset keeps the topology");

    // End-to-end sweep unit: rebuild-per-replication vs reset-per-
    // replication, identical seeds, identical collected sample counts.
    let at = TapPosition::SenderEgress;
    let start = Instant::now();
    let mut collected_rebuild = 0usize;
    for k in 0..reps {
        let b = builder.clone().with_seed(2000 + k as u64);
        collected_rebuild += piats_for(&b, at, piats_per_rep, 16)
            .expect("rebuild sweep collects")
            .len();
    }
    let sweep_rebuild_secs = start.elapsed().as_secs_f64();

    let mut s = builder.build().expect("lab builds");
    let start = Instant::now();
    let mut collected_reset = 0usize;
    for k in 0..reps {
        collected_reset += s
            .collect_piats_reseeded(2000 + k as u64, at, piats_per_rep, 16)
            .expect("reset sweep collects")
            .len();
    }
    let sweep_reset_secs = start.elapsed().as_secs_f64();
    assert_eq!(collected_rebuild, collected_reset);

    ResetMeasurement {
        build_us,
        reset_us,
        sweep_rebuild_secs,
        sweep_reset_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_complete_the_same_workload() {
        // Tiny shape: correctness only, not timing.
        let eps_new = sim_events_per_sec(2_000, 16);
        let eps_ref = heap_reference_events_per_sec(2_000, 16);
        assert!(eps_new > 0.0 && eps_ref > 0.0);
    }

    #[test]
    fn workload_accounting_is_exact() {
        let (fires, total) = workload_events(1000, 10);
        assert_eq!(fires, 50);
        assert_eq!(total, 1000);
        // Degenerate: at least one fire each.
        let (fires, total) = workload_events(1, 8);
        assert_eq!(fires, 1);
        assert_eq!(total, 16);
    }

    #[test]
    fn trunk_workload_completes_on_both_engines() {
        // Tiny shape: correctness only. Both engines must drain the whole
        // workload and observe an in-flight trunk population (pending >
        // one timer per flow at steady state).
        let a = aggregate_trunk_events_per_sec(30_000, 8);
        let b = heap_reference_aggregate_events_per_sec(30_000, 8);
        assert!(a.events_per_sec > 0.0 && b.events_per_sec > 0.0);
        assert!(a.pending > 8, "engine pending {}", a.pending);
        assert!(b.pending > 8, "reference pending {}", b.pending);
    }

    #[test]
    fn aggregate_scenario_measurement_reports_pending() {
        let m = aggregate_scenario_events_per_sec(16, 0.2);
        assert!(m.events_per_sec > 0.0);
        // 16 flows × (2 timers + ~10 in-flight on the 100 ms trunk).
        assert!(m.pending > 16 * 3, "pending {}", m.pending);
    }

    #[test]
    fn aggregate_observer_measurement_is_o_windows() {
        let m = aggregate_observer_events_per_sec(16, 0.4, 0.05);
        assert!(m.events_per_sec > 0.0);
        assert!(m.pending > 16 * 3, "pending {}", m.pending);
        // 0.65 s observed in 50 ms windows → ~13 windows; arrivals are
        // 16 flows × ~100 pps × 0.65 s ≈ 10³ — two orders more than the
        // windows that store them.
        assert!(m.windows <= 16, "windows {}", m.windows);
        assert!(
            m.arrivals > 40 * m.windows as u64,
            "arrivals {} windows {}",
            m.arrivals,
            m.windows
        );
    }

    #[test]
    fn sharded_measurement_reports_the_whole_population() {
        // Tiny shape: 64 flows in 16-cohorts over 2 shards, 0.5 s.
        let m = sharded_aggregate_measurement(64, 16, 2, 0.05, 0.5);
        assert!(m.events_per_sec > 0.0 && m.wall_clock_secs > 0.0);
        assert!(m.per_shard_events_per_sec <= m.events_per_sec);
        // 64 flows × 100 pps × ~0.5 s, minus the first-period ramp.
        assert!(m.arrivals >= 3000, "arrivals {}", m.arrivals);
        assert!(m.merged_windows >= 9, "windows {}", m.merged_windows);
        assert!(m.peak_pending > 0);
    }

    #[test]
    fn tracing_measurement_runs_all_three_configurations() {
        // Tiny shape: correctness only, not timing — all three trace
        // states must complete the workload at positive throughput.
        let m = tracing_overhead_event_loop(2_000, 16);
        assert!(m.plain_events_per_sec > 0.0);
        assert!(m.disabled_events_per_sec > 0.0);
        assert!(m.enabled_events_per_sec > 0.0);
        assert!(m.disabled_overhead_pct().is_finite());
        let m = tracing_overhead_aggregate(16, 0.2);
        assert!(m.plain_events_per_sec > 0.0);
        assert!(m.disabled_events_per_sec > 0.0);
        assert!(m.enabled_events_per_sec > 0.0);
    }

    #[test]
    fn attribution_covers_the_scenario_node_types() {
        let report = aggregate_trunk_attribution(16, 0.2, 64);
        assert!(report.dispatches_seen > 0);
        assert!(report.samples() > 0);
        assert_eq!(report.sample_every, 64);
        // The aggregate scenario dispatches at least gateways and
        // trunk-side nodes; each sampled row accumulated wall time.
        assert!(report.rows.len() >= 2, "rows {:?}", report.rows.len());
        assert!(report.total_ns() > 0);
    }

    #[test]
    fn fault_hook_measurement_runs_all_three_configurations() {
        // Tiny shape: correctness only, not timing — all three paths
        // must build and produce positive throughput.
        let m = fault_hook_overhead(16, 0.2);
        assert!(m.plain_events_per_sec > 0.0);
        assert!(m.faultfree_plan_events_per_sec > 0.0);
        assert!(m.gated_zero_loss_events_per_sec > 0.0);
        assert!(m.faultfree_overhead_pct().is_finite());
        assert!(m.armed_overhead_pct().is_finite());
    }

    #[test]
    fn reset_measurement_is_sane() {
        let m = reset_vs_rebuild(5, 64);
        assert!(m.build_us > 0.0 && m.reset_us > 0.0);
        assert!(m.setup_speedup() > 0.0);
        assert!(m.sweep_rebuild_secs > 0.0 && m.sweep_reset_secs > 0.0);
    }
}
