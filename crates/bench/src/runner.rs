//! Parallel experiment execution.

use linkpad_adversary::feature::Feature;
use linkpad_adversary::pipeline::{DetectionReport, DetectionStudy};
use linkpad_sim::parallel::parallel_map_init;
use linkpad_stats::rng::MasterSeed;
use linkpad_workloads::scenario::{BuiltScenario, ScenarioBuilder, ScenarioError, TapPosition};

/// Sample budgets per class for a detection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Training samples per class.
    pub train: usize,
    /// Test samples per class.
    pub test: usize,
}

impl Budget {
    /// Budget selected by the `LINKPAD_SCALE` environment variable:
    /// `quick` → 60/40, `paper` (the default when unset) → 150/100.
    /// Unrecognized values warn on stderr and fall back to `paper`.
    pub fn from_env() -> Self {
        Self::from_scale(std::env::var("LINKPAD_SCALE").ok().as_deref())
    }

    /// [`Budget::from_env`]'s pure core, testable without touching the
    /// process environment.
    ///
    /// The value is trimmed first, so `"paper "` or `" quick"` (easy to
    /// produce in shell wrappers and CI YAML) select the intended budget
    /// instead of tripping the unknown-value warning.
    pub fn from_scale(scale: Option<&str>) -> Self {
        let paper = Budget {
            train: 150,
            test: 100,
        };
        match scale.map(str::trim) {
            Some("quick") => Budget {
                train: 60,
                test: 40,
            },
            None | Some("paper") => paper,
            Some(other) => {
                eprintln!(
                    "warning: unrecognized LINKPAD_SCALE={other:?} \
                     (expected \"quick\" or \"paper\"); defaulting to \"paper\""
                );
                paper
            }
        }
    }

    /// Total samples per class.
    pub fn samples(&self) -> usize {
        self.train + self.test
    }

    /// As a [`DetectionStudy`] at sample size `n`.
    pub fn study(&self, n: usize) -> DetectionStudy {
        DetectionStudy {
            sample_size: n,
            train_samples: self.train,
            test_samples: self.test,
        }
    }
}

/// A parallel collection failure, carrying enough context to reproduce
/// the failing replication: the scenario family, the exact replication
/// seed, and the task index within the collection.
#[derive(Debug)]
pub struct CollectionError {
    /// Scenario family label of the failing builder ("lab", …).
    pub label: &'static str,
    /// The replication seed the worker ran under.
    pub seed: u64,
    /// Task index within the collection (0-based).
    pub task: u64,
    /// The underlying scenario failure.
    pub source: ScenarioError,
}

impl std::fmt::Display for CollectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "collecting {:?} task {} (seed {:#018x}): {}",
            self.label, self.task, self.seed, self.source
        )
    }
}

impl std::error::Error for CollectionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Collect `total` PIATs for one scenario class, fanning replications out
/// over worker threads. Each replication's length is a multiple of
/// `sample_multiple` so that downstream sample slicing never straddles a
/// replication boundary.
///
/// Per-replication seeds are children of the builder's *configured* seed
/// ([`ScenarioBuilder::seed`]), so collections are stable under refactors
/// of the builder's incidental state. Each worker thread builds the
/// topology once and [`BuiltScenario::reset`]s it per replication — the
/// scenario-reset fast path — which is bit-identical to rebuilding (see
/// `tests/reset_determinism.rs`). Scenario failures are propagated, not
/// panicked, with the failing replication identified.
pub fn collect_piats_parallel(
    builder: &ScenarioBuilder,
    at: TapPosition,
    total: usize,
    sample_multiple: usize,
) -> Result<Vec<f64>, CollectionError> {
    let sample_multiple = sample_multiple.max(1);
    // Target ~100k PIATs per task: large enough to amortize warmup,
    // small enough to parallelize sweeps on a few cores.
    let chunk = (100_000 / sample_multiple).max(1) * sample_multiple;
    let tasks: Vec<(u64, usize)> = {
        let mut tasks = Vec::new();
        let mut remaining = total;
        let mut k = 0u64;
        while remaining > 0 {
            let this = remaining.min(chunk);
            // Round up to a multiple so every task is feature-aligned.
            let this = this.div_ceil(sample_multiple) * sample_multiple;
            tasks.push((k, this));
            remaining = remaining.saturating_sub(this);
            k += 1;
        }
        tasks
    };
    let base_seed = MasterSeed::new(builder.seed());
    let results = parallel_map_init(
        tasks,
        || None::<BuiltScenario>,
        |scenario, (k, count)| -> Result<Vec<f64>, CollectionError> {
            let seed = base_seed.child(k).value();
            let run = |scenario: &mut Option<BuiltScenario>| -> Result<Vec<f64>, ScenarioError> {
                match scenario {
                    // Reuse the worker's topology; reset is bit-identical
                    // to a fresh build at this seed.
                    Some(s) => s.collect_piats_reseeded(seed, at, count, 64),
                    None => {
                        let s = scenario.insert(builder.clone().with_seed(seed).build()?);
                        s.collect_piats(at, count, 64)
                    }
                }
            };
            run(scenario).map_err(|source| CollectionError {
                label: builder.label(),
                seed,
                task: k,
                source,
            })
        },
    );
    let mut out = Vec::with_capacity(total + chunk);
    for r in results {
        out.extend_from_slice(&r?);
    }
    out.truncate(total.div_ceil(sample_multiple) * sample_multiple);
    Ok(out)
}

/// Run one full detection experiment: low-rate and high-rate scenario
/// classes, a feature, a sample size, a budget.
pub fn detection_for(
    low: &ScenarioBuilder,
    high: &ScenarioBuilder,
    at: TapPosition,
    feature: &dyn Feature,
    n: usize,
    budget: Budget,
) -> Result<DetectionReport, CollectionError> {
    Ok(detection_multi(low, high, at, &[feature], n, budget)?
        .pop()
        .expect("one feature in, one report out"))
}

/// Run several features against the *same* captured PIAT streams —
/// collection dominates the cost, so sweeps that report multiple
/// features should always go through this.
pub fn detection_multi(
    low: &ScenarioBuilder,
    high: &ScenarioBuilder,
    at: TapPosition,
    features: &[&dyn Feature],
    n: usize,
    budget: Budget,
) -> Result<Vec<DetectionReport>, CollectionError> {
    let study = budget.study(n);
    let needed = study.piats_needed();
    let piats_low = collect_piats_parallel(low, at, needed, n)?;
    let piats_high = collect_piats_parallel(high, at, needed, n)?;
    let streams = [piats_low, piats_high];
    Ok(features
        .iter()
        .map(|f| study.run(*f, &streams).expect("detection study failed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_adversary::feature::SampleVariance;

    #[test]
    fn scale_selection_handles_quick_paper_and_garbage() {
        let quick = Budget::from_scale(Some("quick"));
        assert_eq!((quick.train, quick.test), (60, 40));
        let paper = Budget::from_scale(Some("paper"));
        assert_eq!((paper.train, paper.test), (150, 100));
        let unset = Budget::from_scale(None);
        assert_eq!(unset, paper);
        // Surrounding whitespace (shell wrappers, CI YAML) is trimmed,
        // not treated as garbage.
        for padded in ["paper ", " paper", "\tpaper\n"] {
            assert_eq!(Budget::from_scale(Some(padded)), paper, "{padded:?}");
        }
        for padded in ["quick ", " quick "] {
            assert_eq!(Budget::from_scale(Some(padded)), quick, "{padded:?}");
        }
        // Genuinely unknown values warn (stderr) but never change the
        // budget; whitespace-only is unknown, not "paper".
        for garbage in ["QUICK", "fast", "", "   ", "pa per"] {
            assert_eq!(Budget::from_scale(Some(garbage)), paper, "{garbage:?}");
        }
    }

    #[test]
    fn budget_study_accounting() {
        let b = Budget {
            train: 150,
            test: 100,
        };
        assert_eq!(b.samples(), 250);
        let study = b.study(500);
        assert_eq!(study.piats_needed(), 250 * 500);
    }

    #[test]
    fn collect_parallel_is_aligned_and_complete() {
        let b = ScenarioBuilder::lab(5).with_payload_rate(10.0);
        let piats = collect_piats_parallel(&b, TapPosition::SenderEgress, 25_000, 400).unwrap();
        assert!(piats.len() >= 25_000);
        assert_eq!(piats.len() % 400, 0);
        assert!(piats.iter().all(|&x| x > 0.005 && x < 0.015));
    }

    #[test]
    fn collect_parallel_derives_seeds_from_the_configured_seed() {
        // Same configuration, different seeds → different streams; the
        // master seed is the builder's own, not a hash of its Debug repr.
        let base = |seed| ScenarioBuilder::lab(seed).with_payload_rate(10.0);
        let a = collect_piats_parallel(&base(5), TapPosition::SenderEgress, 2_000, 1).unwrap();
        let b = collect_piats_parallel(&base(5), TapPosition::SenderEgress, 2_000, 1).unwrap();
        let c = collect_piats_parallel(&base(6), TapPosition::SenderEgress, 2_000, 1).unwrap();
        assert_eq!(a, b, "collections are reproducible");
        assert_ne!(a, c, "the configured seed drives the replication seeds");
        assert_eq!(base(7).seed(), 7);
    }

    #[test]
    fn collect_parallel_propagates_scenario_errors_with_context() {
        // Invalid payload rate: every task fails at build; the error must
        // identify the scenario and replication instead of panicking.
        let b = ScenarioBuilder::lab(8).with_payload_rate(-1.0);
        let err = collect_piats_parallel(&b, TapPosition::SenderEgress, 1_000, 1)
            .expect_err("invalid builder must fail");
        assert_eq!(err.label, "lab");
        assert_eq!(err.task, 0);
        let msg = err.to_string();
        assert!(msg.contains("lab") && msg.contains("task 0"), "{msg}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn detection_for_runs_end_to_end_small() {
        let low = ScenarioBuilder::lab(1).with_payload_rate(10.0);
        let high = ScenarioBuilder::lab(2).with_payload_rate(40.0);
        let report = detection_for(
            &low,
            &high,
            TapPosition::SenderEgress,
            &SampleVariance,
            400,
            Budget {
                train: 20,
                test: 12,
            },
        )
        .unwrap();
        assert_eq!(report.total, 24);
        let v = report.detection_rate();
        assert!((0.4..=1.0).contains(&v), "v = {v}");
    }
}
