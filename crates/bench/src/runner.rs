//! Parallel experiment execution.

use linkpad_adversary::feature::Feature;
use linkpad_adversary::pipeline::{DetectionReport, DetectionStudy};
use linkpad_sim::parallel::parallel_map;
use linkpad_stats::rng::MasterSeed;
use linkpad_workloads::scenario::{piats_for, ScenarioBuilder, TapPosition};

/// Sample budgets per class for a detection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Training samples per class.
    pub train: usize,
    /// Test samples per class.
    pub test: usize,
}

impl Budget {
    /// Budget selected by the `LINKPAD_SCALE` environment variable:
    /// `quick` → 60/40, `paper` (the default when unset) → 150/100.
    /// Unrecognized values warn on stderr and fall back to `paper`.
    pub fn from_env() -> Self {
        Self::from_scale(std::env::var("LINKPAD_SCALE").ok().as_deref())
    }

    /// [`Budget::from_env`]'s pure core, testable without touching the
    /// process environment.
    pub fn from_scale(scale: Option<&str>) -> Self {
        let paper = Budget {
            train: 150,
            test: 100,
        };
        match scale {
            Some("quick") => Budget {
                train: 60,
                test: 40,
            },
            None | Some("paper") => paper,
            Some(other) => {
                eprintln!(
                    "warning: unrecognized LINKPAD_SCALE={other:?} \
                     (expected \"quick\" or \"paper\"); defaulting to \"paper\""
                );
                paper
            }
        }
    }

    /// Total samples per class.
    pub fn samples(&self) -> usize {
        self.train + self.test
    }

    /// As a [`DetectionStudy`] at sample size `n`.
    pub fn study(&self, n: usize) -> DetectionStudy {
        DetectionStudy {
            sample_size: n,
            train_samples: self.train,
            test_samples: self.test,
        }
    }
}

/// Collect `total` PIATs for one scenario class, fanning replications out
/// over worker threads. Each replication's length is a multiple of
/// `sample_multiple` so that downstream sample slicing never straddles a
/// replication boundary.
pub fn collect_piats_parallel(
    builder: &ScenarioBuilder,
    at: TapPosition,
    total: usize,
    sample_multiple: usize,
) -> Vec<f64> {
    let sample_multiple = sample_multiple.max(1);
    // Target ~100k PIATs per task: large enough to amortize warmup,
    // small enough to parallelize sweeps on a few cores.
    let chunk = (100_000 / sample_multiple).max(1) * sample_multiple;
    let tasks: Vec<(u64, usize)> = {
        let mut tasks = Vec::new();
        let mut remaining = total;
        let mut k = 0u64;
        while remaining > 0 {
            let this = remaining.min(chunk);
            // Round up to a multiple so every task is feature-aligned.
            let this = this.div_ceil(sample_multiple) * sample_multiple;
            tasks.push((k, this));
            remaining = remaining.saturating_sub(this);
            k += 1;
        }
        tasks
    };
    let base_seed = MasterSeed::new(builder_seed_of(builder));
    let results = parallel_map(tasks, |(k, count)| {
        let b = builder.clone().with_seed(base_seed.child(k).value());
        piats_for(&b, at, count, 64).expect("scenario collection failed")
    });
    let mut out = Vec::with_capacity(total + chunk);
    for r in results {
        out.extend_from_slice(&r);
    }
    out.truncate(total.div_ceil(sample_multiple) * sample_multiple);
    out
}

// ScenarioBuilder doesn't expose its seed; derive a stable one from its
// debug formatting (configuration-unique), keeping the public API small.
fn builder_seed_of(builder: &ScenarioBuilder) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    format!("{builder:?}").hash(&mut h);
    h.finish()
}

/// Run one full detection experiment: low-rate and high-rate scenario
/// classes, a feature, a sample size, a budget.
pub fn detection_for(
    low: &ScenarioBuilder,
    high: &ScenarioBuilder,
    at: TapPosition,
    feature: &dyn Feature,
    n: usize,
    budget: Budget,
) -> DetectionReport {
    detection_multi(low, high, at, &[feature], n, budget)
        .pop()
        .expect("one feature in, one report out")
}

/// Run several features against the *same* captured PIAT streams —
/// collection dominates the cost, so sweeps that report multiple
/// features should always go through this.
pub fn detection_multi(
    low: &ScenarioBuilder,
    high: &ScenarioBuilder,
    at: TapPosition,
    features: &[&dyn Feature],
    n: usize,
    budget: Budget,
) -> Vec<DetectionReport> {
    let study = budget.study(n);
    let needed = study.piats_needed();
    let piats_low = collect_piats_parallel(low, at, needed, n);
    let piats_high = collect_piats_parallel(high, at, needed, n);
    let streams = [piats_low, piats_high];
    features
        .iter()
        .map(|f| study.run(*f, &streams).expect("detection study failed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_adversary::feature::SampleVariance;

    #[test]
    fn scale_selection_handles_quick_paper_and_garbage() {
        let quick = Budget::from_scale(Some("quick"));
        assert_eq!((quick.train, quick.test), (60, 40));
        let paper = Budget::from_scale(Some("paper"));
        assert_eq!((paper.train, paper.test), (150, 100));
        let unset = Budget::from_scale(None);
        assert_eq!(unset, paper);
        // Garbage values warn (stderr) but never change the budget.
        for garbage in ["QUICK", "fast", "", "paper "] {
            assert_eq!(Budget::from_scale(Some(garbage)), paper, "{garbage:?}");
        }
    }

    #[test]
    fn budget_study_accounting() {
        let b = Budget {
            train: 150,
            test: 100,
        };
        assert_eq!(b.samples(), 250);
        let study = b.study(500);
        assert_eq!(study.piats_needed(), 250 * 500);
    }

    #[test]
    fn collect_parallel_is_aligned_and_complete() {
        let b = ScenarioBuilder::lab(5).with_payload_rate(10.0);
        let piats = collect_piats_parallel(&b, TapPosition::SenderEgress, 25_000, 400);
        assert!(piats.len() >= 25_000);
        assert_eq!(piats.len() % 400, 0);
        assert!(piats.iter().all(|&x| x > 0.005 && x < 0.015));
    }

    #[test]
    fn detection_for_runs_end_to_end_small() {
        let low = ScenarioBuilder::lab(1).with_payload_rate(10.0);
        let high = ScenarioBuilder::lab(2).with_payload_rate(40.0);
        let report = detection_for(
            &low,
            &high,
            TapPosition::SenderEgress,
            &SampleVariance,
            400,
            Budget {
                train: 20,
                test: 12,
            },
        );
        assert_eq!(report.total, 24);
        let v = report.detection_rate();
        assert!((0.4..=1.0).contains(&v), "v = {v}");
    }
}
