//! # linkpad-bench
//!
//! Shared experiment harness for the figure-regeneration benches and the
//! criterion microbenches. Each `benches/figN_*.rs` target reproduces one
//! figure of Fu et al. (ICPP 2003); this library holds the common
//! machinery: parallel PIAT collection, detection-rate evaluation, and
//! paper-style table output (stdout + CSV under `target/figures/`).
//!
//! Scale control: set `LINKPAD_SCALE=quick` for a fast smoke pass or
//! `LINKPAD_SCALE=paper` (default) for the full budgets (see the
//! per-figure experiment index in DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod perf;
pub mod runner;
pub mod table;

pub use compare::{compare_reports, latest_two_baselines, Comparison};
pub use runner::{collect_piats_parallel, detection_for, Budget, CollectionError};
pub use table::{write_csv, Table};
