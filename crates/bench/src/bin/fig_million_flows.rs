//! **Million-flow scale** — flow-count estimation against a sharded
//! cohort aggregate at N ∈ {10⁴, 10⁵, 10⁶} concurrent CIT-padded flows.
//!
//! The aggregate-link analyses this family serves (throughput
//! fingerprinting, statistical disclosure) operate against populations
//! of thousands to millions of flows; PR 3's honest N-scaling curves
//! stopped at 10⁴ because every flow was a boxed gateway pair in one
//! event loop. This experiment runs the cohort + shard execution path —
//! non-target flows as `FlowCohort` superposition nodes, the population
//! split over worker sub-sims, per-shard trunk window series merged by
//! summing `WindowStats` — and asserts the **rate-law flow-count
//! estimate stays within ±10 %** at every N (gate), with events/s,
//! wall-clock, peak pending-event and peak process-memory columns
//! recording what the scale costs.
//!
//! A second table re-runs the 10⁴-flow point with **independent uniform
//! clock phases** (the desynchronized-clock countermeasure from the
//! ROADMAP) at a fractional window: the rate law holds, while the
//! variance law's reading collapses from ~N² (synchronized grid) to ~N
//! — the adversary's variance diagnostic is what desynchronization
//! buys away.
//!
//! Scale via `LINKPAD_SCALE` (`quick` for CI smoke: N = 10⁴ over 2
//! shards; `paper` default: the full ladder over 4 shards).
//! Run: `cargo run --release -p linkpad-bench --bin fig_million_flows`
//!
//! Observability flags (see DESIGN.md §Observability):
//! * `--report <path>` — write the machine-readable run manifest of the
//!   largest-N run (schema `linkpad-run-manifest-v1`: totals, per-shard
//!   breakdown with engine profiles, merged metric snapshot, explicit
//!   `interrupted`/truncation record). Also enables engine profiling.
//! * `--events <path>` — write the harness lifecycle event log (run
//!   start/finish, shard completion/retry, watchdog truncations,
//!   observer gaps) for every sharded run in this binary, as JSONL.

use linkpad_adversary::aggregate::estimate_flow_count;
use linkpad_bench::perf::provisioned_trunk_bps;
use linkpad_bench::table::Table;
use linkpad_obs::EventLog;
use linkpad_workloads::aggregate::PhaseSpec;
use linkpad_workloads::scenario::ScenarioBuilder;
use linkpad_workloads::shard::ShardedAggregate;
use std::path::PathBuf;

/// Flows per cohort node: 10⁶ flows ≈ 10³ nodes per run.
const COHORT: usize = 1_024;
/// Observer window = 20τ: integer W/τ, the rate law's exact regime.
const WINDOW_OVER_TAU: f64 = 20.0;
/// Steady-state windows skipped (gateway phase-in) / measured.
const SKIP: usize = 2;
const MEASURED: usize = 5;

/// Peak resident-set high-water of this process, MB (Linux `VmHWM`;
/// 0 where unavailable). Monotone over the process lifetime, so each
/// row reads "peak so far" — the largest N dominates.
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<f64>().ok())
            })
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

fn sharded_builder(seed: u64, flows: usize, shards: usize, window: f64) -> ScenarioBuilder {
    ScenarioBuilder::aggregate(seed, flows)
        .with_payload_rate(10.0)
        .with_trunk(provisioned_trunk_bps(flows), 5e-3)
        .with_trunk_observer(window)
        .with_cohorts(COHORT)
        .with_shards(shards)
}

fn main() {
    let mut report_path: Option<PathBuf> = None;
    let mut events_path: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--report" | "--events" => match argv.next() {
                Some(p) if arg == "--report" => report_path = Some(PathBuf::from(p)),
                Some(p) => events_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("fig_million_flows: {arg} needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("fig_million_flows: unknown argument {other:?}");
                eprintln!("usage: fig_million_flows [--report <path>] [--events <path>]");
                std::process::exit(2);
            }
        }
    }
    let observing = report_path.is_some() || events_path.is_some();
    let mut log = EventLog::new();

    let quick = matches!(
        std::env::var("LINKPAD_SCALE")
            .ok()
            .as_deref()
            .map(str::trim),
        Some("quick")
    );
    let (ns, shards): (&[usize], usize) = if quick {
        (&[10_000], 2)
    } else {
        (&[10_000, 100_000, 1_000_000], 4)
    };
    let tau = ScenarioBuilder::aggregate(1, 1).defaults.tau;
    let window = WINDOW_OVER_TAU * tau;

    // ---- Part 1: flow-count gate vs N -----------------------------------
    let mut table = Table::new(
        format!(
            "Million-flow aggregate: flow-count estimation over {shards} shards, \
             {COHORT}-flow cohorts, W = {:.0} ms = {WINDOW_OVER_TAU}τ \
             (peak_rss is the process high-water so far)",
            window * 1e3
        ),
        &[
            "flows",
            "n_hat",
            "err_pct",
            "events_per_sec",
            "wall_secs",
            "peak_pending",
            "peak_rss_mb",
        ],
    );
    let mut manifest = None;
    for &n in ns {
        let sim_secs = window * (SKIP + MEASURED + 1) as f64;
        let mut sharded = ShardedAggregate::new(sharded_builder(977 + n as u64, n, shards, window))
            .expect("sharded configuration valid");
        if report_path.is_some() {
            sharded = sharded.with_profiling();
        }
        let run = if observing {
            sharded.run_for_secs_logged(sim_secs, shards, &mut log)
        } else {
            sharded.run_for_secs(sim_secs)
        }
        .expect("sharded run completes");
        if run.interrupted() {
            eprintln!(
                "*** TRUNCATED RUN: the watchdog stopped N = {n} early — only {} complete \
                 windows survive; every number below is partial (see the run manifest's \
                 truncation record) ***",
                run.windows.len()
            );
        }
        // The manifest records the largest-N run — the headline scale
        // point this figure exists for.
        manifest = Some(sharded.manifest("fig_million_flows", &run));
        let counts = run.counts();
        assert!(
            counts.len() > SKIP + MEASURED,
            "run too short: {} windows",
            counts.len()
        );
        let est = estimate_flow_count(&counts[SKIP..SKIP + MEASURED], WINDOW_OVER_TAU)
            .expect("estimator over steady-state windows");
        let err_pct = est.relative_error(n) * 100.0;
        eprintln!(
            "N = {n}: n_hat = {:.1} ({err_pct:.3}%), {:.2e} ev/s, {:.1} s wall, \
             peak pending {}",
            est.n_hat,
            run.events_per_sec(),
            run.wall_secs,
            run.pending_peak(),
        );
        table.row(vec![
            n.to_string(),
            format!("{:.1}", est.n_hat),
            format!("{err_pct:.3}"),
            format!("{:.0}", run.events_per_sec()),
            format!("{:.2}", run.wall_secs),
            run.pending_peak().to_string(),
            format!("{:.0}", peak_rss_mb()),
        ]);
        assert!(
            est.relative_error(n) <= 0.10,
            "flow-count estimate off by {err_pct:.1}% at N = {n} (gate: 10%)"
        );
    }
    table.print();
    table.save_csv("fig_million_flows").unwrap();
    println!(
        "✓ flow-count estimate within ±10% at N ∈ {{{}}} ({shards} shards)",
        ns.iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // ---- Part 2: synchronized vs desynchronized clocks ------------------
    // Fractional window (f(1−f) ≈ 0.23) so the variance law carries
    // signal; N = 10⁴ so both regimes run in seconds.
    let n = 10_000usize;
    let wot = 10.37;
    let w_frac = wot * tau;
    let (skip, measured) = (4usize, 220usize);
    let mut sync_table = Table::new(
        format!(
            "Clock phases vs the variance law (N = {n}, W = {wot}τ): synchronized \
             clocks read ~N², independent phases read ~N"
        ),
        &["phases", "n_hat_rate", "n_hat_var", "sqrt_n_hat_var"],
    );
    for (label, phases) in [
        ("synchronized", PhaseSpec::Synchronized),
        ("uniform", PhaseSpec::Uniform { seed: 41 }),
    ] {
        let sharded =
            ShardedAggregate::new(sharded_builder(1933, n, shards, w_frac).with_phases(phases))
                .expect("sharded configuration valid");
        let secs = w_frac * (skip + measured + 1) as f64;
        let run = if observing {
            sharded.run_for_secs_logged(secs, shards, &mut log)
        } else {
            sharded.run_for_secs(secs)
        }
        .expect("sharded run completes");
        let counts = run.counts();
        let est = estimate_flow_count(&counts[skip..skip + measured], wot)
            .expect("estimator over steady-state windows");
        let nv = est.n_hat_var.expect("fractional window carries signal");
        sync_table.row(vec![
            label.to_string(),
            format!("{:.1}", est.n_hat),
            format!("{nv:.0}"),
            format!("{:.1}", est.n_hat_var_synchronized().unwrap()),
        ]);
        assert!(
            est.relative_error(n) <= 0.10,
            "rate law must hold under {label} phases: n_hat {:.1}",
            est.n_hat
        );
        if label == "uniform" {
            // Independent phases: the variance law reads ~N directly —
            // an order of magnitude below the synchronized N² reading.
            assert!(
                nv < (n * n) as f64 / 10.0,
                "desynchronized variance reading should collapse below N²: {nv:.0}"
            );
        } else {
            assert!(
                nv > (n * n) as f64 / 10.0,
                "synchronized variance reading should approach N²: {nv:.0}"
            );
        }
    }
    if let (Some(path), Some(manifest)) = (&report_path, &manifest) {
        manifest.write(path).expect("write run manifest");
        println!("wrote run manifest to {}", path.display());
    }
    if let Some(path) = &events_path {
        log.write_jsonl(path).expect("write harness event log");
        println!("wrote harness event log to {}", path.display());
    }
    sync_table.print();
    sync_table.save_csv("fig_million_flows_phases").unwrap();
    println!(
        "Reading: under one shared τ grid every flow's Bernoulli window offset is \
         perfectly correlated, so the independent-phase variance estimator overshoots \
         to ~N² — the synchronization diagnostic. Desynchronizing the padding clocks \
         (uniform per-flow phases) removes exactly that signal while the rate law, \
         which only needs the mean, is untouched."
    );
}
