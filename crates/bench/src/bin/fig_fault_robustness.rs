//! **Fault robustness** — aggregate-adversary accuracy under injected
//! faults, and harness fault tolerance under injected crashes.
//!
//! Two claims, one per table:
//!
//! 1. **Graceful degradation of estimation (in-sim faults).** The
//!    10⁴-flow cohort aggregate runs under a seeded [`FaultPlan`]:
//!    i.i.d. and bursty (Gilbert–Elliott) trunk loss, scheduled trunk
//!    outages, and periodic observer measurement gaps. The naive rate
//!    law fed the raw gapped counts reads low by the unobserved
//!    fraction (~29 % at 5 % loss + 25 % observer outage — the
//!    collapse); the gap-aware estimator keys on the window coverage
//!    mask, skips blind windows and rescales partial ones, and stays
//!    **within ±15 %** (gate) — its residual error is the *real*
//!    trunk loss, which no observer-side correction can recover.
//!    A trunk *outage* row separates the two fault kinds: when the
//!    link itself is down, coverage stays 1.0 and both estimators
//!    undercount by the traffic the outage removed — that is signal,
//!    not a measurement fault. (Synchronized CIT arrives in τ-grid
//!    bursts, so a periodic outage quantizes to whole bursts: 8 %
//!    downtime swallows 10 % of grid points here.)
//!
//! 2. **Harness fault tolerance (layer 2).** A sharded run of the same
//!    faulted configuration with an injected worker panic must retry
//!    the crashed shard once and produce a merged window series
//!    **bit-identical** to an undisturbed run (gate); a run under a
//!    deliberately small event-budget watchdog must end early with a
//!    truncated series that is a bit-identical *prefix* of the
//!    unbounded run's (gate).
//!
//! Scale via `LINKPAD_SCALE` (`quick` for CI smoke: the two gated
//! fault rows over 2 shards; `paper` default: all fault rows over 4
//! shards). Run:
//! `cargo run --release -p linkpad-bench --bin fig_fault_robustness`
//!
//! Observability flags (see DESIGN.md §Observability):
//! * `--report <path>` — write the machine-readable run manifest of the
//!   watchdog-bounded harness run: the one whose `interrupted: true`
//!   flag and truncation record prove a partial result can never pose
//!   as a complete one. Also enables engine profiling on that run.
//! * `--events <path>` — write the harness lifecycle event log (fault
//!   plan activations, the injected panic and its retry, the watchdog
//!   truncation, observer gap windows) for every sharded run here, as
//!   JSONL.
//!
//! [`FaultPlan`]: linkpad_sim::fault::FaultPlan

use linkpad_adversary::aggregate::{estimate_flow_count, estimate_flow_count_gap_aware};
use linkpad_bench::perf::provisioned_trunk_bps;
use linkpad_bench::table::Table;
use linkpad_obs::EventLog;
use linkpad_sim::fault::{FaultPlan, LossModel, OutageSchedule};
use linkpad_sim::observer::WindowStats;
use linkpad_sim::time::SimDuration;
use linkpad_workloads::scenario::ScenarioBuilder;
use linkpad_workloads::shard::ShardedAggregate;
use std::path::PathBuf;

/// Flows in the estimation-accuracy table (the ISSUE gate's N).
const FLOWS: usize = 10_000;
/// Flows per cohort node.
const COHORT: usize = 1_024;
/// Observer window = 20τ: integer W/τ, the rate law's exact regime.
const WINDOW_OVER_TAU: f64 = 20.0;
/// Steady-state windows skipped (gateway phase-in) / measured.
const SKIP: usize = 2;
const MEASURED: usize = 8;
/// Coverage below this is a blind window: skip, don't rescale.
const MIN_COVERAGE: f64 = 0.4;

fn secs(x: f64) -> SimDuration {
    SimDuration::from_secs_f64(x)
}

/// The ISSUE's loss axis: 5 % i.i.d. Bernoulli trunk loss.
fn iid_loss() -> LossModel {
    LossModel::Bernoulli { p: 0.05 }
}

/// Bursty loss at the same 5 % mean: π_bad = 0.01/0.21 ≈ 0.048,
/// mean = 0.03·(1−π) + 0.45·π = 0.05, mean burst ≈ 5 packets.
fn bursty_loss() -> LossModel {
    LossModel::GilbertElliott {
        p_good_to_bad: 0.01,
        p_bad_to_good: 0.2,
        loss_good: 0.03,
        loss_bad: 0.45,
    }
}

/// Observer outage: blind for one whole window out of every four
/// (25 % downtime, aligned to the window grid so the mask is crisp:
/// every fourth window has coverage 0.0, the rest 1.0).
fn observer_outage(window: f64) -> OutageSchedule {
    OutageSchedule::new(secs(4.0 * window), secs(window))
}

/// Trunk outage: the *link* down 8 % of the time, twice per window
/// (period W/2 = 10τ). Synchronized CIT traffic arrives in bursts on
/// the τ grid, so the outage doesn't thin the stream by its down
/// fraction — it swallows whole bursts. An 8 ms outage per 100 ms
/// period covers 1 of the 10 grid points → ~10 % drop, a quantization
/// the table records honestly (`drop_pct` vs the 8 % schedule).
fn trunk_outage(window: f64) -> OutageSchedule {
    OutageSchedule::new(secs(window / 2.0), secs(0.08 * window / 2.0))
}

fn builder(seed: u64, flows: usize, window: f64, plan: Option<FaultPlan>) -> ScenarioBuilder {
    let b = ScenarioBuilder::aggregate(seed, flows)
        .with_payload_rate(10.0)
        .with_trunk(provisioned_trunk_bps(flows), 5e-3)
        .with_trunk_observer(window)
        .with_cohorts(COHORT);
    match plan {
        Some(p) => b.with_faults(p),
        None => b,
    }
}

/// Every bit of a merged window series that the adversary can see:
/// counts, bytes, pooled PIAT moments and the coverage mask.
fn series_bits(windows: &[WindowStats]) -> Vec<u64> {
    let mut bits = Vec::with_capacity(windows.len() * 6);
    for w in windows {
        bits.push(w.count);
        bits.push(w.bytes);
        bits.push(w.coverage.to_bits());
        bits.push(w.piats.count());
        bits.push(w.piats.mean().unwrap_or(f64::NAN).to_bits());
        bits.push(w.piats.variance().unwrap_or(f64::NAN).to_bits());
    }
    bits
}

fn main() {
    let mut report_path: Option<PathBuf> = None;
    let mut events_path: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--report" | "--events" => match argv.next() {
                Some(p) if arg == "--report" => report_path = Some(PathBuf::from(p)),
                Some(p) => events_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("fig_fault_robustness: {arg} needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("fig_fault_robustness: unknown argument {other:?}");
                eprintln!("usage: fig_fault_robustness [--report <path>] [--events <path>]");
                std::process::exit(2);
            }
        }
    }
    let observing = report_path.is_some() || events_path.is_some();
    let mut log = EventLog::new();

    let quick = matches!(
        std::env::var("LINKPAD_SCALE")
            .ok()
            .as_deref()
            .map(str::trim),
        Some("quick")
    );
    let shards = if quick { 2 } else { 4 };
    let tau = ScenarioBuilder::aggregate(1, 1).defaults.tau;
    let window = WINDOW_OVER_TAU * tau;
    let sim_secs = window * (SKIP + MEASURED + 1) as f64;

    // ---- Part 1: estimation accuracy under in-sim faults -----------------
    // (label, fault plan, paper-scale-only)
    let configs: Vec<(&str, Option<FaultPlan>, bool)> = vec![
        ("fault-free", None, false),
        (
            "iid loss 5%",
            Some(FaultPlan::new(9).with_trunk_loss(iid_loss())),
            true,
        ),
        (
            "bursty loss (GE, mean 5%)",
            Some(FaultPlan::new(9).with_trunk_loss(bursty_loss())),
            true,
        ),
        (
            "trunk outage (8% down)",
            Some(FaultPlan::new(9).with_trunk_outage(trunk_outage(window))),
            true,
        ),
        (
            "iid loss 5% + observer outage 25%",
            Some(
                FaultPlan::new(9)
                    .with_trunk_loss(iid_loss())
                    .with_observer_gaps(observer_outage(window)),
            ),
            false,
        ),
    ];
    let mut table = Table::new(
        format!(
            "Fault robustness: flow-count estimation at N = {FLOWS} under injected \
             faults, W = {:.0} ms = {WINDOW_OVER_TAU}τ, {MEASURED} measured windows \
             (naive = raw gapped counts; gap-aware = coverage-masked + rescaled)",
            window * 1e3
        ),
        &[
            "fault",
            "drop_pct",
            "mean_coverage",
            "used",
            "skipped",
            "naive_n_hat",
            "naive_err_pct",
            "gap_aware_n_hat",
            "gap_aware_err_pct",
        ],
    );
    for (label, plan, paper_only) in configs {
        if quick && paper_only {
            continue;
        }
        let mut s = builder(4242, FLOWS, window, plan)
            .build()
            .expect("faulted aggregate scenario builds");
        s.run_for_secs(sim_secs);
        let handles = s.aggregate.as_ref().expect("aggregate handles");
        let obs = handles.trunk_observer.clone().expect("observer-mode trunk");
        let drop_pct = handles
            .fault_gate
            .as_ref()
            .map_or(0.0, |g| g.drop_fraction() * 100.0);
        let counts = obs.counts();
        let coverages = obs.coverages();
        assert!(
            counts.len() > SKIP + MEASURED,
            "{label}: run too short: {} windows",
            counts.len()
        );
        let span = SKIP..SKIP + MEASURED;
        let naive = estimate_flow_count(&counts[span.clone()], WINDOW_OVER_TAU)
            .expect("naive estimator over steady-state windows");
        let aware = estimate_flow_count_gap_aware(
            &counts[span.clone()],
            &coverages[span],
            WINDOW_OVER_TAU,
            MIN_COVERAGE,
        )
        .expect("gap-aware estimator over steady-state windows");
        let naive_err = naive.relative_error(FLOWS) * 100.0;
        let aware_err = aware.estimate.relative_error(FLOWS) * 100.0;
        eprintln!(
            "{label}: drop {drop_pct:.2}%, naive {:.0} ({naive_err:.1}%), \
             gap-aware {:.0} ({aware_err:.1}%) over {} used / {} skipped",
            naive.n_hat, aware.estimate.n_hat, aware.used, aware.skipped,
        );
        table.row(vec![
            label.to_string(),
            format!("{drop_pct:.2}"),
            format!("{:.2}", aware.mean_coverage),
            aware.used.to_string(),
            aware.skipped.to_string(),
            format!("{:.0}", naive.n_hat),
            format!("{naive_err:.1}"),
            format!("{:.0}", aware.estimate.n_hat),
            format!("{aware_err:.1}"),
        ]);

        // Gates.
        assert!(
            aware_err <= 15.0,
            "{label}: gap-aware estimate off by {aware_err:.1}% (gate: 15%)"
        );
        match label {
            "fault-free" => {
                assert!(naive_err <= 10.0, "fault-free naive err {naive_err:.1}%");
                assert_eq!(aware.skipped, 0, "full coverage skips nothing");
            }
            "iid loss 5% + observer outage 25%" => {
                assert!(
                    naive_err > 15.0,
                    "naive must collapse under observer gaps: {naive_err:.1}%"
                );
                assert!(aware.skipped >= 1, "blind windows must be masked out");
            }
            _ => {}
        }
        if label.contains("loss") {
            assert!(
                (drop_pct - 5.0).abs() < 1.5,
                "{label}: trunk drop fraction {drop_pct:.2}% (configured mean 5%)"
            );
        }
    }
    table.print();
    table.save_csv("fig_fault_robustness").unwrap();
    println!(
        "✓ gap-aware flow count within ±15% at N = {FLOWS} under 5% trunk loss \
         + 25% observer outage (naive reads ~29% low)"
    );

    // ---- Part 2: harness fault tolerance ---------------------------------
    // The faulted configuration again, sharded: worker crashes and
    // wall/event budgets must not change a single recorded bit.
    let h_flows = 4_096;
    let h_window = window;
    let h_secs = h_window * (SKIP + 4 + 1) as f64;
    let h_builder = || {
        ScenarioBuilder::aggregate(7171, h_flows)
            .with_payload_rate(10.0)
            .with_trunk(provisioned_trunk_bps(h_flows), 5e-3)
            .with_trunk_observer(h_window)
            .with_cohorts(512)
            .with_shards(shards)
            .with_faults(
                FaultPlan::new(9)
                    .with_trunk_loss(iid_loss())
                    .with_observer_gaps(observer_outage(h_window)),
            )
    };
    let mut harness_table = Table::new(
        format!(
            "Harness fault tolerance: {h_flows} faulted flows over {shards} shards \
             (clean run = no injected harness fault)"
        ),
        &["harness_fault", "windows", "events", "outcome"],
    );

    let clean_agg = ShardedAggregate::new(h_builder()).expect("sharded configuration valid");
    let clean = if observing {
        clean_agg.run_for_secs_logged(h_secs, shards, &mut log)
    } else {
        clean_agg.run_for_secs(h_secs)
    }
    .expect("clean sharded run");
    assert!(
        clean.windows.iter().any(|w| w.coverage < 1.0),
        "observer gaps must survive the shard merge"
    );
    harness_table.row(vec![
        "none (clean)".to_string(),
        clean.windows.len().to_string(),
        clean.events().to_string(),
        "baseline".to_string(),
    ]);

    // An injected worker panic: caught, shard retried once, merge
    // bit-identical to the undisturbed run.
    let mut crashed = ShardedAggregate::new(h_builder()).expect("sharded configuration valid");
    crashed.inject_panic_once(1);
    let retried = if observing {
        crashed.run_for_secs_logged(h_secs, shards, &mut log)
    } else {
        crashed.run_for_secs(h_secs)
    }
    .expect("retried sharded run");
    assert_eq!(
        series_bits(&retried.windows),
        series_bits(&clean.windows),
        "retried merge must be bit-identical to the clean run"
    );
    assert!(!retried.interrupted());
    harness_table.row(vec![
        "worker panic (shard 1)".to_string(),
        retried.windows.len().to_string(),
        retried.events().to_string(),
        "retried; merge bit-identical".to_string(),
    ]);

    // A deliberately small per-shard event budget: the watchdog ends
    // each shard early and the merged series is a bit-identical
    // *prefix* of the unbounded run's.
    let budget = clean.events() / shards as u64 / 4;
    let mut bounded_agg = ShardedAggregate::new(h_builder())
        .expect("sharded configuration valid")
        .with_watchdog(Some(budget), None);
    if report_path.is_some() {
        bounded_agg = bounded_agg.with_profiling();
    }
    let bounded = if observing {
        bounded_agg.run_for_secs_logged(h_secs, shards, &mut log)
    } else {
        bounded_agg.run_for_secs(h_secs)
    }
    .expect("watchdog-bounded sharded run");
    assert!(bounded.interrupted(), "the budget must trip the watchdog");
    eprintln!(
        "*** TRUNCATED RUN (deliberate): the {budget}-event/shard watchdog stopped the \
         bounded run — only {} complete windows survive; its manifest records \
         interrupted + the truncation point ***",
        bounded.windows.len()
    );
    assert!(
        bounded.windows.len() < clean.windows.len(),
        "interrupted run keeps fewer windows ({} vs {})",
        bounded.windows.len(),
        clean.windows.len()
    );
    assert_eq!(
        series_bits(&bounded.windows),
        series_bits(&clean.windows[..bounded.windows.len()]),
        "partial series must be a bit-identical prefix of the full run"
    );
    harness_table.row(vec![
        format!("watchdog ({budget} events/shard)"),
        bounded.windows.len().to_string(),
        bounded.events().to_string(),
        format!(
            "interrupted; {}-window prefix bit-identical",
            bounded.windows.len()
        ),
    ]);

    if let Some(path) = &report_path {
        let manifest = bounded_agg.manifest("fig_fault_robustness", &bounded);
        assert!(manifest.interrupted, "the bounded manifest must say so");
        manifest.write(path).expect("write run manifest");
        println!("wrote run manifest (truncated run) to {}", path.display());
    }
    if let Some(path) = &events_path {
        log.write_jsonl(path).expect("write harness event log");
        println!("wrote harness event log to {}", path.display());
    }
    harness_table.print();
    harness_table
        .save_csv("fig_fault_robustness_harness")
        .unwrap();
    println!(
        "✓ injected worker panic retried with a bit-identical merge; watchdog \
         interruption yields a bit-identical prefix"
    );
    println!(
        "Reading: observer gaps are recoverable — the coverage mask says exactly \
         which windows to distrust, and rescaling the rest makes the rate law exact \
         in expectation. Trunk loss and link outages are not: they remove real \
         traffic, so the estimator's residual error equals the drop fraction. The \
         harness layer keeps both stories honest at scale — crashes replay \
         deterministically and budget trips truncate to complete windows instead of \
         corrupting the series."
    );
}
