//! **Defense matrix** — the defense × adversary grid: every first-class
//! padding defense run through the sharded cohort aggregate at
//! N = 10⁴ flows, read by both adversary channels.
//!
//! Rows are defenses (CIT, constant-rate link padding, non-reactive
//! adaptive padding, CIT with variable payload sizes); columns are the
//! adversary's two window channels:
//!
//! 1. **Count channel** — the rate-law flow-count estimate fed the
//!    merged window counts, with `window_over_interval` computed from
//!    the *defense's* mean emission interval (`W/τ` only for the timer
//!    families; `W·rate` for constant-rate, `W/E[T]` for the adaptive
//!    machine's stationary mean). Gate: **±10 %** for every defense —
//!    in particular for ≥ 2 non-CIT defenses, the ISSUE's acceptance
//!    bar.
//! 2. **Byte channel** — the same estimate from window byte rates and
//!    the defense's mean wire size. Until this PR the byte series had
//!    no consumer at all; this column is the dead feature lit up.
//!    Gate: ±10 % for every defense.
//!
//! The `overhead` column prices each defense: trunk bandwidth relative
//! to the CIT/fixed-500-byte baseline (`(E[bytes]/E[T]) / (500/τ)`).
//!
//! A second table injects **observer measurement gaps** (blind one
//! window in four) and compares the naive byte-channel estimate
//! against the coverage-masked gap-aware one for the non-CIT timer
//! defenses: the naive read collapses by the unobserved fraction
//! (gate: > 15 % low), the gap-aware read stays within ±10 % (gate) —
//! the regression test for the mask plumbing on the byte channel.
//!
//! Scale via `LINKPAD_SCALE` (`quick` for CI smoke: 2 shards, 6
//! measured windows; `paper` default: 4 shards, 12 measured windows).
//! Run: `cargo run --release -p linkpad-bench --bin fig_defense_matrix`
//!
//! Observability flags (see DESIGN.md §Observability):
//! * `--report <path>` — write the machine-readable run manifest of the
//!   adaptive-padding run (the stochastic-cohort execution path this
//!   figure exists to validate). Also enables engine profiling.
//! * `--events <path>` — write the harness lifecycle event log for
//!   every sharded run in this binary, as JSONL.

use linkpad_adversary::aggregate::{
    estimate_flow_count, estimate_flow_count_from_bytes, estimate_flow_count_from_bytes_gap_aware,
};
use linkpad_bench::perf::{defense_grid, provisioned_trunk_bps};
use linkpad_bench::table::Table;
use linkpad_obs::EventLog;
use linkpad_sim::fault::{FaultPlan, OutageSchedule};
use linkpad_sim::time::SimDuration;
use linkpad_workloads::aggregate::PhaseSpec;
use linkpad_workloads::scenario::ScenarioBuilder;
use linkpad_workloads::shard::{ShardedAggregate, ShardedRun};
use linkpad_workloads::spec::{PayloadModel, ScheduleSpec};
use std::path::PathBuf;

/// The ISSUE gate's N.
const FLOWS: usize = 10_000;
/// Flows per cohort node.
const COHORT: usize = 1_024;
/// Observer window = 20τ: integer W/interval for CIT (20) and for
/// constant-rate at 125 pps (25), the rate law's exact regimes.
const WINDOW_OVER_TAU: f64 = 20.0;
/// Steady-state windows skipped (gateway phase-in).
const SKIP: usize = 2;
/// Coverage below this is a blind window: skip, don't rescale.
const MIN_COVERAGE: f64 = 0.4;

fn sharded_builder(
    seed: u64,
    flows: usize,
    shards: usize,
    window: f64,
    spec: ScheduleSpec,
    payload: PayloadModel,
) -> ScenarioBuilder {
    ScenarioBuilder::aggregate(seed, flows)
        .with_payload_rate(10.0)
        .with_trunk(provisioned_trunk_bps(flows), 5e-3)
        .with_trunk_observer(window)
        .with_cohorts(COHORT)
        .with_shards(shards)
        .with_phases(PhaseSpec::Uniform { seed: 41 })
        .with_schedule(spec)
        .with_payload_model(payload)
}

/// Window byte rates (bytes/s over the *full* window — low under
/// observer gaps; that is the naive read) and the coverage mask.
fn byte_series(run: &ShardedRun, window: f64) -> (Vec<f64>, Vec<f64>) {
    let rates = run
        .windows
        .iter()
        .map(|w| w.bytes as f64 / window)
        .collect();
    let coverages = run.windows.iter().map(|w| w.coverage).collect();
    (rates, coverages)
}

fn main() {
    let mut report_path: Option<PathBuf> = None;
    let mut events_path: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--report" | "--events" => match argv.next() {
                Some(p) if arg == "--report" => report_path = Some(PathBuf::from(p)),
                Some(p) => events_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("fig_defense_matrix: {arg} needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("fig_defense_matrix: unknown argument {other:?}");
                eprintln!("usage: fig_defense_matrix [--report <path>] [--events <path>]");
                std::process::exit(2);
            }
        }
    }
    let observing = report_path.is_some() || events_path.is_some();
    let mut log = EventLog::new();

    let quick = matches!(
        std::env::var("LINKPAD_SCALE")
            .ok()
            .as_deref()
            .map(str::trim),
        Some("quick")
    );
    let (shards, measured) = if quick { (2, 6) } else { (4, 12) };
    let defaults = ScenarioBuilder::aggregate(1, 1).defaults;
    let tau = defaults.tau;
    let pkt = defaults.packet_size;
    let window = WINDOW_OVER_TAU * tau;
    let sim_secs = window * (SKIP + measured + 1) as f64;
    let baseline_bps = pkt as f64 / tau;

    // ---- Part 1: the defense × adversary-channel matrix ------------------
    let mut table = Table::new(
        format!(
            "Defense matrix: flow-count estimation at N = {FLOWS} over {shards} shards, \
             {COHORT}-flow cohorts, uniform phases, W = {:.0} ms = {WINDOW_OVER_TAU}τ, \
             {measured} measured windows (overhead = trunk bandwidth vs CIT/fixed)",
            window * 1e3
        ),
        &[
            "defense",
            "interval_ms",
            "mean_bytes",
            "overhead",
            "n_hat_counts",
            "count_err_pct",
            "n_hat_bytes",
            "byte_err_pct",
            "events_per_sec",
            "wall_secs",
        ],
    );
    let mut manifest = None;
    let mut non_cit_within_gate = 0usize;
    for (i, (label, spec, payload)) in defense_grid().into_iter().enumerate() {
        let interval = spec.mean_interval(tau);
        let mean_bytes = payload.mean_bytes(pkt);
        let window_over_interval = window / interval;
        let overhead = (mean_bytes / interval) / baseline_bps;
        let mut sharded = ShardedAggregate::new(sharded_builder(
            2311 + i as u64,
            FLOWS,
            shards,
            window,
            spec,
            payload,
        ))
        .expect("sharded configuration valid");
        if report_path.is_some() && label == "adaptive" {
            sharded = sharded.with_profiling();
        }
        let run = if observing {
            sharded.run_for_secs_logged(sim_secs, shards, &mut log)
        } else {
            sharded.run_for_secs(sim_secs)
        }
        .expect("sharded run completes");
        assert!(!run.interrupted(), "{label}: unbudgeted run must complete");
        let span = SKIP..SKIP + measured;
        let counts = run.counts();
        assert!(
            counts.len() > span.end,
            "{label}: run too short: {} windows",
            counts.len()
        );
        let count_est = estimate_flow_count(&counts[span.clone()], window_over_interval)
            .expect("count-channel estimator over steady-state windows");
        let (byte_rates, _) = byte_series(&run, window);
        let byte_est = estimate_flow_count_from_bytes(
            &byte_rates[span],
            window,
            mean_bytes,
            window_over_interval,
        )
        .expect("byte-channel estimator over steady-state windows");
        let count_err = count_est.relative_error(FLOWS) * 100.0;
        let byte_err = byte_est.relative_error(FLOWS) * 100.0;
        eprintln!(
            "{label}: E[T] = {:.2} ms, counts {:.0} ({count_err:.2}%), \
             bytes {:.0} ({byte_err:.2}%), {:.2e} ev/s",
            interval * 1e3,
            count_est.n_hat,
            byte_est.n_hat,
            run.events_per_sec(),
        );
        table.row(vec![
            label.to_string(),
            format!("{:.2}", interval * 1e3),
            format!("{mean_bytes:.0}"),
            format!("{overhead:.2}"),
            format!("{:.0}", count_est.n_hat),
            format!("{count_err:.2}"),
            format!("{:.0}", byte_est.n_hat),
            format!("{byte_err:.2}"),
            format!("{:.0}", run.events_per_sec()),
            format!("{:.2}", run.wall_secs),
        ]);
        if label == "adaptive" {
            manifest = Some(sharded.manifest("fig_defense_matrix", &run));
        }

        // Gates: both channels within ±10 % for every defense.
        assert!(
            count_est.relative_error(FLOWS) <= 0.10,
            "{label}: count-channel estimate off by {count_err:.1}% (gate: 10%)"
        );
        assert!(
            byte_est.relative_error(FLOWS) <= 0.10,
            "{label}: byte-channel estimate off by {byte_err:.1}% (gate: 10%)"
        );
        if label != "cit" {
            non_cit_within_gate += 1;
        }
    }
    assert!(
        non_cit_within_gate >= 2,
        "ISSUE gate: ≥2 non-CIT defenses within ±10% (got {non_cit_within_gate})"
    );
    table.print();
    table.save_csv("fig_defense_matrix").unwrap();
    println!(
        "✓ flow count within ±10% on both channels for all {non_cit_within_gate} non-CIT \
         defenses at N = {FLOWS} ({shards} shards)"
    );

    // ---- Part 2: observer gaps on the byte channel -----------------------
    // Blind one window in four (25 % downtime, window-aligned so the
    // mask is crisp). The naive byte read divides by the full window
    // and collapses; the gap-aware read masks blind windows out and
    // rescales partial ones.
    let g_flows = 4_096;
    // One spare window over Part 1's budget: a trailing observer gap
    // can leave the final window unclosed.
    let g_secs = window * (SKIP + measured + 2) as f64;
    let gaps = OutageSchedule::new(
        SimDuration::from_secs_f64(4.0 * window),
        SimDuration::from_secs_f64(window),
    );
    let mut gap_table = Table::new(
        format!(
            "Observer gaps on the byte channel: N = {g_flows}, blind 1 window in 4 \
             (naive = bytes over the full window; gap-aware = coverage-masked + rescaled)"
        ),
        &[
            "defense",
            "mean_coverage",
            "used",
            "skipped",
            "naive_n_hat",
            "naive_err_pct",
            "gap_aware_n_hat",
            "gap_aware_err_pct",
        ],
    );
    for (i, (label, spec, payload)) in defense_grid().into_iter().enumerate() {
        if label == "cit" || label == "cit_var_payload" {
            continue; // the gap story is per-defense-clock; two non-CIT rows carry it
        }
        let interval = spec.mean_interval(tau);
        let mean_bytes = payload.mean_bytes(pkt);
        let window_over_interval = window / interval;
        let builder = sharded_builder(4177 + i as u64, g_flows, shards, window, spec, payload)
            .with_cohorts(512)
            .with_faults(FaultPlan::new(9).with_observer_gaps(gaps));
        let sharded = ShardedAggregate::new(builder).expect("sharded configuration valid");
        let run = if observing {
            sharded.run_for_secs_logged(g_secs, shards, &mut log)
        } else {
            sharded.run_for_secs(g_secs)
        }
        .expect("gapped sharded run completes");
        let span = SKIP..SKIP + measured;
        let (byte_rates, coverages) = byte_series(&run, window);
        assert!(
            byte_rates.len() > span.end,
            "{label}: gapped run too short: {} windows",
            byte_rates.len()
        );
        let naive = estimate_flow_count_from_bytes(
            &byte_rates[span.clone()],
            window,
            mean_bytes,
            window_over_interval,
        )
        .expect("naive byte-channel estimator");
        let aware = estimate_flow_count_from_bytes_gap_aware(
            &byte_rates[span.clone()],
            &coverages[span],
            window,
            mean_bytes,
            window_over_interval,
            MIN_COVERAGE,
        )
        .expect("gap-aware byte-channel estimator");
        let naive_err = naive.relative_error(g_flows) * 100.0;
        let aware_err = aware.estimate.relative_error(g_flows) * 100.0;
        eprintln!(
            "{label}: naive {:.0} ({naive_err:.1}%), gap-aware {:.0} ({aware_err:.1}%) \
             over {} used / {} skipped",
            naive.n_hat, aware.estimate.n_hat, aware.used, aware.skipped,
        );
        gap_table.row(vec![
            label.to_string(),
            format!("{:.2}", aware.mean_coverage),
            aware.used.to_string(),
            aware.skipped.to_string(),
            format!("{:.0}", naive.n_hat),
            format!("{naive_err:.1}"),
            format!("{:.0}", aware.estimate.n_hat),
            format!("{aware_err:.1}"),
        ]);

        // Gates: the naive read must collapse, the masked one must not.
        assert!(
            naive_err > 15.0,
            "{label}: naive byte read must collapse under 25% observer gaps: {naive_err:.1}%"
        );
        assert!(
            aware.estimate.relative_error(g_flows) <= 0.10,
            "{label}: gap-aware byte estimate off by {aware_err:.1}% (gate: 10%)"
        );
        assert!(aware.skipped >= 1, "{label}: blind windows must be masked");
    }
    gap_table.print();
    gap_table.save_csv("fig_defense_matrix_gaps").unwrap();

    if let (Some(path), Some(manifest)) = (&report_path, &manifest) {
        manifest.write(path).expect("write run manifest");
        println!("wrote run manifest to {}", path.display());
    }
    if let Some(path) = &events_path {
        log.write_jsonl(path).expect("write harness event log");
    }
    println!(
        "✓ naive byte read collapses under observer gaps; coverage-masked read \
         within ±10% for every non-CIT timer defense"
    );
    println!(
        "Reading: none of these defenses hides N from a trunk tap — the rate law \
         only needs the defense's mean emission interval and mean wire size, both \
         public parameters. What they price differently is bandwidth: constant-rate \
         at 125 pps costs 1.25×, adaptive padding ~1.13× with a burst/gap texture, \
         and payload padding moves cost into bytes while leaving timing untouched. \
         Hiding N requires breaking the per-flow stationarity the estimate keys on, \
         not reshaping it."
    );
}
