//! CI regression gate: diff the two newest `BENCH_N.json` baselines and
//! fail on any >10 % regression of a directional metric.
//!
//! Usage:
//! * `bench_compare` — auto-discover the two highest-numbered
//!   `BENCH_N.json` files at the workspace root.
//! * `bench_compare <prev.json> <new.json>` — compare two explicit files.
//! * `bench_compare --json <verdict.json> [...]` — additionally write
//!   the full verdict (every matched metric, raw and drift-corrected
//!   changes, pass/fail) as machine-readable JSON, for CI artifacts.
//! * `BENCH_COMPARE_THRESHOLD=0.15` overrides the regression threshold.
//!
//! Exit code 0 = no regression (or only one baseline exists yet),
//! 1 = at least one metric regressed beyond the threshold,
//! 2 = usage/parse error.

use linkpad_bench::compare::{
    compare_reports, comparison_json, latest_two_baselines, measure_drift, section_changes, Json,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn load(path: &PathBuf) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let threshold: f64 = std::env::var("BENCH_COMPARE_THRESHOLD")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.10);

    // Pull the `--json <path>` flag out before positional matching so
    // the no-arg CI invocation keeps working unchanged.
    let mut json_path: Option<PathBuf> = None;
    let mut args: Vec<PathBuf> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "--json" {
            match raw.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("bench_compare: --json needs a path");
                    return ExitCode::from(2);
                }
            }
        } else {
            args.push(PathBuf::from(a));
        }
    }
    let (prev_path, new_path) = match args.as_slice() {
        [] => {
            // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
            let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
            match latest_two_baselines(&root) {
                Some(pair) => pair,
                None => {
                    println!(
                        "bench_compare: fewer than two BENCH_N.json baselines; nothing to compare"
                    );
                    return ExitCode::SUCCESS;
                }
            }
        }
        [prev, new] => (prev.clone(), new.clone()),
        _ => {
            eprintln!("usage: bench_compare [--json <verdict.json>] [<prev.json> <new.json>]");
            return ExitCode::from(2);
        }
    };

    let (prev, new) = match (load(&prev_path), load(&new_path)) {
        (Ok(p), Ok(n)) => (p, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "bench_compare: {} → {} (threshold {:.0}%)",
        prev_path.display(),
        new_path.display(),
        threshold * 100.0
    );
    if let Some(path) = &json_path {
        // The verdict recomputes the same drift/comparison pipeline the
        // table below prints, so the artifact cannot disagree with the
        // exit code.
        if let Err(e) = std::fs::write(path, comparison_json(&prev, &new, threshold)) {
            eprintln!("bench_compare: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("  wrote machine-readable verdict to {}", path.display());
    }
    // Sections appearing or disappearing between consecutive baselines
    // is expected growth, not a regression — note it and move on.
    let (added, removed) = section_changes(&prev, &new);
    if !added.is_empty() {
        println!(
            "  note: new sections (no baseline to gate): {}",
            added.join(", ")
        );
    }
    if !removed.is_empty() {
        println!("  note: retired sections: {}", removed.join(", "));
    }
    // Machine-speed drift between the two recordings, measured from the
    // heap yardstick (untouched code): divide it out so the gate scores
    // the code change, not the container change.
    let drift = measure_drift(&prev, &new);
    if (drift.global() - 1.0).abs() > 0.02 {
        // Gating pools every yardstick leaf into one geomean factor
        // (each individual leaf is a noisy micro-measurement; see
        // DriftModel docs); the per-section readings are printed so a
        // real localized anomaly still gets eyes on it.
        let spread = drift
            .sections()
            .iter()
            .map(|(k, f)| format!("{k} ×{f:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "  note: machine-speed drift ×{:.3} between recordings (pooled heap yardstick; \
             per-section readings: {spread}); gating drift-corrected changes",
            drift.global()
        );
    }
    let comparisons = compare_reports(&prev, &new);
    if comparisons.is_empty() {
        println!("  no shared directional metrics — nothing to gate");
        return ExitCode::SUCCESS;
    }
    let mut regressed = false;
    for c in &comparisons {
        let corrected = c.drift_corrected_change(drift.global());
        let gate = c.gate_threshold(threshold);
        let verdict = if corrected < -gate {
            regressed = true;
            "REGRESSED"
        } else if corrected < 0.0 && c.noise_allowance > 1.0 {
            "ok (within widened small-scale gate)"
        } else if corrected < 0.0 {
            "ok (within threshold)"
        } else {
            "ok"
        };
        println!(
            "  {:<60} {:>14.4} → {:>14.4}  {:+6.1}% raw  {:+6.1}% corrected  {verdict}",
            c.metric,
            c.prev,
            c.new,
            c.change * 100.0,
            corrected * 100.0
        );
    }
    if regressed {
        eprintln!(
            "bench_compare: FAIL — at least one metric regressed more than {:.0}%",
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("bench_compare: OK");
        ExitCode::SUCCESS
    }
}
