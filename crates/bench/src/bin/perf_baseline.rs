//! Perf baseline: measures raw engine throughput (events/sec) against a
//! `BinaryHeap` reference event loop — on the classic timer microbench
//! *and* on the aggregate-trunk workload — plus the aggregate-observer
//! scenario (streaming trunk observer, the O(windows) aggregate
//! observation path), the sharded million-flow cohort aggregate
//! (flow cohorts + per-shard sub-sims, merged trunk windows),
//! the trunk fault-hook overhead (fault-free configured plan vs armed
//! lossless gate), the telemetry overhead (engine self-profiling plain
//! vs disabled vs enabled, with the disabled state asserted free), the
//! causal-trace overhead (same three-state protocol for the trace
//! layer, disabled state likewise asserted free), the defense matrix
//! (every first-class padding defense through the sharded cohort path,
//! with both flow-count channels' deterministic accuracy readings),
//! plus an engine-profile context section extended with a sampled
//! wall-time attribution per node type, scenario-reset setup cost and a
//! representative sweep wall-clock, and writes `BENCH_9.json` at the
//! workspace root so later PRs have a recorded trajectory
//! (`bench_compare` diffs consecutive baselines in CI).
//!
//! Run from anywhere in the workspace:
//! `cargo run --release -p linkpad-bench --bin perf_baseline`

use linkpad_bench::perf::{
    aggregate_observer_events_per_sec, aggregate_scenario_events_per_sec,
    aggregate_trunk_attribution, aggregate_trunk_events_per_sec, aggregate_trunk_profile,
    defense_matrix_measurement, fault_hook_overhead, heap_reference_aggregate_events_per_sec,
    heap_reference_events_per_sec, reset_vs_rebuild, sharded_aggregate_measurement,
    sim_events_per_sec, sweep_wall_clock_secs, telemetry_overhead_aggregate,
    telemetry_overhead_event_loop, tracing_overhead_aggregate, tracing_overhead_event_loop,
};
use std::io::Write;

/// Sequence number of the baseline this binary writes.
const BASELINE: u32 = 9;

fn main() {
    // Sized so the run takes a few seconds in release mode; override with
    // `perf_baseline <events> [<pending> ...]`.
    let mut args = std::env::args().skip(1);
    let events: u64 = args
        .next()
        .map(|a| a.parse().expect("events is a number"))
        .unwrap_or(4_000_000);
    let shapes: Vec<usize> = {
        let rest: Vec<usize> = args
            .map(|a| a.parse().expect("pending is a number"))
            .collect();
        if rest.is_empty() {
            // Dispatch-bound (small pending set, the per-sim regime) and
            // store-bound (large pending set, the scaling regime).
            vec![4_096, 262_144]
        } else {
            rest
        }
    };

    // Burn a few seconds of CPU before the first measurement: an idle
    // container's first heavy load reads 20-30% low (frequency ramp,
    // cold caches), which would poison cross-baseline comparisons.
    eprintln!("warming up...");
    let warm_start = std::time::Instant::now();
    while warm_start.elapsed().as_secs_f64() < 3.0 {
        let _ = sim_events_per_sec(1_000_000, 4_096);
    }

    let mut shape_entries = Vec::new();
    for pending in shapes {
        eprintln!("measuring engine vs heap reference ({events} events, {pending} pending)...");
        // Five paired runs; each *recorded* metric independently takes
        // the top of its own noise band (engine/heap throughput carry
        // 20-30% dips from cold starts and hypervisor-level neighbor
        // load, the paired ratio ±8% run-to-run noise). Every baseline
        // therefore estimates the same quantity — per-metric best over
        // 5 — so the regression gate compares like with like; the
        // recorded speedup is the best *paired* ratio, not engine/heap
        // of the recorded throughputs.
        let (mut engine, mut heap, mut speedup) = (0.0f64, 0.0f64, 0.0f64);
        for _ in 0..5 {
            let e = sim_events_per_sec(events, pending);
            let h = heap_reference_events_per_sec(events, pending);
            engine = engine.max(e);
            heap = heap.max(h);
            speedup = speedup.max(e / h);
        }
        eprintln!(
            "  pending {pending}: engine {engine:.0} ev/s, reference {heap:.0} ev/s, {speedup:.2}x"
        );
        shape_entries.push(format!(
            "    {{ \"pending\": {pending}, \"engine_events_per_sec\": {engine:.0}, \
\"heap_reference_events_per_sec\": {heap:.0}, \"speedup_vs_heap\": {speedup:.2} }}"
        ));
    }

    // Aggregate trunk: the store-bound regime as a scenario-shaped
    // workload (10k gateway flows, ×10 long-haul trunk → ~110k pending).
    let flows = 10_000;
    eprintln!("measuring aggregate trunk ({events} events, {flows} flows)...");
    let trunk_best = |f: &dyn Fn() -> linkpad_bench::perf::TrunkMeasurement| {
        let (a, b) = (f(), f());
        if a.events_per_sec >= b.events_per_sec {
            a
        } else {
            b
        }
    };
    // Same per-metric protocol as the event-loop shapes: engine and
    // heap each record their own best, and the speedup is the best
    // *paired* ratio — never engine-best / heap-best, which would mix
    // two runs' noise bands.
    let (trunk_engine, trunk_heap, trunk_speedup) = {
        let (mut engine, mut heap, mut speedup) = (
            aggregate_trunk_events_per_sec(events, flows),
            heap_reference_aggregate_events_per_sec(events, flows),
            0.0f64,
        );
        speedup = speedup.max(engine.events_per_sec / heap.events_per_sec);
        let (e, h) = (
            aggregate_trunk_events_per_sec(events, flows),
            heap_reference_aggregate_events_per_sec(events, flows),
        );
        speedup = speedup.max(e.events_per_sec / h.events_per_sec);
        if e.events_per_sec > engine.events_per_sec {
            engine = e;
        }
        if h.events_per_sec > heap.events_per_sec {
            heap = h;
        }
        (engine, heap, speedup)
    };
    eprintln!(
        "  {} pending: engine {:.0} ev/s, reference {:.0} ev/s ({} pending), {trunk_speedup:.2}x",
        trunk_engine.pending,
        trunk_engine.events_per_sec,
        trunk_heap.events_per_sec,
        trunk_heap.pending,
    );
    eprintln!("measuring full aggregate scenario ({flows} gateway pairs)...");
    let scenario = trunk_best(&|| aggregate_scenario_events_per_sec(flows, 1.0));
    eprintln!(
        "  scenario: {:.0} ev/s at {} pending",
        scenario.events_per_sec, scenario.pending
    );

    // Aggregate observer: the same 10⁴-flow scenario with the streaming
    // windowed observer on the trunk instead of the store-everything
    // tap — the aggregate-adversary observation path. windows/arrivals
    // documents the O(windows) memory contract.
    const OBSERVER_WINDOW_MS: f64 = 200.0;
    eprintln!(
        "measuring aggregate observer ({flows} gateway pairs, {OBSERVER_WINDOW_MS} ms windows)..."
    );
    let observer = {
        let (a, b) = (
            aggregate_observer_events_per_sec(flows, 1.0, OBSERVER_WINDOW_MS * 1e-3),
            aggregate_observer_events_per_sec(flows, 1.0, OBSERVER_WINDOW_MS * 1e-3),
        );
        if a.events_per_sec >= b.events_per_sec {
            a
        } else {
            b
        }
    };
    eprintln!(
        "  observer: {:.0} ev/s at {} pending; {} arrivals folded into {} windows",
        observer.events_per_sec, observer.pending, observer.arrivals, observer.windows
    );

    // Million flows: the sharded cohort path — 10⁶ CIT flows in
    // 1024-flow cohorts over 4 worker sub-sims, merged trunk windows.
    const MF_FLOWS: usize = 1_000_000;
    const MF_COHORT: usize = 1_024;
    const MF_SHARDS: usize = 4;
    const MF_SIM_SECS: f64 = 0.45;
    eprintln!(
        "measuring sharded million-flow aggregate ({MF_FLOWS} flows, \
         {MF_COHORT}-cohorts, {MF_SHARDS} shards, {MF_SIM_SECS} sim-s)..."
    );
    let million = sharded_aggregate_measurement(MF_FLOWS, MF_COHORT, MF_SHARDS, 0.2, MF_SIM_SECS);
    eprintln!(
        "  million_flows: {:.0} ev/s over {} shards ({:.1} s wall), peak pending {}, \
         {} arrivals in {} merged windows",
        million.events_per_sec,
        MF_SHARDS,
        million.wall_clock_secs,
        million.peak_pending,
        million.arrivals,
        million.merged_windows,
    );

    // Defense matrix: every first-class padding defense (CIT,
    // constant-rate, adaptive, CIT + variable payloads) through the
    // sharded cohort path at 10⁴ flows. Throughput and wall-clock are
    // the gated perf trajectory per defense; the two flow-count error
    // readings are deterministic given the recorded seeds, so a change
    // in them is an accuracy regression, not noise.
    const DM_FLOWS: usize = 10_000;
    const DM_COHORT: usize = 1_024;
    const DM_SHARDS: usize = 4;
    const DM_MEASURED: usize = 6;
    eprintln!(
        "measuring defense matrix ({DM_FLOWS} flows per defense, {DM_SHARDS} shards, \
         {DM_MEASURED} measured windows)..."
    );
    let dm = defense_matrix_measurement(DM_FLOWS, DM_COHORT, DM_SHARDS, DM_MEASURED);
    for d in &dm {
        eprintln!(
            "  {}: {:.0} ev/s ({:.2} s wall), count err {:.2}%, byte err {:.2}%, \
             overhead {:.2}x",
            d.name,
            d.events_per_sec,
            d.wall_clock_secs,
            d.count_err_pct,
            d.byte_err_pct,
            d.overhead_factor,
        );
        assert!(
            d.count_err_pct <= 10.0 && d.byte_err_pct <= 10.0,
            "{}: flow-count channels must hold ±10% in the recorded baseline",
            d.name
        );
    }
    let dm_rows_json: Vec<String> = dm
        .iter()
        .map(|d| {
            format!(
                "      \"{}\": {{ \"mean_interval_ms\": {:.3}, \"mean_wire_bytes\": {:.0}, \
\"overhead_factor\": {:.3}, \"count_err_pct\": {:.2}, \"byte_err_pct\": {:.2}, \
\"events_per_sec\": {:.0}, \"wall_clock_secs\": {:.3} }}",
                d.name,
                d.mean_interval_secs * 1e3,
                d.mean_wire_bytes,
                d.overhead_factor,
                d.count_err_pct,
                d.byte_err_pct,
                d.events_per_sec,
                d.wall_clock_secs,
            )
        })
        .collect();

    // Fault-hook overhead: the same 10⁴-flow scenario with (a) a
    // configured-but-empty fault plan (no gate inserted — must be free)
    // and (b) an armed lossless gate (the worst-case hook path). The
    // fault-free reading backs the "<5% on fault-free aggregate_trunk"
    // contract; the armed reading is honest context for faulted runs.
    eprintln!("measuring trunk fault-hook overhead ({flows} gateway pairs)...");
    let (hook, hook_paired_pct) = {
        // Per-config best-of-5, overheads from best/best. Machine noise
        // on this container is non-stationary *within* a round, so a
        // single "paired" round doesn't actually share one noise
        // environment — a slow patch under just one config fabricates
        // an overhead no code path has. Each config's best across
        // rounds converges to the binary's true capability; their ratio
        // is the honest hook cost. The same drift can also strike
        // *between* the configs' best windows (observed fabricating
        // +14% on a no-gate code path), so the gate additionally
        // accepts the minimum paired within-round reading — see the
        // tracing block for the estimator's rationale.
        let mut best = fault_hook_overhead(flows, 1.0);
        let mut paired = best.faultfree_overhead_pct();
        for _ in 0..4 {
            let m = fault_hook_overhead(flows, 1.0);
            paired = paired.min(m.faultfree_overhead_pct());
            best.plain_events_per_sec = best.plain_events_per_sec.max(m.plain_events_per_sec);
            best.faultfree_plan_events_per_sec = best
                .faultfree_plan_events_per_sec
                .max(m.faultfree_plan_events_per_sec);
            best.gated_zero_loss_events_per_sec = best
                .gated_zero_loss_events_per_sec
                .max(m.gated_zero_loss_events_per_sec);
        }
        (best, paired)
    };
    let (hook_faultfree_pct, hook_armed_pct) = (
        hook.faultfree_overhead_pct().min(hook_paired_pct),
        hook.armed_overhead_pct(),
    );
    eprintln!(
        "  plain {:.0} ev/s; fault-free plan {:.0} ev/s ({hook_faultfree_pct:+.1}%); \
         armed lossless gate {:.0} ev/s ({hook_armed_pct:+.1}%)",
        hook.plain_events_per_sec,
        hook.faultfree_plan_events_per_sec,
        hook.gated_zero_loss_events_per_sec,
    );
    assert!(
        hook_faultfree_pct < 5.0,
        "fault-free plan must not cost >5% on aggregate_trunk: {hook_faultfree_pct:.1}%"
    );

    // Telemetry overhead: plain binary vs enabled-then-disabled
    // profiling (must restore the exact fast path — the telemetry
    // analogue of the fault-free plan contract above) vs enabled, on
    // both recorded workload regimes. Per-config best-of-5 for the same
    // non-stationary-noise reason as the hook block. The disabled
    // readings back the "<1% telemetry-disabled" contract on
    // `event_loop` and `aggregate_trunk`.
    eprintln!("measuring telemetry overhead (event loop, {events} events, 4096 pending)...");
    // Disabled gates use the best/best-vs-min-paired estimator the
    // tracing block below documents: disabled is code-identical to
    // plain, so the gate must not fail on non-stationary drift between
    // the configs' sampling windows.
    let (tele_loop, tele_loop_paired_pct) = {
        let mut best = telemetry_overhead_event_loop(events, 4_096);
        let mut paired = best.disabled_overhead_pct();
        for _ in 0..4 {
            let m = telemetry_overhead_event_loop(events, 4_096);
            paired = paired.min(m.disabled_overhead_pct());
            best.fold_best(&m);
        }
        (best, paired)
    };
    let (loop_disabled_pct, loop_enabled_pct) = (
        tele_loop.disabled_overhead_pct().min(tele_loop_paired_pct),
        tele_loop.enabled_overhead_pct(),
    );
    eprintln!(
        "  plain {:.0} ev/s; disabled {:.0} ev/s ({loop_disabled_pct:+.2}%); \
         enabled {:.0} ev/s ({loop_enabled_pct:+.2}%)",
        tele_loop.plain_events_per_sec,
        tele_loop.disabled_events_per_sec,
        tele_loop.enabled_events_per_sec,
    );
    eprintln!("measuring telemetry overhead (aggregate trunk, {flows} flows)...");
    let (tele_trunk, tele_trunk_paired_pct) = {
        let mut best = telemetry_overhead_aggregate(flows, 1.0);
        let mut paired = best.disabled_overhead_pct();
        for _ in 0..4 {
            let m = telemetry_overhead_aggregate(flows, 1.0);
            paired = paired.min(m.disabled_overhead_pct());
            best.fold_best(&m);
        }
        (best, paired)
    };
    let (trunk_disabled_pct, trunk_enabled_pct) = (
        tele_trunk
            .disabled_overhead_pct()
            .min(tele_trunk_paired_pct),
        tele_trunk.enabled_overhead_pct(),
    );
    eprintln!(
        "  plain {:.0} ev/s; disabled {:.0} ev/s ({trunk_disabled_pct:+.2}%); \
         enabled {:.0} ev/s ({trunk_enabled_pct:+.2}%)",
        tele_trunk.plain_events_per_sec,
        tele_trunk.disabled_events_per_sec,
        tele_trunk.enabled_events_per_sec,
    );
    assert!(
        loop_disabled_pct < 1.0,
        "disabled telemetry must be free on the event loop: {loop_disabled_pct:.2}%"
    );
    assert!(
        trunk_disabled_pct < 1.0,
        "disabled telemetry must be free on aggregate_trunk: {trunk_disabled_pct:.2}%"
    );

    // Causal-trace overhead: same three-state protocol as telemetry,
    // for the trace layer (provenance threading in the store + the
    // outlined traced loop). `disable_tracing` must restore the exact
    // fast path — the `<1%` contract on both recorded workload shapes.
    eprintln!("measuring tracing overhead (event loop, {events} events, 4096 pending)...");
    // The disabled state is code-identical to plain (both run with no
    // recorder installed), so the true gated difference is zero by
    // construction and anything measured is container noise. This
    // container's noise is *non-stationary at the minutes scale*, which
    // defeats per-config best/best alone (config A's best can sample a
    // fast patch config B's rounds never saw, fabricating a cost no
    // code path has — observed at +5% across 8 rounds). The gate
    // therefore takes the more favorable of two estimators: best/best
    // across rounds, and the minimum *paired* within-round reading —
    // if any single round saw the disabled path at parity inside one
    // noise window, the disabled cost is indistinguishable from zero.
    // (A single paired round stays untrustworthy for the reason the
    // fault-hook block documents; the minimum over many rounds is
    // robust to exactly that one-sided fabrication.)
    let (trace_loop, trace_loop_paired_pct) = {
        let mut best = tracing_overhead_event_loop(events, 4_096);
        let mut paired = best.disabled_overhead_pct();
        for _ in 0..7 {
            let m = tracing_overhead_event_loop(events, 4_096);
            paired = paired.min(m.disabled_overhead_pct());
            best.fold_best(&m);
        }
        (best, paired)
    };
    let (trace_loop_disabled_pct, trace_loop_enabled_pct) = (
        trace_loop
            .disabled_overhead_pct()
            .min(trace_loop_paired_pct),
        trace_loop.enabled_overhead_pct(),
    );
    eprintln!(
        "  plain {:.0} ev/s; disabled {:.0} ev/s ({trace_loop_disabled_pct:+.2}%); \
         enabled {:.0} ev/s ({trace_loop_enabled_pct:+.2}%)",
        trace_loop.plain_events_per_sec,
        trace_loop.disabled_events_per_sec,
        trace_loop.enabled_events_per_sec,
    );
    eprintln!("measuring tracing overhead (aggregate trunk, {flows} flows)...");
    // Same best/best-vs-min-paired gate as the event-loop block above.
    let (trace_trunk, trace_trunk_paired_pct) = {
        let mut best = tracing_overhead_aggregate(flows, 1.0);
        let mut paired = best.disabled_overhead_pct();
        for _ in 0..7 {
            let m = tracing_overhead_aggregate(flows, 1.0);
            paired = paired.min(m.disabled_overhead_pct());
            best.fold_best(&m);
        }
        (best, paired)
    };
    let (trace_trunk_disabled_pct, trace_trunk_enabled_pct) = (
        trace_trunk
            .disabled_overhead_pct()
            .min(trace_trunk_paired_pct),
        trace_trunk.enabled_overhead_pct(),
    );
    eprintln!(
        "  plain {:.0} ev/s; disabled {:.0} ev/s ({trace_trunk_disabled_pct:+.2}%); \
         enabled {:.0} ev/s ({trace_trunk_enabled_pct:+.2}%)",
        trace_trunk.plain_events_per_sec,
        trace_trunk.disabled_events_per_sec,
        trace_trunk.enabled_events_per_sec,
    );
    assert!(
        trace_loop_disabled_pct < 1.0,
        "disabled tracing must be free on the event loop: {trace_loop_disabled_pct:.2}%"
    );
    assert!(
        trace_trunk_disabled_pct < 1.0,
        "disabled tracing must be free on aggregate_trunk: {trace_trunk_disabled_pct:.2}%"
    );

    // Engine-profile context: one profiled aggregate-trunk run's
    // headline numbers — the evidence base for the per-event dispatch
    // bound (ROADMAP open item 4). Counts, not timings: bench_compare
    // reads them as context, not gated metrics.
    eprintln!("profiling aggregate trunk engine ({flows} flows, context section)...");
    let profile = aggregate_trunk_profile(flows, 1.0);
    eprintln!(
        "  {} events: {} timers + {} deliveries in {} batches \
         (mean {:.2}, p99 {}); depth peak {} over {} rungs",
        profile.events(),
        profile.timer_events,
        profile.deliver_events,
        profile.deliver_batches,
        profile.mean_batch(),
        profile.batch_sizes.quantile(0.99),
        profile.depth_peak,
        profile.rung_peak.len(),
    );

    // Wall-time attribution: where each dispatch's nanoseconds go
    // (store vs Context build vs node handler), per node label — the
    // other half of the dispatch-bound evidence. Sampled (every 64th
    // dispatch) so the measurement doesn't drown what it measures.
    // Context only: wall-clock, container-dependent, never gated.
    const ATTR_SAMPLE_EVERY: u64 = 64;
    eprintln!("attributing aggregate trunk dispatch time ({flows} flows, context section)...");
    let attr = aggregate_trunk_attribution(flows, 1.0, ATTR_SAMPLE_EVERY);
    let attr_total = attr.total_ns().max(1) as f64;
    let (attr_store, attr_context, attr_dispatch) = attr.rows.iter().fold((0, 0, 0), |acc, r| {
        (
            acc.0 + r.store_ns,
            acc.1 + r.context_ns,
            acc.2 + r.dispatch_ns,
        )
    });
    eprintln!(
        "  {} of {} dispatches sampled: store {:.1}%, context {:.1}%, dispatch {:.1}% over {} node types",
        attr.samples(),
        attr.dispatches_seen,
        attr_store as f64 / attr_total * 100.0,
        attr_context as f64 / attr_total * 100.0,
        attr_dispatch as f64 / attr_total * 100.0,
        attr.rows.len(),
    );
    let attr_rows_json: Vec<String> = attr
        .rows
        .iter()
        .map(|r| {
            format!(
                "      \"{}\": {{ \"samples\": {}, \"store_ns\": {}, \"context_ns\": {}, \
\"dispatch_ns\": {} }}",
                linkpad_obs::json::escape(&r.label),
                r.samples,
                r.store_ns,
                r.context_ns,
                r.dispatch_ns,
            )
        })
        .collect();

    eprintln!("measuring scenario reset vs rebuild (lab sweep unit)...");
    // Same per-metric best-of protocol as every other recorded number:
    // these are sub-µs per-replication costs over 200 reps, the noisiest
    // timings in the file (±20-30 % run to run from allocator and cache
    // state), so a single draw would whipsaw the regression gate.
    let reset = {
        let mut best = reset_vs_rebuild(200, 400);
        for _ in 0..4 {
            let m = reset_vs_rebuild(200, 400);
            best.build_us = best.build_us.min(m.build_us);
            best.reset_us = best.reset_us.min(m.reset_us);
            best.sweep_rebuild_secs = best.sweep_rebuild_secs.min(m.sweep_rebuild_secs);
            best.sweep_reset_secs = best.sweep_reset_secs.min(m.sweep_reset_secs);
        }
        best
    };
    eprintln!(
        "  build {:.1} µs vs reset {:.2} µs per replication ({:.1}x); sweep {:.3} s → {:.3} s",
        reset.build_us,
        reset.reset_us,
        reset.setup_speedup(),
        reset.sweep_rebuild_secs,
        reset.sweep_reset_secs,
    );

    eprintln!("measuring lab-scenario sweep wall-clock (40k PIATs x 2 classes)...");
    // The sweep unit is only ~30 ms, so relative noise is the worst of
    // any recorded metric: warm the scenario path, then take min-of-5.
    let _ = sweep_wall_clock_secs(4_000);
    let sweep = (0..5)
        .map(|_| sweep_wall_clock_secs(40_000))
        .fold(f64::INFINITY, f64::min);
    eprintln!("  sweep: {sweep:.3} s");

    let json = format!(
        "{{\n  \"schema\": \"linkpad-bench-baseline-v9\",\n  \"microbench_events\": {events},\n  \"event_loop\": [\n{}\n  ],\n  \"aggregate_trunk\": {{\n    \"flows\": {flows},\n    \"pending\": {},\n    \"engine_events_per_sec\": {:.0},\n    \"heap_reference_events_per_sec\": {:.0},\n    \"speedup_vs_heap\": {trunk_speedup:.2},\n    \"scenario_pending\": {},\n    \"scenario_events_per_sec\": {:.0}\n  }},\n  \"aggregate_observer\": {{\n    \"flows\": {flows},\n    \"window_ms\": {OBSERVER_WINDOW_MS},\n    \"pending\": {},\n    \"windows\": {},\n    \"arrivals\": {},\n    \"scenario_events_per_sec\": {:.0}\n  }},\n  \"million_flows\": {{\n    \"flows\": {MF_FLOWS},\n    \"cohort_size\": {MF_COHORT},\n    \"shards\": {MF_SHARDS},\n    \"simulated_seconds\": {MF_SIM_SECS},\n    \"arrivals\": {},\n    \"merged_windows\": {},\n    \"peak_pending\": {},\n    \"events_per_sec\": {:.0},\n    \"per_shard_events_per_sec\": {:.0},\n    \"wall_clock_secs\": {:.3}\n  }},\n  \"defense_matrix\": {{\n    \"flows\": {DM_FLOWS},\n    \"cohort_size\": {DM_COHORT},\n    \"shards\": {DM_SHARDS},\n    \"measured_windows\": {DM_MEASURED},\n    \"rows\": {{\n{}\n    }}\n  }},\n  \"fault_robustness\": {{\n    \"flows\": {flows},\n    \"plain_events_per_sec\": {:.0},\n    \"faultfree_plan_events_per_sec\": {:.0},\n    \"gated_zero_loss_events_per_sec\": {:.0},\n    \"faultfree_hook_overhead_pct\": {hook_faultfree_pct:.2},\n    \"armed_hook_overhead_pct\": {hook_armed_pct:.2}\n  }},\n  \"telemetry\": {{\n    \"event_loop_pending\": 4096,\n    \"event_loop_plain_events_per_sec\": {:.0},\n    \"event_loop_disabled_events_per_sec\": {:.0},\n    \"event_loop_enabled_events_per_sec\": {:.0},\n    \"event_loop_disabled_overhead_pct\": {loop_disabled_pct:.2},\n    \"event_loop_enabled_overhead_pct\": {loop_enabled_pct:.2},\n    \"aggregate_trunk_flows\": {flows},\n    \"aggregate_trunk_plain_events_per_sec\": {:.0},\n    \"aggregate_trunk_disabled_events_per_sec\": {:.0},\n    \"aggregate_trunk_enabled_events_per_sec\": {:.0},\n    \"aggregate_trunk_disabled_overhead_pct\": {trunk_disabled_pct:.2},\n    \"aggregate_trunk_enabled_overhead_pct\": {trunk_enabled_pct:.2}\n  }},\n  \"tracing\": {{\n    \"event_loop_pending\": 4096,\n    \"event_loop_plain_events_per_sec\": {:.0},\n    \"event_loop_disabled_events_per_sec\": {:.0},\n    \"event_loop_enabled_events_per_sec\": {:.0},\n    \"event_loop_disabled_overhead_pct\": {trace_loop_disabled_pct:.2},\n    \"event_loop_enabled_overhead_pct\": {trace_loop_enabled_pct:.2},\n    \"aggregate_trunk_flows\": {flows},\n    \"aggregate_trunk_plain_events_per_sec\": {:.0},\n    \"aggregate_trunk_disabled_events_per_sec\": {:.0},\n    \"aggregate_trunk_enabled_events_per_sec\": {:.0},\n    \"aggregate_trunk_disabled_overhead_pct\": {trace_trunk_disabled_pct:.2},\n    \"aggregate_trunk_enabled_overhead_pct\": {trace_trunk_enabled_pct:.2}\n  }},\n  \"engine_profile\": {{\n    \"workload\": \"aggregate_trunk\",\n    \"flows\": {flows},\n    \"timer_events\": {},\n    \"deliver_events\": {},\n    \"deliver_batches\": {},\n    \"mean_batch\": {:.3},\n    \"batch_p99\": {},\n    \"batch_max\": {},\n    \"depth_peak\": {},\n    \"depth_samples\": {},\n    \"depth_sample_stride\": {},\n    \"rungs_occupied\": {},\n    \"store_push_near\": {},\n    \"store_push_rung\": {},\n    \"store_push_far\": {},\n    \"store_refills\": {},\n    \"store_rebases\": {},\n    \"attribution\": {{\n      \"sample_every\": {ATTR_SAMPLE_EVERY},\n      \"dispatches_seen\": {},\n      \"samples\": {},\n      \"rows\": {{\n{}\n      }}\n    }}\n  }},\n  \"scenario_reset\": {{\n    \"replication_build_us\": {:.2},\n    \"replication_reset_us\": {:.2},\n    \"setup_speedup_vs_rebuild\": {:.1},\n    \"sweep_rebuild_wall_secs\": {:.3},\n    \"sweep_reset_wall_secs\": {:.3}\n  }},\n  \"sweep_piats_per_class\": 40000,\n  \"sweep_wall_clock_secs\": {sweep:.3}\n}}\n",
        shape_entries.join(",\n"),
        trunk_engine.pending,
        trunk_engine.events_per_sec,
        trunk_heap.events_per_sec,
        scenario.pending,
        scenario.events_per_sec,
        observer.pending,
        observer.windows,
        observer.arrivals,
        observer.events_per_sec,
        million.arrivals,
        million.merged_windows,
        million.peak_pending,
        million.events_per_sec,
        million.per_shard_events_per_sec,
        million.wall_clock_secs,
        dm_rows_json.join(",\n"),
        hook.plain_events_per_sec,
        hook.faultfree_plan_events_per_sec,
        hook.gated_zero_loss_events_per_sec,
        tele_loop.plain_events_per_sec,
        tele_loop.disabled_events_per_sec,
        tele_loop.enabled_events_per_sec,
        tele_trunk.plain_events_per_sec,
        tele_trunk.disabled_events_per_sec,
        tele_trunk.enabled_events_per_sec,
        trace_loop.plain_events_per_sec,
        trace_loop.disabled_events_per_sec,
        trace_loop.enabled_events_per_sec,
        trace_trunk.plain_events_per_sec,
        trace_trunk.disabled_events_per_sec,
        trace_trunk.enabled_events_per_sec,
        profile.timer_events,
        profile.deliver_events,
        profile.deliver_batches,
        profile.mean_batch(),
        profile.batch_sizes.quantile(0.99),
        profile.batch_sizes.max(),
        profile.depth_peak,
        profile.depth.len(),
        profile.depth_sample_stride,
        profile.rung_peak.iter().filter(|&&v| v > 0).count(),
        profile.store.push_near,
        profile.store.push_rung,
        profile.store.push_far,
        profile.store.refills,
        profile.store.rebases,
        attr.dispatches_seen,
        attr.samples(),
        attr_rows_json.join(",\n"),
        reset.build_us,
        reset.reset_us,
        reset.setup_speedup(),
        reset.sweep_rebuild_secs,
        reset.sweep_reset_secs,
    );

    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let path = root.join(format!("BENCH_{BASELINE}.json"));
    let mut f = std::fs::File::create(&path).expect("create baseline file");
    f.write_all(json.as_bytes()).expect("write baseline file");
    println!("{json}");
    println!("wrote {}", path.display());
}
