//! Perf baseline: measures raw engine throughput (events/sec) against a
//! `BinaryHeap` reference event loop, plus a representative sweep
//! wall-clock, and writes `BENCH_1.json` at the workspace root so later
//! PRs have a recorded trajectory.
//!
//! Run from anywhere in the workspace:
//! `cargo run --release -p linkpad-bench --bin perf_baseline`

use linkpad_bench::perf::{
    heap_reference_events_per_sec, sim_events_per_sec, sweep_wall_clock_secs,
};
use std::io::Write;

fn main() {
    // Sized so the run takes a few seconds in release mode; override with
    // `perf_baseline <events> [<pending> ...]`.
    let mut args = std::env::args().skip(1);
    let events: u64 = args
        .next()
        .map(|a| a.parse().expect("events is a number"))
        .unwrap_or(4_000_000);
    let shapes: Vec<usize> = {
        let rest: Vec<usize> = args
            .map(|a| a.parse().expect("pending is a number"))
            .collect();
        if rest.is_empty() {
            // Dispatch-bound (small pending set, the per-sim regime) and
            // store-bound (large pending set, the scaling regime).
            vec![4_096, 262_144]
        } else {
            rest
        }
    };

    let mut shape_entries = Vec::new();
    for pending in shapes {
        eprintln!("measuring engine vs heap reference ({events} events, {pending} pending)...");
        let engine = sim_events_per_sec(events, pending);
        let heap = heap_reference_events_per_sec(events, pending);
        eprintln!(
            "  pending {pending}: engine {engine:.0} ev/s, reference {heap:.0} ev/s, {:.2}x",
            engine / heap
        );
        shape_entries.push(format!(
            "    {{ \"pending\": {pending}, \"engine_events_per_sec\": {engine:.0}, \
\"heap_reference_events_per_sec\": {heap:.0}, \"speedup_vs_heap\": {:.2} }}",
            engine / heap
        ));
    }

    eprintln!("measuring lab-scenario sweep wall-clock (40k PIATs x 2 classes)...");
    let sweep = sweep_wall_clock_secs(40_000);
    eprintln!("  sweep: {sweep:.3} s");

    let json = format!(
        "{{\n  \"schema\": \"linkpad-bench-baseline-v2\",\n  \"microbench_events\": {events},\n  \"event_loop\": [\n{}\n  ],\n  \"sweep_piats_per_class\": 40000,\n  \"sweep_wall_clock_secs\": {sweep:.3}\n}}\n",
        shape_entries.join(",\n")
    );

    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let path = root.join("BENCH_1.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_1.json");
    f.write_all(json.as_bytes()).expect("write BENCH_1.json");
    println!("{json}");
    println!("wrote {}", path.display());
}
