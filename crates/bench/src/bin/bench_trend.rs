//! Baseline trajectory report: walk **every** committed `BENCH_N.json`
//! (not just the newest pair the CI gate diffs) and render each
//! directional metric's whole history — per-baseline values, the
//! machine-speed drift between consecutive recordings, and net
//! raw/drift-corrected changes over the full trajectory.
//!
//! The drift model does double duty here: beyond correcting each
//! consecutive step, a pooled yardstick factor far from ×1.0 *is* the
//! container-transition detector — the heap reference's code never
//! changes, so a step where it moves >15 % is the machine changing
//! under the benchmarks, not the product (the workspace's known
//! transition sits between the PR 4 and PR 5 recordings; see ROADMAP).
//! Such steps are annotated in both outputs so nobody reads a
//! container swap as a code regression (or masks one with it).
//!
//! Usage:
//! * `bench_trend` — auto-discover all `BENCH_N.json` at the workspace
//!   root, print the markdown report to stdout.
//! * `bench_trend --md <report.md>` — also write the markdown report.
//! * `bench_trend --json <report.json>` — also write the
//!   machine-readable trajectory (schema [`TREND_SCHEMA`]).
//! * `bench_trend <dir>` — read baselines from an explicit directory.
//!
//! Exit code 0 = report produced (even from a single baseline),
//! 2 = usage/parse error or no baselines at all.

use linkpad_bench::compare::{
    all_baselines, compare_reports, flatten_metrics, measure_drift, metric_direction, Json,
};
use std::path::PathBuf;
use std::process::ExitCode;

/// Schema tag of the machine-readable trend report.
const TREND_SCHEMA: &str = "linkpad-bench-trend-v1";

/// A consecutive-pair pooled drift factor this far from ×1.0 marks a
/// container transition: the yardstick's own run-to-run noise on one
/// machine is ±10–15 % at minute scale (see `DriftModel` docs and the
/// ROADMAP noise notes), so only a shift beyond that band is evidence
/// of a different machine rather than a different minute.
const TRANSITION_DRIFT: f64 = 0.15;

/// Container transitions recorded in repo history: `(from, to, note)`
/// over `BENCH_N` indices. The threshold detector above only sees
/// swaps that *move* the yardstick — the documented PR 4 → PR 5 swap
/// changed the container without changing its heap-microbench speed
/// class (pooled drift read ×1.05, the calmest step in the
/// trajectory), so recorded history is the only honest source for it.
/// ROADMAP §Performance baseline pins the same discontinuity:
/// absolute numbers are not comparable across this step.
const KNOWN_TRANSITIONS: &[(u64, u64, &str)] = &[(
    4,
    5,
    "CI-class container changed between the PR 4 and PR 5 recordings (ROADMAP)",
)];

/// One parsed committed baseline.
struct Baseline {
    n: u64,
    json: Json,
}

/// One consecutive-baseline step of the trajectory.
struct Step {
    from: u64,
    to: u64,
    drift: f64,
    transition: bool,
    /// `KNOWN_TRANSITIONS` note when this step is a recorded container
    /// swap (annotated even when the yardstick read same-speed-class).
    recorded: Option<&'static str>,
    /// metric path → (raw change, drift-corrected change), fractional.
    changes: Vec<(String, f64, f64)>,
}

/// One directional metric's history across the trajectory.
struct Trend {
    metric: String,
    higher_is_better: bool,
    /// Value per baseline, aligned with the baseline list (`None`
    /// where the metric did not exist yet / was retired).
    values: Vec<Option<f64>>,
    /// Net fractional changes chained over every step where both ends
    /// carry the metric; `None` if no step did.
    net_raw: Option<f64>,
    net_corrected: Option<f64>,
}

/// Chain consecutive steps into per-metric trajectories.
fn assemble_trends(baselines: &[Baseline], steps: &[Step]) -> Vec<Trend> {
    // Directional metric paths in first-seen source order.
    let mut order: Vec<(String, bool)> = Vec::new();
    let flats: Vec<Vec<(String, f64)>> =
        baselines.iter().map(|b| flatten_metrics(&b.json)).collect();
    for flat in &flats {
        for (path, _) in flat {
            if let Some(up) = metric_direction(path) {
                if !order.iter().any(|(p, _)| p == path) {
                    order.push((path.clone(), up));
                }
            }
        }
    }
    order
        .into_iter()
        .map(|(metric, up)| {
            let values: Vec<Option<f64>> = flats
                .iter()
                .map(|flat| flat.iter().find(|(p, _)| *p == metric).map(|(_, v)| *v))
                .collect();
            let mut net_raw: Option<f64> = None;
            let mut net_corrected: Option<f64> = None;
            for step in steps {
                if let Some((_, raw, corrected)) =
                    step.changes.iter().find(|(p, _, _)| *p == metric)
                {
                    net_raw = Some(net_raw.unwrap_or(1.0) * (1.0 + raw));
                    net_corrected = Some(net_corrected.unwrap_or(1.0) * (1.0 + corrected));
                }
            }
            Trend {
                metric,
                higher_is_better: up,
                values,
                net_raw: net_raw.map(|r| r - 1.0),
                net_corrected: net_corrected.map(|r| r - 1.0),
            }
        })
        .collect()
}

/// Compact value formatting for the markdown table: three significant
/// figures, scientific above 10⁵ so ev/s columns stay readable.
fn fmt_value(v: f64) -> String {
    if v.abs() >= 1e5 {
        format!("{v:.3e}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

fn render_markdown(baselines: &[Baseline], steps: &[Step], trends: &[Trend]) -> String {
    let mut out = String::new();
    let ns: Vec<String> = baselines.iter().map(|b| b.n.to_string()).collect();
    out.push_str(&format!(
        "# Bench trend — {} committed baselines (BENCH_{{{}}})\n\n",
        baselines.len(),
        ns.join(",")
    ));
    out.push_str(
        "Directional metrics only (the same classification the CI gate uses); \
         `corrected` divides each step's pooled heap-yardstick drift factor out, so it\n\
         reads as the code-attributable change. Steps whose yardstick moved >15% are\n\
         container transitions, as are swaps recorded in repo history (a same-speed-class\n\
         swap never moves the yardstick) — absolute values across them are not comparable.\n\n",
    );
    out.push_str("## Machine-speed drift per step\n\n");
    out.push_str("| step | pooled drift | note |\n|---|---|---|\n");
    for s in steps {
        out.push_str(&format!(
            "| BENCH_{} → BENCH_{} | ×{:.3} | {} |\n",
            s.from,
            s.to,
            s.drift,
            match (s.recorded, s.transition) {
                (Some(note), _) => format!("**container transition** (recorded: {note})"),
                (None, true) =>
                    "**container transition** (yardstick moved beyond noise)".to_string(),
                (None, false) => String::new(),
            }
        ));
    }
    out.push_str("\n## Metric trajectories\n\n");
    out.push_str("| metric | dir |");
    for b in baselines {
        out.push_str(&format!(" B{} |", b.n));
    }
    out.push_str(" net raw | net corrected |\n|---|---|");
    for _ in baselines {
        out.push_str("---|");
    }
    out.push_str("---|---|\n");
    for t in trends {
        out.push_str(&format!(
            "| `{}` | {} |",
            t.metric,
            if t.higher_is_better { "↑" } else { "↓" }
        ));
        for v in &t.values {
            match v {
                Some(v) => out.push_str(&format!(" {} |", fmt_value(*v))),
                None => out.push_str(" — |"),
            }
        }
        let pct = |c: Option<f64>| match c {
            Some(c) => format!("{:+.1}%", c * 100.0),
            None => "—".to_string(),
        };
        out.push_str(&format!(
            " {} | {} |\n",
            pct(t.net_raw),
            pct(t.net_corrected)
        ));
    }
    out
}

fn render_json(baselines: &[Baseline], steps: &[Step], trends: &[Trend]) -> String {
    use linkpad_obs::json::{escape, num};
    let ns: Vec<String> = baselines.iter().map(|b| b.n.to_string()).collect();
    let step_objs: Vec<String> = steps
        .iter()
        .map(|s| {
            format!(
                "    {{\"from\":{},\"to\":{},\"drift_factor\":{},\"container_transition\":{},\
                 \"recorded_transition\":{},\"compared_metrics\":{}}}",
                s.from,
                s.to,
                num(s.drift),
                s.transition,
                match s.recorded {
                    Some(note) => format!("\"{}\"", escape(note)),
                    None => "null".to_string(),
                },
                s.changes.len()
            )
        })
        .collect();
    let trend_objs: Vec<String> = trends
        .iter()
        .map(|t| {
            let values: Vec<String> = t
                .values
                .iter()
                .zip(baselines)
                .filter_map(|(v, b)| {
                    v.map(|v| format!("{{\"baseline\":{},\"value\":{}}}", b.n, num(v)))
                })
                .collect();
            let pct = |c: Option<f64>| match c {
                Some(c) => num(c * 100.0),
                None => "null".to_string(),
            };
            format!(
                "    {{\"metric\":\"{}\",\"higher_is_better\":{},\"values\":[{}],\
                 \"net_raw_change_pct\":{},\"net_corrected_change_pct\":{}}}",
                escape(&t.metric),
                t.higher_is_better,
                values.join(","),
                pct(t.net_raw),
                pct(t.net_corrected),
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"{TREND_SCHEMA}\",\n  \"baselines\": [{}],\n  \
         \"steps\": [\n{}\n  ],\n  \"metrics\": [\n{}\n  ]\n}}\n",
        ns.join(","),
        step_objs.join(",\n"),
        trend_objs.join(",\n"),
    )
}

fn build_steps(baselines: &[Baseline]) -> Vec<Step> {
    baselines
        .windows(2)
        .map(|pair| {
            let (prev, new) = (&pair[0], &pair[1]);
            let drift = measure_drift(&prev.json, &new.json);
            let changes = compare_reports(&prev.json, &new.json)
                .into_iter()
                .map(|c| {
                    let corrected = c.drift_corrected_change(drift.global());
                    (c.metric, c.change, corrected)
                })
                .collect();
            let recorded = KNOWN_TRANSITIONS
                .iter()
                .find(|(f, t, _)| *f == prev.n && *t == new.n)
                .map(|(_, _, note)| *note);
            Step {
                from: prev.n,
                to: new.n,
                drift: drift.global(),
                transition: (drift.global() - 1.0).abs() > TRANSITION_DRIFT || recorded.is_some(),
                recorded,
                changes,
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let mut md_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--md" => match raw.next() {
                Some(p) => md_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("bench_trend: --md needs a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => match raw.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("bench_trend: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            _ if dir.is_none() && !a.starts_with('-') => dir = Some(PathBuf::from(a)),
            _ => {
                eprintln!("usage: bench_trend [--md <report.md>] [--json <report.json>] [<dir>]");
                return ExitCode::from(2);
            }
        }
    }
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let dir = dir.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let mut baselines = Vec::new();
    for (n, path) in all_baselines(&dir) {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_trend: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match Json::parse(&text) {
            Ok(json) => baselines.push(Baseline { n, json }),
            Err(e) => {
                eprintln!("bench_trend: parsing {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    if baselines.is_empty() {
        eprintln!(
            "bench_trend: no BENCH_N.json baselines in {}",
            dir.display()
        );
        return ExitCode::from(2);
    }

    let steps = build_steps(&baselines);
    let trends = assemble_trends(&baselines, &steps);
    let md = render_markdown(&baselines, &steps, &trends);
    print!("{md}");
    if let Some(path) = &md_path {
        if let Err(e) = std::fs::write(path, &md) {
            eprintln!("bench_trend: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("bench_trend: wrote {}", path.display());
    }
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, render_json(&baselines, &steps, &trends)) {
            eprintln!("bench_trend: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("bench_trend: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(n: u64, text: &str) -> Baseline {
        Baseline {
            n,
            json: Json::parse(text).unwrap(),
        }
    }

    const B1: &str = r#"{
      "event_loop": [
        { "pending": 4096, "engine_events_per_sec": 10000000, "heap_reference_events_per_sec": 5000000 }
      ],
      "sweep_wall_clock_secs": 0.040
    }"#;

    #[test]
    fn transition_steps_are_annotated_and_corrected_changes_chain() {
        // Step 1→2: container halves in speed (yardstick ×0.5, engine
        // ×0.5 — pure machine). Step 2→3: same machine, engine +20%.
        const B2: &str = r#"{
          "event_loop": [
            { "pending": 4096, "engine_events_per_sec": 5000000, "heap_reference_events_per_sec": 2500000 }
          ],
          "sweep_wall_clock_secs": 0.080
        }"#;
        const B3: &str = r#"{
          "event_loop": [
            { "pending": 4096, "engine_events_per_sec": 6000000, "heap_reference_events_per_sec": 2500000 }
          ],
          "sweep_wall_clock_secs": 0.080
        }"#;
        let baselines = vec![parse(1, B1), parse(2, B2), parse(3, B3)];
        let steps = build_steps(&baselines);
        assert_eq!(steps.len(), 2);
        assert!(steps[0].transition, "×0.5 yardstick step is a transition");
        assert!((steps[0].drift - 0.5).abs() < 1e-9);
        assert!(!steps[1].transition, "same-machine step is not");
        let trends = assemble_trends(&baselines, &steps);
        let engine = trends
            .iter()
            .find(|t| t.metric.contains("engine_events_per_sec"))
            .unwrap();
        assert!(engine.higher_is_better);
        assert_eq!(engine.values.len(), 3);
        // Raw net: ×0.5 then ×1.2 → −40%. Corrected net: the machine
        // halving divides out of step 1, leaving only the +20%.
        assert!((engine.net_raw.unwrap() - (-0.4)).abs() < 1e-9);
        assert!((engine.net_corrected.unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn reports_cover_every_baseline_and_parse_back() {
        let baselines = vec![parse(1, B1), parse(2, B1)];
        let steps = build_steps(&baselines);
        let trends = assemble_trends(&baselines, &steps);
        let md = render_markdown(&baselines, &steps, &trends);
        assert!(md.contains("BENCH_{1,2}"));
        assert!(md.contains("| B1 | B2 |"));
        assert!(md.contains("engine_events_per_sec"));
        // Context-only paths never appear as trended metrics.
        assert!(!md.contains("`event_loop[pending=4096].pending`"));
        let json = render_json(&baselines, &steps, &trends);
        let parsed = Json::parse(&json).expect("trend JSON parses with the mini parser");
        assert_eq!(parsed.get("schema"), Some(&Json::Str(TREND_SCHEMA.into())));
        let Some(Json::Arr(metrics)) = parsed.get("metrics") else {
            panic!("metrics is an array")
        };
        assert!(!metrics.is_empty());
        // Identical baselines: zero net change, no transition flagged.
        let engine = metrics
            .iter()
            .find(|m| {
                m.get("metric")
                    .is_some_and(|s| matches!(s, Json::Str(s) if s.contains("engine")))
            })
            .unwrap();
        assert_eq!(
            engine.get("net_corrected_change_pct").unwrap().as_f64(),
            Some(0.0)
        );
        let Some(Json::Arr(steps_json)) = parsed.get("steps") else {
            panic!("steps is an array")
        };
        assert_eq!(
            steps_json[0].get("container_transition"),
            Some(&Json::Bool(false))
        );
    }

    #[test]
    fn recorded_transitions_annotate_even_same_speed_steps() {
        // Bit-identical baselines numbered 4 and 5: the yardstick reads
        // ×1.0, yet the step is the recorded PR 4 → PR 5 container swap
        // and must be annotated from history.
        let baselines = vec![parse(4, B1), parse(5, B1)];
        let steps = build_steps(&baselines);
        assert!((steps[0].drift - 1.0).abs() < 1e-9);
        assert!(steps[0].transition, "recorded swap is a transition");
        assert!(steps[0].recorded.is_some());
        let md = render_markdown(&baselines, &steps, &[]);
        assert!(md.contains("recorded: CI-class container changed"));
        let json = Json::parse(&render_json(&baselines, &steps, &[])).unwrap();
        let Some(Json::Arr(steps_json)) = json.get("steps") else {
            panic!("steps is an array")
        };
        assert!(matches!(
            steps_json[0].get("recorded_transition"),
            Some(Json::Str(s)) if s.contains("PR 4 and PR 5")
        ));
    }

    #[test]
    fn trend_covers_the_workspace_committed_baselines() {
        // The real committed trajectory: every BENCH_N.json at the
        // workspace root must parse and land in the report.
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        let found = all_baselines(&root);
        assert!(found.len() >= 2, "workspace has a baseline trajectory");
        let baselines: Vec<Baseline> = found
            .iter()
            .map(|(n, p)| parse(*n, &std::fs::read_to_string(p).unwrap()))
            .collect();
        let steps = build_steps(&baselines);
        assert_eq!(steps.len(), baselines.len() - 1);
        let trends = assemble_trends(&baselines, &steps);
        assert!(!trends.is_empty());
        let md = render_markdown(&baselines, &steps, &trends);
        for (n, _) in &found {
            assert!(md.contains(&format!("B{n} |")), "baseline {n} in table");
        }
        // The recorded BENCH_4 → BENCH_5 container swap is part of the
        // committed trajectory and must carry its annotation.
        assert!(
            steps
                .iter()
                .any(|s| s.from == 4 && s.to == 5 && s.transition && s.recorded.is_some()),
            "recorded container transition annotated in the committed trajectory"
        );
        Json::parse(&render_json(&baselines, &steps, &trends))
            .expect("workspace trend JSON parses");
    }
}
