//! **Aggregate-link adversary** — the extension experiment the paper
//! never ran: an observer on a shared trunk carrying N padded flows,
//! working from streaming window statistics only.
//!
//! Three questions, answered end to end against the simulator:
//!
//! 1. **Flow count.** CIT padding turns every flow into a ~1/τ comb, so
//!    aggregate window counts expose N through the rate law
//!    `N̂ = mean(count)·τ/W` (exact for integer `W/τ`), with a
//!    variance-law cross-check at fractional `W/τ`. Gate: ±10 % for
//!    N ∈ {10, 100, 1000}.
//! 2. **Target rate class.** Flow 0 switches between the paper's low
//!    and high payload rates; the adversary classifies dwell segments
//!    from per-window PIAT variance via the KDE-Bayes machinery, and
//!    the detection rate (with Wilson CI) is swept over N and window
//!    width. N = 1 is the per-flow regime (solid detection); at N > 1
//!    the workspace's synchronized padding clocks keep the target's
//!    jitter partially visible in the per-tick burst-gap statistics, so
//!    the decay toward chance is much slower than independent phases
//!    would give.
//! 3. **Signature lock.** Pearson correlation of the window-variance
//!    series against a ±1 square wave at the true switching period vs a
//!    wrong period (phase-swept): the cheap "is anyone switching?"
//!    detector.
//!
//! Scale via `LINKPAD_SCALE` (`quick` for CI smoke, `paper` default).
//! Run: `cargo run --release -p linkpad-bench --bin fig_aggregate_adversary`
//!
//! Observability flags (see DESIGN.md §Observability):
//! * `--report <path>` — write the machine-readable run manifest of the
//!   largest-N flow-count run (schema `linkpad-run-manifest-v1`). Also
//!   enables engine profiling for part 1.
//! * `--events <path>` — write the harness lifecycle event log of the
//!   part-1 runs as JSONL (schema header + run/shard records).
//! * `--trace <path>` — write the Chrome trace-event JSON (Perfetto /
//!   `chrome://tracing` loadable) of the largest-N flow-count run's
//!   event loop. Also enables causal tracing for part 1.
//!
//! Part 1 runs through the one-shard [`ShardedAggregate`] path — bit-
//! identical to the plain single sim (see `linkpad_workloads::shard`) —
//! so the manifest/event-log/trace plumbing is the same one the sharded
//! figures use.

use linkpad_adversary::aggregate::{best_phase, estimate_flow_count};
use linkpad_adversary::feature::SampleMean;
use linkpad_adversary::pipeline::DetectionStudy;
use linkpad_bench::runner::Budget;
use linkpad_bench::table::{fmt_rate, Table};
use linkpad_obs::EventLog;
use linkpad_sim::time::SimTime;
use linkpad_workloads::scenario::ScenarioBuilder;
use linkpad_workloads::shard::ShardedAggregate;
use std::path::PathBuf;

/// Low/high payload rates of the switching target (the paper's ω pair).
const RATES: [f64; 2] = [10.0, 40.0];
/// Dwell at each rate, seconds.
const DWELL: f64 = 5.0;

fn main() {
    let mut report_path: Option<PathBuf> = None;
    let mut events_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--report" | "--events" | "--trace" => match argv.next() {
                Some(p) if arg == "--report" => report_path = Some(PathBuf::from(p)),
                Some(p) if arg == "--events" => events_path = Some(PathBuf::from(p)),
                Some(p) => trace_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("fig_aggregate_adversary: {arg} needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("fig_aggregate_adversary: unknown argument {other:?}");
                eprintln!(
                    "usage: fig_aggregate_adversary [--report <path>] [--events <path>] \
                     [--trace <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    let observing = report_path.is_some() || events_path.is_some() || trace_path.is_some();
    let mut log = EventLog::new();

    let budget = Budget::from_env();
    let tau = ScenarioBuilder::aggregate(1, 1).defaults.tau;

    // ---- Part 1: flow-count estimation ---------------------------------
    let window = 20.0 * tau; // integer W/τ → rate law is essentially exact
    let mut est_table = Table::new(
        format!(
            "Aggregate adversary (1): flow-count estimation, W = {:.0} ms = 20τ",
            window * 1e3
        ),
        &["flows", "windows", "mean_count", "n_hat", "err_pct"],
    );
    let mut manifest = None;
    let mut trace = None;
    for &n in &[10usize, 100, 1000] {
        let (skip, measured) = (5usize, 25usize);
        let b = ScenarioBuilder::aggregate(41 + n as u64, n)
            .with_payload_rate(RATES[0])
            .with_trunk_observer(window)
            .with_shards(1);
        // One shard reproduces the plain single sim bit-for-bit while
        // carrying the manifest/profile/trace plumbing.
        let mut sharded = ShardedAggregate::new(b).expect("one-shard configuration valid");
        if report_path.is_some() {
            sharded = sharded.with_profiling();
        }
        if trace_path.is_some() {
            sharded = sharded.with_tracing();
        }
        let sim_secs = window * (skip + measured + 1) as f64;
        let run = if observing {
            sharded.run_for_secs_logged(sim_secs, 1, &mut log)
        } else {
            sharded.run_for_secs(sim_secs)
        }
        .expect("one-shard run completes");
        // The manifest and trace record the largest-N run — the headline
        // scale point of the flow-count gate.
        manifest = Some(sharded.manifest("fig_aggregate_adversary", &run));
        trace = run.shards[0].trace.clone();
        let counts = run.counts();
        let est = estimate_flow_count(&counts[skip..skip + measured], window / tau)
            .expect("estimator over steady-state windows");
        let err_pct = est.relative_error(n) * 100.0;
        est_table.row(vec![
            n.to_string(),
            est.windows.to_string(),
            format!("{:.2}", est.mean_count),
            format!("{:.2}", est.n_hat),
            format!("{err_pct:.2}"),
        ]);
        assert!(
            est.relative_error(n) <= 0.10,
            "flow-count estimate off by {err_pct:.1}% at N = {n} (gate: 10%)"
        );
        eprintln!(
            "flow-count: N = {n} → n_hat = {:.2} ({err_pct:.2}%)",
            est.n_hat
        );
    }
    est_table.print();
    est_table.save_csv("fig_aggregate_flow_count").unwrap();
    println!("✓ flow-count estimate within ±10% for N ∈ {{10, 100, 1000}}");
    if let (Some(path), Some(manifest)) = (&report_path, &manifest) {
        manifest.write(path).expect("write run manifest");
        println!("wrote run manifest to {}", path.display());
    }
    if let Some(path) = &events_path {
        log.write_jsonl(path).expect("write harness event log");
        println!("wrote harness event log to {}", path.display());
    }
    if let Some(path) = &trace_path {
        let report = trace.as_ref().expect("tracing was enabled for part 1");
        std::fs::write(path, report.chrome_trace_json()).expect("write chrome trace");
        println!(
            "wrote Perfetto-loadable trace ({} records, stride {}) to {}",
            report.records.len(),
            report.stride,
            path.display()
        );
    }

    // Variance-law cross-check at a fractional window (f(1−f) ≈ 0.23):
    // slower to converge, but independent of the rate law's τ scaling.
    {
        let n = 100usize;
        let wot = 10.37;
        let w_frac = wot * tau;
        let (skip, measured) = (8usize, 400usize);
        let b = ScenarioBuilder::aggregate(97, n)
            .with_payload_rate(RATES[0])
            .with_trunk_observer(w_frac);
        let mut s = b.build().expect("fractional-window scenario builds");
        s.run_for_secs(w_frac * (skip + measured + 1) as f64);
        let obs = s
            .aggregate
            .as_ref()
            .unwrap()
            .trunk_observer
            .clone()
            .unwrap();
        let counts = obs.counts();
        let est = estimate_flow_count(&counts[skip..skip + measured], wot).unwrap();
        let nv = est
            .n_hat_var
            .expect("fractional window carries variance signal");
        let sync = est.n_hat_var_synchronized().unwrap();
        println!(
            "variance-law cross-check (W = {wot}τ, N = {n}): independent-phase reading \
             {nv:.0} ≈ N², synchronized reading √· = {sync:.1} ≈ N (rate law: {:.2}) — \
             the gateways tick on one τ grid, and the variance law exposes that \
             synchronization to the adversary.",
            est.n_hat
        );
    }

    // ---- Part 2: target rate-class detection vs (N, W) -----------------
    let group = 6; // windows per classified sample
    let study = |g: usize| DetectionStudy {
        sample_size: g,
        train_samples: budget.train,
        test_samples: budget.test,
    };
    let needed = study(group).piats_needed();
    let mut det_table = Table::new(
        format!(
            "Aggregate adversary (2): target rate detection ({}pps vs {}pps under CIT, \
             dwell {DWELL}s, {} train / {} test samples of {group} windows)",
            RATES[0], RATES[1], budget.train, budget.test
        ),
        &[
            "flows",
            "window_ms",
            "detection_rate",
            "wilson_lo",
            "wilson_hi",
            "dropped",
        ],
    );
    let mut variance_series: Vec<(usize, Vec<f64>)> = Vec::new();
    for &n in &[1usize, 2, 4] {
        for &w in &[0.1, 0.2] {
            let per_seg = (DWELL / w) as usize - 2;
            let segs_per_class = needed.div_ceil(per_seg) + 1;
            let sim_secs = DWELL + segs_per_class as f64 * 2.0 * DWELL;
            let b = ScenarioBuilder::aggregate(300 + n as u64, n)
                .with_trunk_observer(w)
                .with_switching_target(RATES, DWELL);
            let mut s = b.build().expect("switching scenario builds");
            s.run_for_secs(sim_secs);
            let agg = s.aggregate.as_ref().unwrap();
            let obs = agg.trunk_observer.clone().unwrap();
            let log = agg.target_rate_log.clone().unwrap();
            let vars = obs.piat_variances();

            // Split window-variance values by ground-truth rate segment,
            // skipping the first dwell (boot transient) and any window
            // within W of a switch boundary.
            let mut streams = [Vec::new(), Vec::new()];
            for (i, &v) in vars.iter().enumerate().skip((DWELL / w) as usize) {
                let mid = (i as f64 + 0.5) * w;
                let phase = mid % DWELL;
                if phase < w || phase > DWELL - w || !v.is_finite() {
                    continue;
                }
                match log.rate_at(SimTime::from_secs_f64(mid)) {
                    Some(r) if r == RATES[0] => streams[0].push(v),
                    Some(r) if r == RATES[1] => streams[1].push(v),
                    _ => {}
                }
            }
            // Hand the full streams to the study (it slices to its
            // budget internally): the over-collected tail then shows up
            // in the report's `dropped_piats` instead of vanishing.
            for s in &streams {
                assert!(
                    s.len() >= needed,
                    "undersized stream: {} < {needed}",
                    s.len()
                );
            }
            let report = study(group)
                .run(&SampleMean, &streams)
                .expect("window-feature detection study");
            let (lo, hi) = report.wilson_interval(0.05);
            eprintln!(
                "detect: N = {n}, W = {w}s → {:.3} [{lo:.3}, {hi:.3}]",
                report.detection_rate()
            );
            det_table.row(vec![
                n.to_string(),
                format!("{:.0}", w * 1e3),
                fmt_rate(report.detection_rate()),
                fmt_rate(lo),
                fmt_rate(hi),
                report.dropped_piats.to_string(),
            ]);
            if w == 0.2 {
                variance_series.push((n, vars));
            }
        }
    }
    det_table.print();
    det_table.save_csv("fig_aggregate_detection").unwrap();
    println!(
        "Reading: N = 1 is the per-flow regime seen through windows. Because the gateways \
         share one τ grid, trunk arrivals come in per-tick bursts and the burst-gap order \
         statistics keep the target's jitter partially visible at N > 1 — aggregation \
         under synchronized padding clocks dilutes the signature far more slowly than \
         independent phases would."
    );

    // ---- Part 3: switching-signature correlation -----------------------
    let mut sig_table = Table::new(
        "Aggregate adversary (3): square-wave signature lock on the window-variance series \
         (W = 200 ms)",
        &["flows", "true_period_r", "wrong_period_r"],
    );
    for (n, vars) in &variance_series {
        let period = 2.0 * DWELL / 0.2;
        let (_, r_true) = best_phase(vars, period, 20).expect("phase scan");
        let (_, r_wrong) = best_phase(vars, period * 0.77, 20).expect("phase scan");
        sig_table.row(vec![
            n.to_string(),
            format!("{r_true:.3}"),
            format!("{r_wrong:.3}"),
        ]);
    }
    sig_table.print();
    sig_table.save_csv("fig_aggregate_signature").unwrap();
}
