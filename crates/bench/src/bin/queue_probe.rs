//! Diagnostic probe: raw event-store throughput, isolated from node
//! dispatch. Replays the bench workload's push/pop pattern directly
//! against `EventQueue` and against a bare `BinaryHeap`, printing
//! ns/op. Not part of the recorded baseline — a tuning aid.

use linkpad_sim::equeue::{EventKind, EventQueue};
use linkpad_sim::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let pending: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(32_768);
    let ops: u64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(4_000_000);

    // Same shape as perf.rs: `pending` periodic streams, periods
    // 10–105 µs, plus a +500 ns echo event per fire.
    let period = |i: usize| 10_000u64 + 7919 * (i as u64 % 13);

    // --- EventQueue ---
    let mut q = EventQueue::with_capacity(pending * 2);
    let mut seq = 0u64;
    for i in 0..pending {
        q.push(SimTime::from_nanos(period(i)), seq, i, EventKind::Timer(0));
        seq += 1;
    }
    let start = Instant::now();
    let mut popped = 0u64;
    while popped < ops {
        let e = q.pop().unwrap();
        popped += 1;
        if let EventKind::Timer(0) = e.kind {
            let t = e.time.as_nanos();
            q.push(
                SimTime::from_nanos(t + 500),
                seq,
                e.target,
                EventKind::Timer(1),
            );
            seq += 1;
            q.push(
                SimTime::from_nanos(t + period(e.target)),
                seq,
                e.target,
                EventKind::Timer(0),
            );
            seq += 1;
        }
    }
    let eq_ns = start.elapsed().as_nanos() as f64 / popped as f64;
    let d = q.diag();
    println!("  diag: {d:?}");
    println!(
        "  tier_state (w, horizon, span_last, near, rung, far): {:?}",
        q.tier_state()
    );

    // --- bare BinaryHeap of (time, seq, stream, tag) ---
    // The stream index rides in the entry so re-arms keep their own
    // period, replaying exactly the EventQueue side's schedule.
    let mut h: BinaryHeap<Reverse<(u64, u64, u32, u8)>> = BinaryHeap::with_capacity(pending * 2);
    let mut seq = 0u64;
    for i in 0..pending {
        h.push(Reverse((period(i), seq, i as u32, 0)));
        seq += 1;
    }
    let start = Instant::now();
    let mut popped = 0u64;
    while popped < ops {
        let Reverse((t, _s, stream, tag)) = h.pop().unwrap();
        popped += 1;
        if tag == 0 {
            h.push(Reverse((t + 500, seq, stream, 1)));
            seq += 1;
            h.push(Reverse((t + period(stream as usize), seq, stream, 0)));
            seq += 1;
        }
    }
    let heap_ns = start.elapsed().as_nanos() as f64 / popped as f64;

    println!("pending={pending} ops={ops}");
    println!("  EventQueue : {eq_ns:.1} ns/op");
    println!("  BinaryHeap : {heap_ns:.1} ns/op (bare keys, no payload)");
}
