//! Baseline comparison: diff two `BENCH_N.json` reports and flag
//! throughput regressions.
//!
//! Every PR that touches performance records a new `BENCH_N.json` at the
//! workspace root (via `perf_baseline`). CI runs the `bench_compare`
//! binary, which loads the two highest-numbered baselines, matches their
//! shared numeric metrics, and **fails on any >10 % regression** of a
//! directional metric. Direction is inferred from the metric name:
//!
//! * higher is better — `*_per_sec`, `*speedup*`, `*detection_rate`
//!   (the `fig_aggregate_adversary` experiment's headline metric: a
//!   weaker adversary means the *reproduction* regressed, not the
//!   countermeasure improved)
//! * lower is better — `*_secs`, `*_us`, `*wall_clock*`, `*_err_pct`
//!   (estimation error, e.g. the aggregate flow-count estimate)
//! * everything else is context, not compared: counts and shape
//!   parameters like `pending`/`flows`, the `aggregate_observer`
//!   footprint fields `windows`/`arrivals`/`window_ms` (they describe
//!   the workload shape; `scenario_events_per_sec` carries that
//!   section's regression signal), the `million_flows` shape and
//!   footprint fields (`cohort_size`/`shards`/`peak_pending`/
//!   `merged_windows`/`simulated_seconds`), **per-shard ratios**
//!   (`per_shard_*` — an engine absolute divided by the recording
//!   container's worker count; the aggregate `events_per_sec` is the
//!   gated number), and everything measured **against the heap
//!   reference** — its absolutes *and* the `speedup_vs_heap` ratios,
//!   whose denominator is the yardstick (see `higher_is_better`).
//!
//! The workspace has no JSON dependency (offline builds), so this module
//! carries a minimal recursive-descent parser covering the subset the
//! baseline files use: objects, arrays, strings, numbers, booleans and
//! null. Array elements that are objects are matched across files by
//! their `pending`/`flows` discriminator when present (so re-ordering or
//! extending the shape list never mis-pairs entries), by index otherwise.

use std::path::{Path, PathBuf};

/// A parsed JSON value (minimal subset; see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A number (all JSON numbers are read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Look up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || b"-+.eE".contains(&c))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    // Baseline files only ever need the simple escapes.
                    match self.peek() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }
}

/// Keys that identify an array-of-objects element across reports.
const DISCRIMINATORS: [&str; 2] = ["pending", "flows"];

/// Flatten numeric leaves to `(path, value)` pairs.
fn flatten(json: &Json, prefix: &str, out: &mut Vec<(String, f64)>) {
    match json {
        Json::Num(x) => out.push((prefix.to_string(), *x)),
        Json::Obj(fields) => {
            for (k, v) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(v, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let tag = DISCRIMINATORS
                    .iter()
                    .find_map(|d| {
                        item.get(d)
                            .and_then(Json::as_f64)
                            .map(|x| format!("{d}={x}"))
                    })
                    .unwrap_or_else(|| i.to_string());
                flatten(item, &format!("{prefix}[{tag}]"), out);
            }
        }
        Json::Str(_) | Json::Bool(_) | Json::Null => {}
    }
}

/// Whether a metric is directional, and which way is better.
/// `Some(true)` = higher is better, `Some(false)` = lower is better,
/// `None` = context only (never compared).
fn higher_is_better(path: &str) -> Option<bool> {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.starts_with("per_shard") {
        // Per-shard ratios divide an engine absolute by the shard/worker
        // count of the recording container; the aggregate absolute
        // (`events_per_sec`) carries the regression signal, and the
        // per-shard reading is context for humans sizing worker pools.
        None
    } else if leaf.starts_with("heap_reference") || leaf == "speedup_vs_heap" {
        // The reference engine is the yardstick, not the product: its
        // absolute throughput moves with the machine and with which run
        // the paired-best protocol selects — and a ratio *against* the
        // yardstick inherits that sensitivity through its denominator
        // (a container session where the heap reference runs 20% faster
        // reads as a 20% "regression" of an untouched engine). Both the
        // reference absolutes and the vs-heap speedups are recorded for
        // humans but never gated; the engine's own numbers carry the
        // regression signal. Product-internal ratios (e.g.
        // `setup_speedup_vs_rebuild`, both sides ours, same run) stay
        // directional.
        None
    } else if leaf.contains("per_sec")
        || leaf.contains("speedup")
        || leaf.ends_with("detection_rate")
    {
        Some(true)
    } else if leaf.ends_with("_secs")
        || leaf.ends_with("_us")
        || leaf.contains("wall_clock")
        || leaf.ends_with("_err_pct")
    {
        Some(false)
    } else {
        None
    }
}

/// One matched metric across two baseline reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Flattened metric path, e.g. `event_loop[pending=262144].engine_events_per_sec`.
    pub metric: String,
    /// Value in the older report.
    pub prev: f64,
    /// Value in the newer report.
    pub new: f64,
    /// Signed fractional change where **positive = improvement** (the
    /// direction convention makes `-0.12` a 12 % regression for every
    /// metric kind).
    pub change: f64,
}

impl Comparison {
    /// Whether this metric regressed by more than `threshold`
    /// (fractional, e.g. `0.10`).
    pub fn regressed_beyond(&self, threshold: f64) -> bool {
        self.change < -threshold
    }
}

/// Match the directional numeric metrics shared by two reports.
///
/// Metrics present in only one report are ignored: baselines may add
/// scenarios over time, and a brand-new scenario has nothing to regress
/// against.
pub fn compare_reports(prev: &Json, new: &Json) -> Vec<Comparison> {
    let mut prev_flat = Vec::new();
    let mut new_flat = Vec::new();
    flatten(prev, "", &mut prev_flat);
    flatten(new, "", &mut new_flat);
    new_flat
        .iter()
        .filter_map(|(path, new_val)| {
            let better_up = higher_is_better(path)?;
            let (_, prev_val) = prev_flat.iter().find(|(p, _)| p == path)?;
            if *prev_val == 0.0 {
                return None;
            }
            let ratio = new_val / prev_val;
            let change = if better_up {
                ratio - 1.0
            } else {
                1.0 / ratio - 1.0
            };
            Some(Comparison {
                metric: path.clone(),
                prev: *prev_val,
                new: *new_val,
                change,
            })
        })
        .collect()
}

/// Find the two highest-numbered `BENCH_N.json` files in `dir`,
/// returned as `(previous, newest)`. `None` if fewer than two exist.
pub fn latest_two_baselines(dir: &Path) -> Option<(PathBuf, PathBuf)> {
    let mut numbered: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .ok()?
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().into_string().ok()?;
            let n: u64 = name
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse()
                .ok()?;
            Some((n, entry.path()))
        })
        .collect();
    numbered.sort();
    match numbered.as_slice() {
        [.., (_, prev), (_, newest)] => Some((prev.clone(), newest.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PREV: &str = r#"{
      "schema": "v2",
      "microbench_events": 4000000,
      "event_loop": [
        { "pending": 4096, "engine_events_per_sec": 18000000, "heap_reference_events_per_sec": 14000000, "speedup_vs_heap": 1.28 },
        { "pending": 262144, "engine_events_per_sec": 9900000, "speedup_vs_heap": 2.88 }
      ],
      "sweep_wall_clock_secs": 0.033
    }"#;

    #[test]
    fn parser_round_trips_the_baseline_shape() {
        let j = Json::parse(PREV).unwrap();
        assert_eq!(j.get("schema"), Some(&Json::Str("v2".into())));
        assert_eq!(
            j.get("sweep_wall_clock_secs").unwrap().as_f64(),
            Some(0.033)
        );
        let Some(Json::Arr(items)) = j.get("event_loop") else {
            panic!("event_loop is an array")
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].get("pending").unwrap().as_f64(), Some(262144.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn identical_reports_show_zero_change() {
        let j = Json::parse(PREV).unwrap();
        let cmp = compare_reports(&j, &j);
        // One engine entry per shape + the wall clock; everything
        // measured against the heap-reference yardstick — its absolutes
        // and the vs-heap speedups — is recorded but never gated on.
        assert_eq!(cmp.len(), 3);
        assert!(
            cmp.iter()
                .all(|c| !c.metric.contains("heap_reference")
                    && !c.metric.contains("speedup_vs_heap"))
        );
        assert!(cmp.iter().all(|c| c.change.abs() < 1e-12));
        assert!(cmp.iter().all(|c| !c.regressed_beyond(0.10)));
    }

    #[test]
    fn regressions_are_flagged_in_both_directions() {
        let prev = Json::parse(PREV).unwrap();
        // Throughput down 20% on the big shape; wall clock up 20%.
        let new = Json::parse(
            &PREV
                .replace("9900000", "7920000")
                .replace("0.033", "0.0396"),
        )
        .unwrap();
        let cmp = compare_reports(&prev, &new);
        let tput = cmp
            .iter()
            .find(|c| c.metric.contains("pending=262144") && c.metric.contains("engine"))
            .unwrap();
        assert!(tput.regressed_beyond(0.10), "{tput:?}");
        let wall = cmp
            .iter()
            .find(|c| c.metric.contains("wall_clock"))
            .unwrap();
        assert!(wall.regressed_beyond(0.10), "{wall:?}");
        // A 20% wall-clock *improvement* must not be flagged.
        let faster = Json::parse(&PREV.replace("0.033", "0.0264")).unwrap();
        let cmp = compare_reports(&prev, &faster);
        let wall = cmp
            .iter()
            .find(|c| c.metric.contains("wall_clock"))
            .unwrap();
        assert!(wall.change > 0.19 && !wall.regressed_beyond(0.10));
    }

    #[test]
    fn shape_entries_match_by_pending_not_index() {
        let prev = Json::parse(PREV).unwrap();
        // Same data, array reversed: nothing should regress.
        let reversed = r#"{
          "event_loop": [
            { "pending": 262144, "engine_events_per_sec": 9900000, "speedup_vs_heap": 2.88 },
            { "pending": 4096, "engine_events_per_sec": 18000000, "speedup_vs_heap": 1.28 }
          ],
          "sweep_wall_clock_secs": 0.033
        }"#;
        let new = Json::parse(reversed).unwrap();
        let cmp = compare_reports(&prev, &new);
        assert_eq!(cmp.len(), 3);
        assert!(cmp.iter().all(|c| c.change.abs() < 1e-12), "{cmp:?}");
    }

    #[test]
    fn new_metrics_without_a_baseline_are_ignored() {
        let prev = Json::parse(PREV).unwrap();
        let new = Json::parse(
            &PREV.replace(
                "\"sweep_wall_clock_secs\": 0.033",
                "\"sweep_wall_clock_secs\": 0.033, \"aggregate_trunk\": { \"flows\": 10000, \"engine_events_per_sec\": 1 }",
            ),
        )
        .unwrap();
        let cmp = compare_reports(&prev, &new);
        assert_eq!(
            cmp.len(),
            3,
            "brand-new scenario has nothing to regress against"
        );
    }

    #[test]
    fn yardstick_ratios_are_context_but_product_ratios_are_gated() {
        const REPORT: &str = r#"{
          "event_loop": [
            { "pending": 262144, "engine_events_per_sec": 9900000, "speedup_vs_heap": 3.60 }
          ],
          "scenario_reset": { "setup_speedup_vs_rebuild": 10.0 }
        }"#;
        let prev = Json::parse(REPORT).unwrap();
        // The heap reference running faster (speedup ratio down 20%)
        // must NOT gate — the engine's own number is unchanged — but a
        // product-internal ratio collapsing by 20% must.
        let new = Json::parse(&REPORT.replace("3.60", "2.88").replace("10.0", "8.0")).unwrap();
        let cmp = compare_reports(&prev, &new);
        assert!(
            !cmp.iter().any(|c| c.metric.contains("speedup_vs_heap")),
            "{cmp:?}"
        );
        let setup = cmp
            .iter()
            .find(|c| c.metric.contains("setup_speedup_vs_rebuild"))
            .expect("product ratio is gated");
        assert!(setup.regressed_beyond(0.10), "{setup:?}");
    }

    #[test]
    fn aggregate_observer_and_adversary_metrics_classify_directionally() {
        const REPORT: &str = r#"{
          "aggregate_observer": {
            "flows": 10000, "window_ms": 200.0, "pending": 130000,
            "windows": 7, "arrivals": 12000000,
            "scenario_events_per_sec": 7000000
          },
          "fig_aggregate_adversary": {
            "flow_count_err_pct": 1.5,
            "target_detection_rate": 0.93
          }
        }"#;
        let j = Json::parse(REPORT).unwrap();
        let cmp = compare_reports(&j, &j);
        let metrics: Vec<&str> = cmp.iter().map(|c| c.metric.as_str()).collect();
        // Throughput, detection rate and estimation error are gated…
        assert!(metrics.contains(&"aggregate_observer.scenario_events_per_sec"));
        assert!(metrics.contains(&"fig_aggregate_adversary.target_detection_rate"));
        assert!(metrics.contains(&"fig_aggregate_adversary.flow_count_err_pct"));
        assert_eq!(cmp.len(), 3);
        // …and regress in the right directions: detection rate down and
        // error up are both flagged.
        let worse = Json::parse(&REPORT.replace("0.93", "0.80").replace("1.5", "1.9")).unwrap();
        let cmp = compare_reports(&j, &worse);
        for name in ["target_detection_rate", "flow_count_err_pct"] {
            let c = cmp.iter().find(|c| c.metric.contains(name)).unwrap();
            assert!(c.regressed_beyond(0.10), "{c:?}");
        }
        // The observer's footprint fields are workload shape, not gated.
        assert!(!metrics.iter().any(|m| m.contains("windows")
            || m.contains("arrivals")
            || m.contains("window_ms")
            || m.contains("pending")));
    }

    #[test]
    fn million_flows_metrics_classify_directionally() {
        const REPORT: &str = r#"{
          "million_flows": {
            "flows": 1000000, "cohort_size": 1024, "shards": 4,
            "simulated_seconds": 0.45,
            "arrivals": 45000000, "merged_windows": 4, "peak_pending": 700000,
            "events_per_sec": 9000000,
            "per_shard_events_per_sec": 2250000,
            "wall_clock_secs": 15.0
          }
        }"#;
        let j = Json::parse(REPORT).unwrap();
        let cmp = compare_reports(&j, &j);
        let metrics: Vec<&str> = cmp.iter().map(|c| c.metric.as_str()).collect();
        // The engine absolutes gate: aggregate throughput and the fixed
        // workload's wall clock.
        assert!(metrics.contains(&"million_flows.events_per_sec"));
        assert!(metrics.contains(&"million_flows.wall_clock_secs"));
        assert_eq!(cmp.len(), 2, "{metrics:?}");
        // Shape, footprint and per-shard ratios are context only: the
        // per-shard reading divides by the recording container's worker
        // pool, and peak_pending/merged_windows/arrivals describe the
        // workload, not engine speed.
        for context in [
            "per_shard_events_per_sec",
            "peak_pending",
            "merged_windows",
            "arrivals",
            "cohort_size",
            "shards",
            "simulated_seconds",
        ] {
            assert!(
                !metrics.iter().any(|m| m.ends_with(context)),
                "{context} must not gate"
            );
        }
        // And the gated ones regress in the right direction.
        let worse = Json::parse(
            &REPORT
                .replace("\"events_per_sec\": 9000000", "\"events_per_sec\": 7000000")
                .replace("15.0", "19.0"),
        )
        .unwrap();
        let cmp = compare_reports(&j, &worse);
        for name in [
            "million_flows.events_per_sec",
            "million_flows.wall_clock_secs",
        ] {
            let c = cmp.iter().find(|c| c.metric == name).unwrap();
            assert!(c.regressed_beyond(0.10), "{c:?}");
        }
    }

    #[test]
    fn latest_two_picks_highest_numbers() {
        let dir = std::env::temp_dir().join(format!("bench_compare_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in [
            "BENCH_1.json",
            "BENCH_2.json",
            "BENCH_10.json",
            "BENCH_x.json",
            "notes.md",
        ] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let (prev, newest) = latest_two_baselines(&dir).unwrap();
        assert!(prev.ends_with("BENCH_2.json"));
        assert!(newest.ends_with("BENCH_10.json"));
        std::fs::remove_dir_all(&dir).unwrap();

        let empty =
            std::env::temp_dir().join(format!("bench_compare_empty_{}", std::process::id()));
        std::fs::create_dir_all(&empty).unwrap();
        std::fs::write(empty.join("BENCH_1.json"), "{}").unwrap();
        assert!(latest_two_baselines(&empty).is_none());
        std::fs::remove_dir_all(&empty).unwrap();
    }
}
