//! Baseline comparison: diff two `BENCH_N.json` reports and flag
//! throughput regressions.
//!
//! Every PR that touches performance records a new `BENCH_N.json` at the
//! workspace root (via `perf_baseline`). CI runs the `bench_compare`
//! binary, which loads the two highest-numbered baselines, matches their
//! shared numeric metrics, and **fails on any >10 % regression** of a
//! directional metric. Direction is inferred from the metric name:
//!
//! * higher is better — `*_per_sec`, `*speedup*`, `*detection_rate`
//!   (the `fig_aggregate_adversary` experiment's headline metric: a
//!   weaker adversary means the *reproduction* regressed, not the
//!   countermeasure improved)
//! * lower is better — `*_secs`, `*_us`, `*wall_clock*`, `*_err_pct`
//!   (estimation error, e.g. the aggregate flow-count estimate)
//! * everything else is context, not compared: counts and shape
//!   parameters like `pending`/`flows`, the `aggregate_observer`
//!   footprint fields `windows`/`arrivals`/`window_ms` (they describe
//!   the workload shape; `scenario_events_per_sec` carries that
//!   section's regression signal), the `million_flows` shape and
//!   footprint fields (`cohort_size`/`shards`/`peak_pending`/
//!   `merged_windows`/`simulated_seconds`), **per-shard ratios**
//!   (`per_shard_*` — an engine absolute divided by the recording
//!   container's worker count; the aggregate `events_per_sec` is the
//!   gated number), and everything measured **against the heap
//!   reference** — its absolutes *and* the `speedup_vs_heap` ratios,
//!   whose denominator is the yardstick (see `higher_is_better`).
//!
//! The yardstick earns its keep a second way: because its code never
//! changes, the ratio of its recorded throughput across two baselines
//! measures how much the *container* sped up or slowed down between the
//! two recordings. `bench_compare` divides that machine-speed drift out
//! of every goodness ratio before gating (see [`measure_drift`]; one
//! pooled factor, since each yardstick leaf is itself a noisy
//! micro-measurement), so a baseline recorded on a slower host doesn't
//! fail wholesale and one recorded on a faster host doesn't mask a real
//! regression. Dimensionless within-recording ratios like
//! `setup_speedup_vs_rebuild` are exempt — machine speed cancels inside
//! them by construction. Raw and drift-corrected changes are both
//! printed.
//!
//! The workspace has no JSON dependency (offline builds), so this module
//! carries a minimal recursive-descent parser covering the subset the
//! baseline files use: objects, arrays, strings, numbers, booleans and
//! null. Array elements that are objects are matched across files by
//! their `pending`/`flows` discriminator when present (so re-ordering or
//! extending the shape list never mis-pairs entries), by index otherwise.

use std::path::{Path, PathBuf};

/// A parsed JSON value (minimal subset; see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A number (all JSON numbers are read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Look up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || b"-+.eE".contains(&c))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    // Baseline files only ever need the simple escapes.
                    match self.peek() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }
}

/// Keys that identify an array-of-objects element across reports.
const DISCRIMINATORS: [&str; 2] = ["pending", "flows"];

/// Flatten numeric leaves to `(path, value)` pairs.
fn flatten(json: &Json, prefix: &str, out: &mut Vec<(String, f64)>) {
    match json {
        Json::Num(x) => out.push((prefix.to_string(), *x)),
        Json::Obj(fields) => {
            for (k, v) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(v, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let tag = DISCRIMINATORS
                    .iter()
                    .find_map(|d| {
                        item.get(d)
                            .and_then(Json::as_f64)
                            .map(|x| format!("{d}={x}"))
                    })
                    .unwrap_or_else(|| i.to_string());
                flatten(item, &format!("{prefix}[{tag}]"), out);
            }
        }
        Json::Str(_) | Json::Bool(_) | Json::Null => {}
    }
}

/// Whether a metric is directional, and which way is better.
/// `Some(true)` = higher is better, `Some(false)` = lower is better,
/// `None` = context only (never compared).
fn higher_is_better(path: &str) -> Option<bool> {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.starts_with("per_shard") {
        // Per-shard ratios divide an engine absolute by the shard/worker
        // count of the recording container; the aggregate absolute
        // (`events_per_sec`) carries the regression signal, and the
        // per-shard reading is context for humans sizing worker pools.
        None
    } else if leaf.starts_with("heap_reference") || leaf == "speedup_vs_heap" {
        // The reference engine is the yardstick, not the product: its
        // absolute throughput moves with the machine and with which run
        // the paired-best protocol selects — and a ratio *against* the
        // yardstick inherits that sensitivity through its denominator
        // (a container session where the heap reference runs 20% faster
        // reads as a 20% "regression" of an untouched engine). Both the
        // reference absolutes and the vs-heap speedups are recorded for
        // humans but never gated; the engine's own numbers carry the
        // regression signal. Product-internal ratios (e.g.
        // `setup_speedup_vs_rebuild`, both sides ours, same run) stay
        // directional.
        None
    } else if leaf.contains("per_sec")
        || leaf.contains("speedup")
        || leaf.ends_with("detection_rate")
    {
        Some(true)
    } else if leaf.ends_with("_secs")
        || leaf.ends_with("_us")
        || leaf.contains("wall_clock")
        || leaf.ends_with("_err_pct")
    {
        Some(false)
    } else {
        None
    }
}

/// Flatten a parsed baseline's numeric leaves to `(path, value)` pairs
/// in source order — the exact paths [`compare_reports`] matches on
/// (array elements keyed by their `pending`/`flows` discriminator).
/// `bench_trend` uses this to line one metric up across the whole
/// committed baseline trajectory.
pub fn flatten_metrics(json: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    flatten(json, "", &mut out);
    out
}

/// Direction of a flattened metric path: `Some(true)` = higher is
/// better, `Some(false)` = lower is better, `None` = context only
/// (shape parameters, yardstick readings — never compared or trended).
pub fn metric_direction(path: &str) -> Option<bool> {
    higher_is_better(path)
}

/// One matched metric across two baseline reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Flattened metric path, e.g. `event_loop[pending=262144].engine_events_per_sec`.
    pub metric: String,
    /// Value in the older report.
    pub prev: f64,
    /// Value in the newer report.
    pub new: f64,
    /// Signed fractional change where **positive = improvement** (the
    /// direction convention makes `-0.12` a 12 % regression for every
    /// metric kind).
    pub change: f64,
    /// Multiplier on the gate threshold for metrics whose measurement
    /// floor is wider than the default threshold. Sub-half-second
    /// wall-clock absolutes — including the `_us`-denominated per-op
    /// times, which sit microseconds deep below that line — get `3.0`:
    /// two otherwise-identical builds of this workspace differ by up to
    /// ~10 % on a ~40 ms micro-measurement purely from binary code
    /// layout (function alignment shifting as unrelated code is added),
    /// and a ~0.1 µs per-op reading is ~60 cycles where a single cache
    /// or alignment change is itself >10 %. So a 10 % gate there fires
    /// on phantom regressions. Throughputs and second-scale wall
    /// clocks average that effect away and keep `1.0`; a
    /// within-recording ratio inherits the widest allowance among its
    /// section's gated absolutes (see [`compare_reports`]).
    pub noise_allowance: f64,
    /// Whether the metric is a dimensionless within-recording ratio
    /// (e.g. `setup_speedup_vs_rebuild`): both sides were measured in
    /// the same run on the same machine, so machine-speed drift cancels
    /// by construction and [`drift_corrected_change`]
    /// (Comparison::drift_corrected_change) must not divide it out a
    /// second time.
    pub drift_invariant: bool,
}

impl Comparison {
    /// Whether this metric regressed by more than `threshold`
    /// (fractional, e.g. `0.10`), after widening by the metric's
    /// [`noise_allowance`](Comparison::noise_allowance).
    pub fn regressed_beyond(&self, threshold: f64) -> bool {
        self.change < -self.gate_threshold(threshold)
    }

    /// The effective gate threshold for this metric: the base threshold
    /// widened by the metric's noise allowance.
    pub fn gate_threshold(&self, base: f64) -> f64 {
        base * self.noise_allowance
    }

    /// The change with a machine-speed drift factor divided out (see
    /// [`measure_drift`]). `change + 1` is the goodness ratio for both
    /// metric directions — throughputs scale with machine speed and
    /// wall-clock times scale inversely, so dividing the goodness ratio
    /// by the drift factor cancels the container's speed change either
    /// way and leaves the code-attributable change. Drift-invariant
    /// ratios (see [`drift_invariant`](Comparison::drift_invariant))
    /// pass through uncorrected: their machine dependence already
    /// cancelled inside the recording.
    pub fn drift_corrected_change(&self, drift_factor: f64) -> f64 {
        if self.drift_invariant {
            return self.change;
        }
        (self.change + 1.0) / drift_factor - 1.0
    }
}

/// Machine-speed drift between two baseline recordings, measured from
/// the heap-reference yardstick.
///
/// The yardstick's code never changes, so any movement of its recorded
/// throughput between two baselines is the *container* speeding up or
/// slowing down (different host, frequency scaling, noisy neighbours),
/// not the product. Gating raw absolutes across such a speed change
/// either fails every metric on a slower container or hides real
/// regressions on a faster one; `bench_compare` therefore divides each
/// goodness ratio by the measured drift before applying the threshold
/// (see [`Comparison::drift_corrected_change`]).
///
/// **Gating uses the pooled geometric mean across every shared
/// yardstick leaf.** Each individual yardstick measurement carries the
/// same ±10–20 % run-to-run noise as any other micro-measurement on
/// this container, so a per-section factor built from *one* of them is
/// often a worse estimate of the machine's speed change than it is of
/// its own noise (a recorded pair has shown the three yardstick leaves
/// moving +1 %, +16 % and +20 % between two baselines of untouched
/// code — that spread is measurement noise, not three different
/// machines). Pooling divides the noise by √n; the per-section factors
/// are still computed and surfaced ([`DriftModel::sections`]) so a
/// *real* per-section anomaly shows up in the printed note, but they
/// no longer multiply into the gate. With no shared yardstick the
/// model is the identity and raw and corrected changes coincide.
pub struct DriftModel {
    global: f64,
    sections: Vec<(String, f64)>,
}

impl DriftModel {
    /// The global drift factor (geomean over every shared yardstick
    /// leaf); `1.0` when the two reports share no yardstick. This is
    /// the factor the gate divides out of every non-invariant metric.
    pub fn global(&self) -> f64 {
        self.global
    }

    /// Per-section yardstick factors, for reporting only (see the type
    /// docs for why they don't gate).
    pub fn sections(&self) -> &[(String, f64)] {
        &self.sections
    }
}

/// The container prefix of a flattened path (everything before the
/// leaf), e.g. `event_loop[pending=4096]` for
/// `event_loop[pending=4096].engine_events_per_sec`.
fn container(path: &str) -> &str {
    match path.rfind('.') {
        Some(i) => &path[..i],
        None => "",
    }
}

/// Build the [`DriftModel`] for a pair of baseline reports from their
/// shared `heap_reference*` leaves.
pub fn measure_drift(prev: &Json, new: &Json) -> DriftModel {
    let mut prev_flat = Vec::new();
    let mut new_flat = Vec::new();
    flatten(prev, "", &mut prev_flat);
    flatten(new, "", &mut new_flat);
    // container → ln(new/prev) per shared yardstick leaf
    let mut per: Vec<(String, Vec<f64>)> = Vec::new();
    for (path, new_val) in &new_flat {
        let leaf = path.rsplit('.').next().unwrap_or(path);
        if !leaf.starts_with("heap_reference") {
            continue;
        }
        let Some((_, prev_val)) = prev_flat.iter().find(|(p, _)| p == path) else {
            continue;
        };
        if *prev_val <= 0.0 || *new_val <= 0.0 {
            continue;
        }
        let ln_ratio = (new_val / prev_val).ln();
        let c = container(path).to_string();
        match per.iter_mut().find(|(k, _)| *k == c) {
            Some((_, v)) => v.push(ln_ratio),
            None => per.push((c, vec![ln_ratio])),
        }
    }
    let geomean = |v: &[f64]| (v.iter().sum::<f64>() / v.len() as f64).exp();
    let all: Vec<f64> = per.iter().flat_map(|(_, v)| v.iter().copied()).collect();
    DriftModel {
        global: if all.is_empty() { 1.0 } else { geomean(&all) },
        sections: per
            .into_iter()
            .map(|(k, v)| {
                let f = geomean(&v);
                (k, f)
            })
            .collect(),
    }
}

/// Match the directional numeric metrics shared by two reports.
///
/// Metrics present in only one report are ignored: baselines may add
/// scenarios over time, and a brand-new scenario has nothing to regress
/// against.
pub fn compare_reports(prev: &Json, new: &Json) -> Vec<Comparison> {
    let mut prev_flat = Vec::new();
    let mut new_flat = Vec::new();
    flatten(prev, "", &mut prev_flat);
    flatten(new, "", &mut new_flat);
    let mut out: Vec<Comparison> = new_flat
        .iter()
        .filter_map(|(path, new_val)| {
            let better_up = higher_is_better(path)?;
            let (_, prev_val) = prev_flat.iter().find(|(p, _)| p == path)?;
            if *prev_val == 0.0 {
                return None;
            }
            let ratio = new_val / prev_val;
            let change = if better_up {
                ratio - 1.0
            } else {
                1.0 / ratio - 1.0
            };
            // Tiny wall-clock absolutes sit below the binary-layout
            // measurement floor; widen their gate (see field docs). The
            // `_us` cutoff is the same half-second expressed in its
            // unit — in practice every per-op average qualifies.
            let leaf = path.rsplit('.').next().unwrap_or(path);
            let tiny_wall = !better_up
                && ((leaf.ends_with("_secs") && *prev_val < 0.5)
                    || (leaf.ends_with("_us") && *prev_val < 500_000.0));
            Some(Comparison {
                metric: path.clone(),
                prev: *prev_val,
                new: *new_val,
                change,
                noise_allowance: if tiny_wall { 3.0 } else { 1.0 },
                drift_invariant: better_up && leaf.contains("speedup"),
            })
        })
        .collect();
    // A within-recording ratio cannot be more precise than the
    // measurements it divides: where a section's own absolutes sit
    // below the layout-noise measurement floor (µs-scale per-op
    // times, sub-half-second sweeps), the ratio between them inherits
    // that floor — `setup_speedup_vs_rebuild` has moved >10 % between
    // baselines of untouched reset code purely from its constituents'
    // noise. Widen such ratios to their section's widest gate.
    for i in 0..out.len() {
        if !out[i].drift_invariant {
            continue;
        }
        let c = container(&out[i].metric).to_string();
        let sibling_max = out
            .iter()
            .filter(|s| !s.drift_invariant && container(&s.metric) == c)
            .map(|s| s.noise_allowance)
            .fold(1.0_f64, f64::max);
        out[i].noise_allowance = out[i].noise_allowance.max(sibling_max);
    }
    out
}

/// Top-level sections present in only one of two baseline reports,
/// as `(added, removed)` relative to `prev` → `new`, in source order.
///
/// Baselines grow sections as the workspace grows (and occasionally
/// retire them); that is expected drift between consecutive
/// `BENCH_N.json` files, so `bench_compare` *reports* it as a note
/// instead of failing — only shared directional metrics can regress
/// (see [`compare_reports`]).
pub fn section_changes(prev: &Json, new: &Json) -> (Vec<String>, Vec<String>) {
    fn keys(j: &Json) -> Vec<&str> {
        match j {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
    let prev_keys = keys(prev);
    let new_keys = keys(new);
    let added = new_keys
        .iter()
        .filter(|k| !prev_keys.contains(k))
        .map(|k| k.to_string())
        .collect();
    let removed = prev_keys
        .iter()
        .filter(|k| !new_keys.contains(k))
        .map(|k| k.to_string())
        .collect();
    (added, removed)
}

/// Schema tag of the machine-readable comparison verdict.
pub const COMPARE_SCHEMA: &str = "linkpad-bench-compare-v1";

/// Render the full comparison verdict — section drift, machine-speed
/// drift, every matched directional metric with raw and corrected
/// changes, and the overall pass/fail — as machine-readable JSON
/// (`bench_compare --json <path>` writes this for CI artifacts).
///
/// Self-contained on purpose: it recomputes [`section_changes`],
/// [`measure_drift`] and [`compare_reports`] from the two parsed
/// reports, so the JSON verdict cannot drift from the printed one.
pub fn comparison_json(prev: &Json, new: &Json, threshold: f64) -> String {
    use linkpad_obs::json::{escape, num};
    let (added, removed) = section_changes(prev, new);
    let drift = measure_drift(prev, new);
    let comparisons = compare_reports(prev, new);
    let str_arr = |names: &[String]| {
        let quoted: Vec<String> = names.iter().map(|n| format!("\"{}\"", escape(n))).collect();
        format!("[{}]", quoted.join(","))
    };
    let metrics: Vec<String> = comparisons
        .iter()
        .map(|c| {
            let corrected = c.drift_corrected_change(drift.global());
            format!(
                "    {{\"metric\":\"{}\",\"prev\":{},\"new\":{},\"raw_change_pct\":{},\
                 \"corrected_change_pct\":{},\"gate_pct\":{},\"regressed\":{}}}",
                escape(&c.metric),
                num(c.prev),
                num(c.new),
                num(c.change * 100.0),
                num(corrected * 100.0),
                num(c.gate_threshold(threshold) * 100.0),
                corrected < -c.gate_threshold(threshold),
            )
        })
        .collect();
    let regressed = comparisons
        .iter()
        .any(|c| c.drift_corrected_change(drift.global()) < -c.gate_threshold(threshold));
    format!(
        "{{\n  \"schema\": \"{COMPARE_SCHEMA}\",\n  \"threshold_pct\": {},\n  \
         \"drift_factor\": {},\n  \"sections_added\": {},\n  \"sections_removed\": {},\n  \
         \"compared_metrics\": {},\n  \"regressed\": {},\n  \"metrics\": [\n{}\n  ]\n}}\n",
        num(threshold * 100.0),
        num(drift.global()),
        str_arr(&added),
        str_arr(&removed),
        comparisons.len(),
        regressed,
        metrics.join(",\n"),
    )
}

/// Every `BENCH_N.json` file in `dir`, sorted ascending by `N` — the
/// whole recorded baseline trajectory (`bench_trend` walks all of it;
/// [`latest_two_baselines`] takes the tail pair for the CI gate).
pub fn all_baselines(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut numbered: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().into_string().ok()?;
            let n: u64 = name
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse()
                .ok()?;
            Some((n, entry.path()))
        })
        .collect();
    numbered.sort();
    numbered
}

/// Find the two highest-numbered `BENCH_N.json` files in `dir`,
/// returned as `(previous, newest)`. `None` if fewer than two exist.
pub fn latest_two_baselines(dir: &Path) -> Option<(PathBuf, PathBuf)> {
    match all_baselines(dir).as_slice() {
        [.., (_, prev), (_, newest)] => Some((prev.clone(), newest.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PREV: &str = r#"{
      "schema": "v2",
      "microbench_events": 4000000,
      "event_loop": [
        { "pending": 4096, "engine_events_per_sec": 18000000, "heap_reference_events_per_sec": 14000000, "speedup_vs_heap": 1.28 },
        { "pending": 262144, "engine_events_per_sec": 9900000, "speedup_vs_heap": 2.88 }
      ],
      "sweep_wall_clock_secs": 0.033
    }"#;

    #[test]
    fn parser_round_trips_the_baseline_shape() {
        let j = Json::parse(PREV).unwrap();
        assert_eq!(j.get("schema"), Some(&Json::Str("v2".into())));
        assert_eq!(
            j.get("sweep_wall_clock_secs").unwrap().as_f64(),
            Some(0.033)
        );
        let Some(Json::Arr(items)) = j.get("event_loop") else {
            panic!("event_loop is an array")
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].get("pending").unwrap().as_f64(), Some(262144.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn identical_reports_show_zero_change() {
        let j = Json::parse(PREV).unwrap();
        let cmp = compare_reports(&j, &j);
        // One engine entry per shape + the wall clock; everything
        // measured against the heap-reference yardstick — its absolutes
        // and the vs-heap speedups — is recorded but never gated on.
        assert_eq!(cmp.len(), 3);
        assert!(
            cmp.iter()
                .all(|c| !c.metric.contains("heap_reference")
                    && !c.metric.contains("speedup_vs_heap"))
        );
        assert!(cmp.iter().all(|c| c.change.abs() < 1e-12));
        assert!(cmp.iter().all(|c| !c.regressed_beyond(0.10)));
    }

    #[test]
    fn regressions_are_flagged_in_both_directions() {
        let prev = Json::parse(PREV).unwrap();
        // Throughput down 20% on the big shape; the tiny wall clock up
        // 50% — past even its widened small-scale gate.
        let new = Json::parse(
            &PREV
                .replace("9900000", "7920000")
                .replace("0.033", "0.0495"),
        )
        .unwrap();
        let cmp = compare_reports(&prev, &new);
        let tput = cmp
            .iter()
            .find(|c| c.metric.contains("pending=262144") && c.metric.contains("engine"))
            .unwrap();
        assert!(tput.regressed_beyond(0.10), "{tput:?}");
        let wall = cmp
            .iter()
            .find(|c| c.metric.contains("wall_clock"))
            .unwrap();
        assert!(wall.regressed_beyond(0.10), "{wall:?}");
        // A 20% wall-clock *improvement* must not be flagged.
        let faster = Json::parse(&PREV.replace("0.033", "0.0264")).unwrap();
        let cmp = compare_reports(&prev, &faster);
        let wall = cmp
            .iter()
            .find(|c| c.metric.contains("wall_clock"))
            .unwrap();
        assert!(wall.change > 0.19 && !wall.regressed_beyond(0.10));
    }

    #[test]
    fn tiny_wall_clocks_get_layout_noise_allowance() {
        // A ~40 ms sweep and a ~40 s scale run, both 20% slower. The
        // tiny one sits below the binary-layout measurement floor
        // (identical-code rebuilds move it ~10%), so only the
        // second-scale absolute trips the default 10% gate.
        let report = r#"{
          "million_flows": { "wall_clock_secs": 40.0 },
          "scenario_reset": { "sweep_reset_wall_secs": 0.040 }
        }"#;
        let prev = Json::parse(report).unwrap();
        let new = Json::parse(&report.replace("40.0", "48.0").replace("0.040", "0.048")).unwrap();
        let cmp = compare_reports(&prev, &new);
        let big = cmp.iter().find(|c| c.metric.contains("million")).unwrap();
        let tiny = cmp.iter().find(|c| c.metric.contains("sweep")).unwrap();
        assert_eq!((big.noise_allowance, tiny.noise_allowance), (1.0, 3.0));
        assert!(big.regressed_beyond(0.10), "{big:?}");
        assert!(!tiny.regressed_beyond(0.10), "{tiny:?}");
        // The allowance widens the gate, it does not remove it.
        let worse = Json::parse(&report.replace("0.040", "0.064")).unwrap();
        let cmp = compare_reports(&prev, &worse);
        let tiny = cmp.iter().find(|c| c.metric.contains("sweep")).unwrap();
        assert!(tiny.regressed_beyond(0.10), "{tiny:?}");
    }

    #[test]
    fn shape_entries_match_by_pending_not_index() {
        let prev = Json::parse(PREV).unwrap();
        // Same data, array reversed: nothing should regress.
        let reversed = r#"{
          "event_loop": [
            { "pending": 262144, "engine_events_per_sec": 9900000, "speedup_vs_heap": 2.88 },
            { "pending": 4096, "engine_events_per_sec": 18000000, "speedup_vs_heap": 1.28 }
          ],
          "sweep_wall_clock_secs": 0.033
        }"#;
        let new = Json::parse(reversed).unwrap();
        let cmp = compare_reports(&prev, &new);
        assert_eq!(cmp.len(), 3);
        assert!(cmp.iter().all(|c| c.change.abs() < 1e-12), "{cmp:?}");
    }

    #[test]
    fn new_metrics_without_a_baseline_are_ignored() {
        let prev = Json::parse(PREV).unwrap();
        let new = Json::parse(
            &PREV.replace(
                "\"sweep_wall_clock_secs\": 0.033",
                "\"sweep_wall_clock_secs\": 0.033, \"aggregate_trunk\": { \"flows\": 10000, \"engine_events_per_sec\": 1 }",
            ),
        )
        .unwrap();
        let cmp = compare_reports(&prev, &new);
        assert_eq!(
            cmp.len(),
            3,
            "brand-new scenario has nothing to regress against"
        );
    }

    #[test]
    fn yardstick_ratios_are_context_but_product_ratios_are_gated() {
        const REPORT: &str = r#"{
          "event_loop": [
            { "pending": 262144, "engine_events_per_sec": 9900000, "speedup_vs_heap": 3.60 }
          ],
          "scenario_reset": { "setup_speedup_vs_rebuild": 10.0 }
        }"#;
        let prev = Json::parse(REPORT).unwrap();
        // The heap reference running faster (speedup ratio down 20%)
        // must NOT gate — the engine's own number is unchanged — but a
        // product-internal ratio collapsing by 20% must.
        let new = Json::parse(&REPORT.replace("3.60", "2.88").replace("10.0", "8.0")).unwrap();
        let cmp = compare_reports(&prev, &new);
        assert!(
            !cmp.iter().any(|c| c.metric.contains("speedup_vs_heap")),
            "{cmp:?}"
        );
        let setup = cmp
            .iter()
            .find(|c| c.metric.contains("setup_speedup_vs_rebuild"))
            .expect("product ratio is gated");
        assert!(setup.regressed_beyond(0.10), "{setup:?}");
    }

    #[test]
    fn aggregate_observer_and_adversary_metrics_classify_directionally() {
        const REPORT: &str = r#"{
          "aggregate_observer": {
            "flows": 10000, "window_ms": 200.0, "pending": 130000,
            "windows": 7, "arrivals": 12000000,
            "scenario_events_per_sec": 7000000
          },
          "fig_aggregate_adversary": {
            "flow_count_err_pct": 1.5,
            "target_detection_rate": 0.93
          }
        }"#;
        let j = Json::parse(REPORT).unwrap();
        let cmp = compare_reports(&j, &j);
        let metrics: Vec<&str> = cmp.iter().map(|c| c.metric.as_str()).collect();
        // Throughput, detection rate and estimation error are gated…
        assert!(metrics.contains(&"aggregate_observer.scenario_events_per_sec"));
        assert!(metrics.contains(&"fig_aggregate_adversary.target_detection_rate"));
        assert!(metrics.contains(&"fig_aggregate_adversary.flow_count_err_pct"));
        assert_eq!(cmp.len(), 3);
        // …and regress in the right directions: detection rate down and
        // error up are both flagged.
        let worse = Json::parse(&REPORT.replace("0.93", "0.80").replace("1.5", "1.9")).unwrap();
        let cmp = compare_reports(&j, &worse);
        for name in ["target_detection_rate", "flow_count_err_pct"] {
            let c = cmp.iter().find(|c| c.metric.contains(name)).unwrap();
            assert!(c.regressed_beyond(0.10), "{c:?}");
        }
        // The observer's footprint fields are workload shape, not gated.
        assert!(!metrics.iter().any(|m| m.contains("windows")
            || m.contains("arrivals")
            || m.contains("window_ms")
            || m.contains("pending")));
    }

    #[test]
    fn million_flows_metrics_classify_directionally() {
        const REPORT: &str = r#"{
          "million_flows": {
            "flows": 1000000, "cohort_size": 1024, "shards": 4,
            "simulated_seconds": 0.45,
            "arrivals": 45000000, "merged_windows": 4, "peak_pending": 700000,
            "events_per_sec": 9000000,
            "per_shard_events_per_sec": 2250000,
            "wall_clock_secs": 15.0
          }
        }"#;
        let j = Json::parse(REPORT).unwrap();
        let cmp = compare_reports(&j, &j);
        let metrics: Vec<&str> = cmp.iter().map(|c| c.metric.as_str()).collect();
        // The engine absolutes gate: aggregate throughput and the fixed
        // workload's wall clock.
        assert!(metrics.contains(&"million_flows.events_per_sec"));
        assert!(metrics.contains(&"million_flows.wall_clock_secs"));
        assert_eq!(cmp.len(), 2, "{metrics:?}");
        // Shape, footprint and per-shard ratios are context only: the
        // per-shard reading divides by the recording container's worker
        // pool, and peak_pending/merged_windows/arrivals describe the
        // workload, not engine speed.
        for context in [
            "per_shard_events_per_sec",
            "peak_pending",
            "merged_windows",
            "arrivals",
            "cohort_size",
            "shards",
            "simulated_seconds",
        ] {
            assert!(
                !metrics.iter().any(|m| m.ends_with(context)),
                "{context} must not gate"
            );
        }
        // And the gated ones regress in the right direction.
        let worse = Json::parse(
            &REPORT
                .replace("\"events_per_sec\": 9000000", "\"events_per_sec\": 7000000")
                .replace("15.0", "19.0"),
        )
        .unwrap();
        let cmp = compare_reports(&j, &worse);
        for name in [
            "million_flows.events_per_sec",
            "million_flows.wall_clock_secs",
        ] {
            let c = cmp.iter().find(|c| c.metric == name).unwrap();
            assert!(c.regressed_beyond(0.10), "{c:?}");
        }
    }

    #[test]
    fn section_drift_is_reported_not_gated() {
        let prev = Json::parse(
            r#"{ "schema": "v4", "event_loop": [], "sweep": { "secs": 1.0 }, "retired": { "x": 1 } }"#,
        )
        .unwrap();
        let new = Json::parse(
            r#"{ "schema": "v5", "event_loop": [], "sweep": { "secs": 1.0 }, "fault_robustness": { "y": 2 } }"#,
        )
        .unwrap();
        let (added, removed) = section_changes(&prev, &new);
        assert_eq!(added, vec!["fault_robustness".to_string()]);
        assert_eq!(removed, vec!["retired".to_string()]);
        // Identical reports drift nowhere; non-objects have no sections.
        assert_eq!(section_changes(&new, &new), (vec![], vec![]));
        assert_eq!(section_changes(&Json::Null, &new).0.len(), 4);
    }

    #[test]
    fn drift_model_cancels_machine_speed_not_code_changes() {
        const PREV_R: &str = r#"{
          "event_loop": [
            { "pending": 4096, "engine_events_per_sec": 20000000, "heap_reference_events_per_sec": 10000000 }
          ],
          "aggregate_trunk": { "flows": 10000, "engine_events_per_sec": 16000000, "heap_reference_events_per_sec": 4000000 },
          "sweep_wall_clock_secs": 0.040
        }"#;
        // The whole container runs 20% slower: yardstick and engine both
        // ×0.8, wall clock ×1.25. Raw changes all read −20%; the drift
        // model must cancel them to ~0.
        const SLOWER: &str = r#"{
          "event_loop": [
            { "pending": 4096, "engine_events_per_sec": 16000000, "heap_reference_events_per_sec": 8000000 }
          ],
          "aggregate_trunk": { "flows": 10000, "engine_events_per_sec": 12800000, "heap_reference_events_per_sec": 3200000 },
          "sweep_wall_clock_secs": 0.050
        }"#;
        let prev = Json::parse(PREV_R).unwrap();
        let new = Json::parse(SLOWER).unwrap();
        let drift = measure_drift(&prev, &new);
        assert!((drift.global() - 0.8).abs() < 1e-9, "{}", drift.global());
        for c in compare_reports(&prev, &new) {
            let corrected = c.drift_corrected_change(drift.global());
            assert!(c.change < -0.10, "raw change reads regressed: {c:?}");
            assert!(
                corrected.abs() < 1e-9,
                "drift-corrected must cancel: {c:?} → {corrected}"
            );
        }
        // A real code regression on the same slower container survives
        // the correction: engine ×0.8 machine × a further 0.85 code.
        let worse = Json::parse(&SLOWER.replace("12800000", "10880000")).unwrap();
        let drift = measure_drift(&prev, &worse);
        let cmp = compare_reports(&prev, &worse);
        let trunk = cmp
            .iter()
            .find(|c| c.metric == "aggregate_trunk.engine_events_per_sec")
            .unwrap();
        let corrected = trunk.drift_corrected_change(drift.global());
        assert!(
            (corrected - (-0.15)).abs() < 1e-9,
            "code's own 15% must remain: {corrected}"
        );
    }

    #[test]
    fn drift_pools_yardstick_leaves_and_reports_sections() {
        const PREV_R: &str = r#"{
          "a": { "engine_events_per_sec": 100, "heap_reference_events_per_sec": 100 },
          "b": { "engine_events_per_sec": 100, "heap_reference_events_per_sec": 100 },
          "c_wall_clock_secs": 1.0
        }"#;
        // Section a's yardstick halves, section b's is unchanged.
        const NEW_R: &str = r#"{
          "a": { "engine_events_per_sec": 50, "heap_reference_events_per_sec": 50 },
          "b": { "engine_events_per_sec": 100, "heap_reference_events_per_sec": 100 },
          "c_wall_clock_secs": 1.0
        }"#;
        let prev = Json::parse(PREV_R).unwrap();
        let new = Json::parse(NEW_R).unwrap();
        let drift = measure_drift(&prev, &new);
        // The gate sees one pooled factor — the geomean √(0.5·1.0) —
        // because each per-section reading is a single noisy
        // micro-measurement (see DriftModel docs)…
        let global = (0.5f64).sqrt();
        assert!((drift.global() - global).abs() < 1e-9);
        // …while the per-section readings stay visible for the note.
        let sections = drift.sections();
        assert_eq!(sections.len(), 2);
        let factor = |name: &str| sections.iter().find(|(k, _)| k == name).unwrap().1;
        assert!((factor("a") - 0.5).abs() < 1e-9);
        assert!((factor("b") - 1.0).abs() < 1e-9);
        // Reports with no shared yardstick leave everything untouched.
        let bare = Json::parse(r#"{ "c_wall_clock_secs": 1.0 }"#).unwrap();
        let identity = measure_drift(&bare, &bare);
        assert!((identity.global() - 1.0).abs() < 1e-12);
        assert!(identity.sections().is_empty());
    }

    #[test]
    fn product_ratios_are_drift_invariant_and_us_metrics_get_allowance() {
        const REPORT: &str = r#"{
          "event_loop": [
            { "pending": 4096, "engine_events_per_sec": 10000000, "heap_reference_events_per_sec": 5000000 }
          ],
          "scenario_reset": {
            "replication_reset_us": 0.13,
            "setup_speedup_vs_rebuild": 9.0
          }
        }"#;
        let prev = Json::parse(REPORT).unwrap();
        // Machine 25% faster (yardstick and engine both ×1.25); the
        // within-recording ratio and the quantized per-op reading are
        // unchanged — neither may gate.
        let new = Json::parse(
            &REPORT
                .replace("10000000", "12500000")
                .replace("5000000", "6250000"),
        )
        .unwrap();
        let drift = measure_drift(&prev, &new);
        assert!((drift.global() - 1.25).abs() < 1e-9);
        let cmp = compare_reports(&prev, &new);
        let ratio = cmp
            .iter()
            .find(|c| c.metric.contains("setup_speedup"))
            .unwrap();
        // Both sides of the ratio sped up with the machine, so the
        // recorded ratio is flat and stays flat after "correction".
        assert!(ratio.drift_invariant);
        assert!(ratio.drift_corrected_change(drift.global()).abs() < 1e-9);
        // And it inherits its section's widened gate: its constituents
        // are the µs-scale measurements right next to it.
        assert_eq!(ratio.noise_allowance, 3.0);
        // The 0.13 µs per-op reading cannot express a 25% machine
        // change (it is ~60 cycles, below the layout floor): corrected
        // it reads −20%, which the widened small-scale gate absorbs.
        let us = cmp
            .iter()
            .find(|c| c.metric.contains("replication_reset_us"))
            .unwrap();
        assert_eq!(us.noise_allowance, 3.0);
        let corrected = us.drift_corrected_change(drift.global());
        assert!(corrected < -0.10, "{corrected}");
        assert!(
            corrected > -us.gate_threshold(0.10),
            "{corrected} vs {}",
            us.gate_threshold(0.10)
        );
        // The allowance widens the µs gate, it does not remove it: a
        // genuine 1.5× collapse still fails.
        let worse = Json::parse(&REPORT.replace("0.13", "0.195")).unwrap();
        let cmp = compare_reports(&prev, &worse);
        let us = cmp
            .iter()
            .find(|c| c.metric.contains("replication_reset_us"))
            .unwrap();
        assert!(us.regressed_beyond(0.10), "{us:?}");
    }

    #[test]
    fn comparison_json_round_trips_and_agrees_with_the_gate() {
        let prev = Json::parse(PREV).unwrap();
        // Clean pair: same data plus a brand-new section → no regression,
        // the new section listed as added.
        let clean = Json::parse(&PREV.replace(
            "\"sweep_wall_clock_secs\": 0.033",
            "\"sweep_wall_clock_secs\": 0.033, \"telemetry\": { \"x\": 1 }",
        ))
        .unwrap();
        let verdict = Json::parse(&comparison_json(&prev, &clean, 0.10)).expect("verdict parses");
        assert_eq!(
            verdict.get("schema"),
            Some(&Json::Str(COMPARE_SCHEMA.into()))
        );
        assert_eq!(verdict.get("regressed"), Some(&Json::Bool(false)));
        assert_eq!(
            verdict.get("sections_added"),
            Some(&Json::Arr(vec![Json::Str("telemetry".into())]))
        );
        let Some(Json::Arr(metrics)) = verdict.get("metrics") else {
            panic!("metrics is an array")
        };
        assert_eq!(metrics.len(), compare_reports(&prev, &clean).len());
        assert!(metrics
            .iter()
            .all(|m| m.get("regressed") == Some(&Json::Bool(false))));

        // Regressed pair: big-shape throughput down 20% → overall fail,
        // and exactly that metric flagged.
        let worse = Json::parse(&PREV.replace("9900000", "7920000")).unwrap();
        let verdict = Json::parse(&comparison_json(&prev, &worse, 0.10)).expect("verdict parses");
        assert_eq!(verdict.get("regressed"), Some(&Json::Bool(true)));
        let Some(Json::Arr(metrics)) = verdict.get("metrics") else {
            panic!("metrics is an array")
        };
        let flagged: Vec<&Json> = metrics
            .iter()
            .filter(|m| m.get("regressed") == Some(&Json::Bool(true)))
            .collect();
        assert_eq!(flagged.len(), 1);
        let name = flagged[0].get("metric").unwrap();
        assert_eq!(
            name,
            &Json::Str("event_loop[pending=262144].engine_events_per_sec".into())
        );
        assert!(flagged[0].get("raw_change_pct").unwrap().as_f64().unwrap() < -10.0);
    }

    #[test]
    fn latest_two_picks_highest_numbers() {
        let dir = std::env::temp_dir().join(format!("bench_compare_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in [
            "BENCH_1.json",
            "BENCH_2.json",
            "BENCH_10.json",
            "BENCH_x.json",
            "notes.md",
        ] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let all = all_baselines(&dir);
        assert_eq!(
            all.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec![1, 2, 10],
            "numeric sort, non-baselines ignored"
        );
        let (prev, newest) = latest_two_baselines(&dir).unwrap();
        assert!(prev.ends_with("BENCH_2.json"));
        assert!(newest.ends_with("BENCH_10.json"));
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(all_baselines(Path::new("/nonexistent-bench-dir")).is_empty());

        let empty =
            std::env::temp_dir().join(format!("bench_compare_empty_{}", std::process::id()));
        std::fs::create_dir_all(&empty).unwrap();
        std::fs::write(empty.join("BENCH_1.json"), "{}").unwrap();
        assert!(latest_two_baselines(&empty).is_none());
        std::fs::remove_dir_all(&empty).unwrap();
    }
}
