//! Paper-style table output: aligned stdout rendering plus CSV files
//! under `target/figures/` for plotting.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as CSV to `target/figures/<name>.csv`; returns the path.
    pub fn save_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        write_csv(name, &self.headers, &self.rows)
    }
}

/// Write rows as CSV under `target/figures/`.
pub fn write_csv(name: &str, headers: &[String], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target/figures");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Format a rate as e.g. `0.873`.
pub fn fmt_rate(v: f64) -> String {
    format!("{v:.3}")
}

/// Format seconds at nanosecond precision, e.g. `0.010000012`.
pub fn fmt_secs(v: f64) -> String {
    format!("{v:.9}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["n", "rate"]);
        t.row(vec!["100".into(), "0.75".into()]);
        t.row(vec!["2000".into(), "1.0".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("2000"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_written_to_target_figures() {
        let mut t = Table::new("csv-test", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.save_csv("unit_test_table").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("a,b\n1,2"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_rate(0.8734), "0.873");
        assert!(fmt_secs(0.01).starts_with("0.0100000"));
    }
}
