//! Ablations over the design choices DESIGN.md calls out.
//!
//! 1. **Timer discipline** (absolute vs relative re-arm): the paper's
//!    model assumes the PIAT mean is rate-independent; a re-arming timer
//!    quietly violates that and re-opens the sample-mean channel.
//! 2. **VIT interval law** (truncated-normal vs uniform vs exponential):
//!    the defence depends on σ_T, not on the particular law.
//! 3. **Entropy bin width**: the Moddemeijer estimator is usable across
//!    a wide bin-width range (the `ln Δh` term cancels).
//! 4. **Outlier robustness**: contaminate test captures with stalls;
//!    variance collapses, entropy and MAD survive (the paper's §5.2
//!    observation, isolated).
//! 5. **Background-noise hop vs packet-level cross traffic**: validates
//!    the fluid substitution used for the campus/WAN chains.

use linkpad_adversary::feature::{
    Feature, MedianAbsDev, SampleEntropy, SampleMean, SampleVariance,
};
use linkpad_adversary::pipeline::DetectionStudy;
use linkpad_bench::runner::{collect_piats_parallel, detection_for, Budget};
use linkpad_bench::table::{fmt_rate, Table};
use linkpad_core::gateway::TimerDiscipline;
use linkpad_stats::rng::MasterSeed;
use linkpad_workloads::scenario::{ScenarioBuilder, TapPosition};
use linkpad_workloads::spec::{HopSpec, ScheduleSpec};

fn main() {
    let base = Budget::from_env();
    let budget = Budget {
        train: base.train.min(80),
        test: base.test.min(60),
    };
    let at = TapPosition::SenderEgress;

    // ---- 1. Timer discipline -------------------------------------------
    let mut t1 = Table::new(
        "Ablation 1: timer discipline (n = 1000, CIT)",
        &["discipline", "mean", "variance"],
    );
    for (name, disc) in [
        ("absolute", TimerDiscipline::Absolute),
        ("relative", TimerDiscipline::Relative),
    ] {
        let low = ScenarioBuilder::lab(910)
            .with_payload_rate(10.0)
            .with_discipline(disc);
        let high = ScenarioBuilder::lab(920)
            .with_payload_rate(40.0)
            .with_discipline(disc);
        let m =
            detection_for(&low, &high, at, &SampleMean, 1000, budget).expect("ablation detection");
        let v = detection_for(&low, &high, at, &SampleVariance, 1000, budget)
            .expect("ablation detection");
        t1.row(vec![
            name.to_string(),
            fmt_rate(m.detection_rate()),
            fmt_rate(v.detection_rate()),
        ]);
    }
    t1.print();
    t1.save_csv("ablation1_timer_discipline").unwrap();
    println!("Check: the relative timer leaks through the MEAN feature; absolute does not.");

    // ---- 2. VIT interval law -------------------------------------------
    let mut t2 = Table::new(
        "Ablation 2: VIT interval law at sigma_t = 500 µs (n = 2000)",
        &["law", "variance", "entropy"],
    );
    for (name, spec) in [
        (
            "trunc-normal",
            ScheduleSpec::VitTruncatedNormal { sigma_t: 500e-6 },
        ),
        ("uniform", ScheduleSpec::VitUniform { sigma_t: 500e-6 }),
        ("exponential", ScheduleSpec::VitExponential),
    ] {
        let low = ScenarioBuilder::lab(930)
            .with_payload_rate(10.0)
            .with_schedule(spec);
        let high = ScenarioBuilder::lab(940)
            .with_payload_rate(40.0)
            .with_schedule(spec);
        let v = detection_for(&low, &high, at, &SampleVariance, 2000, budget)
            .expect("ablation detection");
        let e = detection_for(&low, &high, at, &SampleEntropy::calibrated(), 2000, budget)
            .expect("ablation detection");
        t2.row(vec![
            name.to_string(),
            fmt_rate(v.detection_rate()),
            fmt_rate(e.detection_rate()),
        ]);
    }
    t2.print();
    t2.save_csv("ablation2_vit_law").unwrap();
    println!("Check: every law with real sigma_t collapses detection toward 0.5.");

    // ---- 3. Entropy bin width ------------------------------------------
    let mut t3 = Table::new(
        "Ablation 3: entropy bin width (CIT, n = 1000)",
        &["bin_width_us", "entropy"],
    );
    let low = ScenarioBuilder::lab(950).with_payload_rate(10.0);
    let high = ScenarioBuilder::lab(960).with_payload_rate(40.0);
    for &w in &[0.5e-6, 1e-6, 2e-6, 5e-6, 20e-6] {
        let feature = SampleEntropy::with_bin_width(w).unwrap();
        let e = detection_for(&low, &high, at, &feature, 1000, budget).expect("ablation detection");
        t3.row(vec![
            format!("{:.1}", w * 1e6),
            fmt_rate(e.detection_rate()),
        ]);
    }
    t3.print();
    t3.save_csv("ablation3_entropy_bins").unwrap();
    println!("Check: detection is strong across a decade of bin widths (plateau).");

    // ---- 4. Outlier robustness -----------------------------------------
    // Build clean captures, then contaminate a fraction of PIATs with
    // 100 ms stalls (e.g. retransmission pauses at a congested tap).
    let n = 1000;
    let study = DetectionStudy {
        sample_size: n,
        train_samples: budget.train,
        test_samples: budget.test,
    };
    let needed = study.piats_needed();
    let mut piats_low = collect_piats_parallel(&low, at, needed, n).expect("ablation collection");
    let mut piats_high = collect_piats_parallel(&high, at, needed, n).expect("ablation collection");
    let mut rng = MasterSeed::new(7777).stream(0);
    let mut contaminate = |xs: &mut Vec<f64>| {
        let count = xs.len() / 200; // 0.5% of observations
        for _ in 0..count {
            let idx = (rng.next_f64() * xs.len() as f64) as usize % xs.len();
            xs[idx] = 0.1; // 100 ms stall
        }
    };
    contaminate(&mut piats_low);
    contaminate(&mut piats_high);
    let streams = [piats_low, piats_high];
    let mut t4 = Table::new(
        "Ablation 4: 0.5% outlier contamination (CIT, n = 1000)",
        &["feature", "detection"],
    );
    let features: Vec<Box<dyn Feature>> = vec![
        Box::new(SampleVariance),
        Box::new(SampleEntropy::calibrated()),
        Box::new(MedianAbsDev),
    ];
    for feature in &features {
        let report = study.run(feature.as_ref(), &streams).unwrap();
        t4.row(vec![
            feature.name().to_string(),
            fmt_rate(report.detection_rate()),
        ]);
    }
    t4.print();
    t4.save_csv("ablation4_outliers").unwrap();
    println!("Check: variance collapses under contamination; entropy and MAD survive.");

    // ---- 5. Background hop vs packet-level cross traffic ----------------
    let mut t5 = Table::new(
        "Ablation 5: fluid background hop vs packet-level cross traffic (util 0.30, n = 1000)",
        &["hop_model", "variance", "entropy"],
    );
    for (name, hop) in [
        ("packet-level", HopSpec::poisson(0.30)),
        ("background", HopSpec::background(0.30)),
    ] {
        let low = ScenarioBuilder::lab(970)
            .with_payload_rate(10.0)
            .with_hops(vec![hop]);
        let high = ScenarioBuilder::lab(980)
            .with_payload_rate(40.0)
            .with_hops(vec![hop]);
        let v = detection_for(
            &low,
            &high,
            TapPosition::ReceiverIngress,
            &SampleVariance,
            1000,
            budget,
        )
        .expect("ablation detection");
        let e = detection_for(
            &low,
            &high,
            TapPosition::ReceiverIngress,
            &SampleEntropy::calibrated(),
            1000,
            budget,
        )
        .expect("ablation detection");
        t5.row(vec![
            name.to_string(),
            fmt_rate(v.detection_rate()),
            fmt_rate(e.detection_rate()),
        ]);
    }
    t5.print();
    t5.save_csv("ablation5_background_hop").unwrap();
    println!("Check: both hop models land detection in the same band (substitution is faithful).");
}
