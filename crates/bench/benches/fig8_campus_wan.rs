//! **Figure 8** — detection rate over a 24-hour day (n = 1000).
//!
//! (a) Campus network (3 enterprise hops, light diurnal load): CIT
//!     remains highly detectable essentially all day.
//! (b) WAN, Ohio→Texas (15 backbone hops, heavy diurnal load): detection
//!     is depressed by accumulated queueing noise; the adversary's best
//!     window is the small hours (~02:00–03:00), where it can still
//!     clear 0.65 — "CIT padding may still not be sufficiently safe even
//!     if the adversary is very remote."

use linkpad_adversary::feature::{Feature, SampleEntropy, SampleMean, SampleVariance};
use linkpad_bench::runner::{detection_multi, Budget};
use linkpad_bench::table::{fmt_rate, Table};
use linkpad_workloads::cross::DiurnalProfile;
use linkpad_workloads::scenario::{ScenarioBuilder, TapPosition};

fn run_day(
    name: &str,
    csv: &str,
    profile: DiurnalProfile,
    make: impl Fn(u64, f64) -> ScenarioBuilder,
    budget: Budget,
) {
    let n = 1000;
    let at = TapPosition::ReceiverIngress;
    let mut table = Table::new(
        format!("Fig 8{name}: detection rate across 24 h (CIT, n = {n})"),
        &["hour", "utilization", "mean", "variance", "entropy"],
    );
    for hour in 0..24u32 {
        let util = profile.utilization_at_hour(hour as f64);
        let low = make(8_100 + hour as u64, util).with_payload_rate(10.0);
        let high = make(8_200 + hour as u64, util).with_payload_rate(40.0);
        let features: Vec<Box<dyn Feature>> = vec![
            Box::new(SampleMean),
            Box::new(SampleVariance),
            Box::new(SampleEntropy::calibrated()),
        ];
        let refs: Vec<&dyn Feature> = features.iter().map(|f| f.as_ref()).collect();
        let mut cells = vec![format!("{hour:02}:00"), format!("{util:.3}")];
        for report in detection_multi(&low, &high, at, &refs, n, budget).expect("fig8 detection") {
            cells.push(fmt_rate(report.detection_rate()));
        }
        table.row(cells);
        eprintln!("fig8{name}: hour {hour:02} done");
    }
    table.print();
    table.save_csv(csv).unwrap();
}

fn main() {
    let base = Budget::from_env();
    let budget = Budget {
        train: base.train.min(80),
        test: base.test.min(60),
    };
    run_day(
        "(a) campus",
        "fig8a_campus_day",
        DiurnalProfile::campus(),
        ScenarioBuilder::campus,
        budget,
    );
    run_day(
        "(b) wan",
        "fig8b_wan_day",
        DiurnalProfile::wan(),
        ScenarioBuilder::wan,
        budget,
    );
    println!(
        "\nPaper check: campus stays high all day; WAN is depressed with its best window near 02:00 (> 0.65 for entropy)."
    );
}
