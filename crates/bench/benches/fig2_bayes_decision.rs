//! **Figure 2** — Bayes decision making for two payload rates.
//!
//! The conceptual figure: the class-conditional densities of the feature
//! statistic, `f(s|ω_l)P(ω_l)` and `f(s|ω_h)P(ω_h)`, and the decision
//! threshold `d` where they cross (eq. 3–4). We realize it concretely:
//! the variance feature at n = 500 on the CIT lab scenario, with KDE
//! densities exactly as the paper's trained adversary builds them.

use linkpad_adversary::classifier::KdeBayes;
use linkpad_adversary::feature::SampleVariance;
use linkpad_adversary::pipeline::features_from_piats;
use linkpad_bench::runner::{collect_piats_parallel, Budget};
use linkpad_bench::table::Table;
use linkpad_workloads::scenario::{ScenarioBuilder, TapPosition};

fn main() {
    let budget = Budget::from_env();
    let n = 500;
    let at = TapPosition::SenderEgress;
    let feature = SampleVariance;

    let needed = budget.samples() * n;
    let low = ScenarioBuilder::lab(21).with_payload_rate(10.0);
    let high = ScenarioBuilder::lab(22).with_payload_rate(40.0);
    let piats_low = collect_piats_parallel(&low, at, needed, n).expect("fig2 collection");
    let piats_high = collect_piats_parallel(&high, at, needed, n).expect("fig2 collection");

    let f_low = features_from_piats(&feature, &piats_low, n).unwrap();
    let f_high = features_from_piats(&feature, &piats_high, n).unwrap();
    let classifier = KdeBayes::train(&[f_low.clone(), f_high.clone()]).unwrap();
    let d = classifier
        .two_class_threshold()
        .expect("two-class threshold exists");

    println!("Fig 2 — Bayes decision, variance feature, n = {n}");
    println!("  decision threshold d = {d:.3e} s² (decide ω_l below, ω_h above)");

    // Density curves over the combined feature support.
    let lo = f_low
        .iter()
        .chain(&f_high)
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = f_low
        .iter()
        .chain(&f_high)
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let mut table = Table::new(
        "Fig 2: class-conditional weighted densities f(s|w)·P(w)",
        &["s_variance", "p_low_weighted", "p_high_weighted", "decide"],
    );
    let steps = 40;
    for i in 0..=steps {
        let s = lo + (hi - lo) * i as f64 / steps as f64;
        let pl = 0.5 * classifier.class_pdf(0, s);
        let ph = 0.5 * classifier.class_pdf(1, s);
        table.row(vec![
            format!("{s:.4e}"),
            format!("{pl:.4e}"),
            format!("{ph:.4e}"),
            if s <= d { "w_low" } else { "w_high" }.to_string(),
        ]);
    }
    table.print();
    table.save_csv("fig2_bayes_decision").unwrap();

    // Sanity: the threshold separates the feature clouds the right way.
    let low_below = f_low.iter().filter(|&&s| s <= d).count();
    let high_above = f_high.iter().filter(|&&s| s > d).count();
    println!(
        "\n  {}/{} low-rate samples below d; {}/{} high-rate samples above d",
        low_below,
        f_low.len(),
        high_above,
        f_high.len()
    );
    println!("Paper check: two overlapping unimodal curves crossing at a single d between the class modes.");
}
