//! **Figure 4** — CIT padding, laboratory, zero cross traffic.
//!
//! (a) PIAT PDFs under 10 pps vs 40 pps payload: bell curves sharing the
//!     10 ms mean, the 40 pps curve slightly wider (σ_gw,h > σ_gw,l).
//! (b) Detection rate vs sample size for sample mean / variance /
//!     entropy: empirical (KDE-Bayes over simulated captures) next to the
//!     theoretical Theorem 1–3 curves. Expected shape: mean flat at ~0.5;
//!     variance & entropy climbing to ~1.0 by n = 1000.

use linkpad_adversary::feature::{Feature, SampleEntropy, SampleMean, SampleVariance};
use linkpad_analytic::theorems;
use linkpad_bench::runner::{collect_piats_parallel, detection_multi, Budget};
use linkpad_bench::table::{fmt_rate, Table};
use linkpad_stats::histogram::HistogramSpec;
use linkpad_stats::moments::{sample_mean, sample_variance};
use linkpad_workloads::scenario::{ScenarioBuilder, TapPosition};

fn main() {
    let budget = Budget::from_env();
    let low = ScenarioBuilder::lab(101).with_payload_rate(10.0);
    let high = ScenarioBuilder::lab(202).with_payload_rate(40.0);
    let at = TapPosition::SenderEgress;

    // ---- Part (a): PIAT PDFs -------------------------------------------
    let piats_low = collect_piats_parallel(&low, at, 60_000, 1).expect("fig4 collection");
    let piats_high = collect_piats_parallel(&high, at, 60_000, 1).expect("fig4 collection");
    let mean_l = sample_mean(&piats_low).unwrap();
    let mean_h = sample_mean(&piats_high).unwrap();
    let var_l = sample_variance(&piats_low).unwrap();
    let var_h = sample_variance(&piats_high).unwrap();
    let r = var_h / var_l;

    println!("Fig 4(a) — PIAT distributions at GW1 egress (CIT, no cross traffic)");
    println!("  mean(10pps) = {mean_l:.9} s   mean(40pps) = {mean_h:.9} s");
    println!(
        "  std(10pps)  = {:.3} µs      std(40pps)  = {:.3} µs",
        var_l.sqrt() * 1e6,
        var_h.sqrt() * 1e6
    );
    println!("  variance ratio r = {r:.3}   (paper: r slightly above 1)");

    let spec = HistogramSpec::new(0.0, 2e-6).unwrap();
    let h_low = spec.histogram(&piats_low);
    let h_high = spec.histogram(&piats_high);
    let mut pdf = Table::new(
        "Fig 4(a): PIAT PDF (density per second), 2 µs bins",
        &["piat_ms", "density_10pps", "density_40pps"],
    );
    let center_bin = spec.bin_of(0.010);
    for b in (center_bin - 15)..=(center_bin + 15) {
        let x = spec.left_edge(b) + 1e-6;
        let nl = h_low.count(b) as f64 / (piats_low.len() as f64 * 2e-6);
        let nh = h_high.count(b) as f64 / (piats_high.len() as f64 * 2e-6);
        pdf.row(vec![
            format!("{:.4}", x * 1e3),
            format!("{nl:.1}"),
            format!("{nh:.1}"),
        ]);
    }
    pdf.print();
    pdf.save_csv("fig4a_piat_pdf").unwrap();

    // ---- Part (b): detection rate vs sample size -----------------------
    let features: Vec<(&str, Box<dyn Feature>)> = vec![
        ("mean", Box::new(SampleMean)),
        ("variance", Box::new(SampleVariance)),
        ("entropy", Box::new(SampleEntropy::calibrated())),
    ];
    let mut table = Table::new(
        format!(
            "Fig 4(b): detection rate vs sample size (CIT lab, r_emp = {r:.3}, {} train / {} test samples per class)",
            budget.train, budget.test
        ),
        &[
            "n",
            "mean_emp",
            "mean_thy",
            "var_emp",
            "var_thy",
            "ent_emp",
            "ent_thy",
        ],
    );
    for &n in &[100usize, 200, 400, 700, 1000, 1400, 2000] {
        let mut cells = vec![n.to_string()];
        let refs: Vec<&dyn Feature> = features.iter().map(|(_, f)| f.as_ref()).collect();
        let reports = detection_multi(&low, &high, at, &refs, n, budget).expect("fig4 detection");
        for ((name, _), report) in features.iter().zip(&reports) {
            let theory = match *name {
                "mean" => theorems::detection_rate_mean(r).unwrap(),
                "variance" => theorems::detection_rate_variance(r, n).unwrap(),
                _ => theorems::detection_rate_entropy(r, n).unwrap(),
            };
            cells.push(fmt_rate(report.detection_rate()));
            cells.push(fmt_rate(theory));
        }
        table.row(cells);
        eprintln!("fig4b: n = {n} done");
    }
    table.print();
    table.save_csv("fig4b_detection_vs_n").unwrap();
    println!(
        "\nPaper check: mean ≈ 0.5 everywhere; variance & entropy ≈ 1.0 by n = 1000; empirical tracks theory."
    );
}
