//! **Figure 6** — empirical detection rate vs shared-link utilization
//! (CIT padding, laboratory cross traffic, n = 1000).
//!
//! Cross traffic through the lab router perturbs the padded flow
//! (σ_net² grows with utilization), pushing r toward 1: variance and
//! entropy detection decay with load; entropy stays above variance
//! (outlier robustness); sample mean stays at chance. At 40 % utilization
//! the paper still sees ~0.7 for entropy — CIT is not saved by a merely
//! busy link.

use linkpad_adversary::feature::{Feature, SampleEntropy, SampleMean, SampleVariance};
use linkpad_bench::runner::{detection_multi, Budget};
use linkpad_bench::table::{fmt_rate, Table};
use linkpad_workloads::scenario::{ScenarioBuilder, TapPosition};

fn main() {
    // Packet-level cross traffic is the expensive part; trim the budget.
    let base = Budget::from_env();
    let budget = Budget {
        train: base.train.min(80),
        test: base.test.min(60),
    };
    let n = 1000;
    let at = TapPosition::ReceiverIngress;

    let mut table = Table::new(
        format!("Fig 6: detection rate vs shared-link utilization (CIT, n = {n})"),
        &["utilization", "mean", "variance", "entropy"],
    );
    for &util in &[0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let low = ScenarioBuilder::lab(61)
            .with_payload_rate(10.0)
            .with_uniform_utilization(util);
        let high = ScenarioBuilder::lab(62)
            .with_payload_rate(40.0)
            .with_uniform_utilization(util);
        let features: Vec<Box<dyn Feature>> = vec![
            Box::new(SampleMean),
            Box::new(SampleVariance),
            Box::new(SampleEntropy::calibrated()),
        ];
        let refs: Vec<&dyn Feature> = features.iter().map(|f| f.as_ref()).collect();
        let mut cells = vec![format!("{util:.2}")];
        for report in detection_multi(&low, &high, at, &refs, n, budget).expect("fig6 detection") {
            cells.push(fmt_rate(report.detection_rate()));
        }
        table.row(cells);
        eprintln!("fig6: utilization {util:.2} done");
    }
    table.print();
    table.save_csv("fig6_detection_vs_utilization").unwrap();
    println!(
        "\nPaper check: variance & entropy decay with utilization; entropy ≥ variance; mean ≈ 0.5 flat."
    );
}
