//! **Figure 5** — VIT padding.
//!
//! (a) Empirical detection rate vs σ_T at fixed sample size n = 2000
//!     (variance & entropy features): rates collapse from the CIT level
//!     to ~0.5 as σ_T grows.
//! (b) Theoretical sample size needed for a 99% detection rate vs σ_T:
//!     explodes to ≥10¹¹ around σ_T = 1 ms — the paper's headline
//!     argument that VIT makes the attack infeasible.

use linkpad_adversary::feature::{Feature, SampleEntropy, SampleVariance};
use linkpad_analytic::planning::{required_sample_size, FeatureKind};
use linkpad_bench::runner::{detection_for, Budget};
use linkpad_bench::table::{fmt_rate, Table};
use linkpad_core::calibration::CalibratedDefaults;
use linkpad_workloads::scenario::{ScenarioBuilder, TapPosition};
use linkpad_workloads::spec::ScheduleSpec;

fn main() {
    let defaults = CalibratedDefaults::paper();
    // Part (a) is expensive (n = 2000); shrink the budget a notch.
    let base = Budget::from_env();
    let budget = Budget {
        train: base.train.min(100),
        test: base.test.min(80),
    };
    let n = 2000;
    let at = TapPosition::SenderEgress;

    let mut table = Table::new(
        format!("Fig 5(a): empirical detection rate vs sigma_T (VIT, n = {n})"),
        &["sigma_t_ms", "variance_emp", "entropy_emp", "r_predicted"],
    );
    let sweep: &[f64] = &[0.0, 20e-6, 50e-6, 100e-6, 200e-6, 500e-6, 1e-3];
    for &sigma_t in sweep {
        let schedule = if sigma_t == 0.0 {
            ScheduleSpec::Cit
        } else {
            ScheduleSpec::VitTruncatedNormal { sigma_t }
        };
        let low = ScenarioBuilder::lab(311)
            .with_payload_rate(10.0)
            .with_schedule(schedule);
        let high = ScenarioBuilder::lab(412)
            .with_payload_rate(40.0)
            .with_schedule(schedule);
        let var_feature: Box<dyn Feature> = Box::new(SampleVariance);
        let ent_feature: Box<dyn Feature> = Box::new(SampleEntropy::calibrated());
        let v = detection_for(&low, &high, at, var_feature.as_ref(), n, budget)
            .expect("fig5 detection");
        let e = detection_for(&low, &high, at, ent_feature.as_ref(), n, budget)
            .expect("fig5 detection");
        table.row(vec![
            format!("{:.3}", sigma_t * 1e3),
            fmt_rate(v.detection_rate()),
            fmt_rate(e.detection_rate()),
            format!("{:.5}", defaults.predicted_r(sigma_t)),
        ]);
        eprintln!("fig5a: sigma_t = {:.3} ms done", sigma_t * 1e3);
    }
    table.print();
    table.save_csv("fig5a_detection_vs_sigma_t").unwrap();

    // ---- Part (b): theoretical n(99%) vs σ_T ---------------------------
    let mut planning = Table::new(
        "Fig 5(b): theoretical sample size for 99% detection vs sigma_T",
        &["sigma_t_ms", "n99_variance", "n99_entropy"],
    );
    for &sigma_t in &[0.0, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2] {
        let r = defaults.predicted_r(sigma_t);
        let fmt_n = |kind| match required_sample_size(kind, r, 0.99).unwrap() {
            Some(v) => format!("{v:.3e}"),
            None => "unreachable".to_string(),
        };
        planning.row(vec![
            format!("{:.3}", sigma_t * 1e3),
            fmt_n(FeatureKind::Variance),
            fmt_n(FeatureKind::Entropy),
        ]);
    }
    planning.print();
    planning.save_csv("fig5b_n99_vs_sigma_t").unwrap();
    println!(
        "\nPaper check: (a) rates collapse toward 0.5 as sigma_t grows; (b) n(99%) ≳ 1e11 at sigma_t = 1 ms."
    );
}
