//! Criterion microbenches for the hot kernels: DES event dispatch,
//! gateway ticks, feature extraction, KDE training/classification, and
//! the parallel sweep scaffolding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use linkpad_adversary::classifier::KdeBayes;
use linkpad_adversary::feature::{Feature, SampleEntropy, SampleVariance};
use linkpad_bench::perf::{heap_reference_events_per_sec, sim_events_per_sec};
use linkpad_stats::kde::GaussianKde;
use linkpad_stats::moments::RunningMoments;
use linkpad_stats::normal::Normal;
use linkpad_stats::rng::MasterSeed;
use linkpad_workloads::scenario::{piats_for, ScenarioBuilder, TapPosition};
use std::hint::black_box;

fn synthetic_piats(count: usize, sigma: f64, seed: u64) -> Vec<f64> {
    let d = Normal::new(0.010, sigma).unwrap();
    let mut rng = MasterSeed::new(seed).stream(0);
    (0..count).map(|_| d.sample(&mut rng)).collect()
}

fn bench_event_loop(c: &mut Criterion) {
    // The engine-rewrite acceptance pair: identical timer+delivery
    // workload on the ladder-queue engine and on a faithful replica of
    // the old BinaryHeap engine. The large-pending shape is store-bound
    // (where the ladder's O(1)-amortized ordering pays); the small shape
    // is dispatch-bound and roughly ties.
    for pending in [4_096usize, 262_144] {
        c.bench_function(&format!("engine/ladder_queue_{pending}_pending"), |b| {
            b.iter(|| black_box(sim_events_per_sec(400_000, pending)))
        });
        c.bench_function(&format!("engine/heap_reference_{pending}_pending"), |b| {
            b.iter(|| black_box(heap_reference_events_per_sec(400_000, pending)))
        });
    }
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("sim/lab_10k_piats_cit", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let builder = ScenarioBuilder::lab(seed).with_payload_rate(40.0);
            let piats = piats_for(&builder, TapPosition::SenderEgress, 10_000, 16).unwrap();
            black_box(piats.len())
        })
    });
    c.bench_function("sim/lab_2k_piats_with_cross_traffic", |b| {
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            let builder = ScenarioBuilder::lab(seed)
                .with_payload_rate(40.0)
                .with_uniform_utilization(0.3);
            let piats = piats_for(&builder, TapPosition::ReceiverIngress, 2_000, 16).unwrap();
            black_box(piats.len())
        })
    });
}

fn bench_features(c: &mut Criterion) {
    let piats = synthetic_piats(2000, 7e-6, 1);
    c.bench_function("feature/variance_n2000", |b| {
        b.iter(|| black_box(SampleVariance.compute(&piats).unwrap()))
    });
    let entropy = SampleEntropy::calibrated();
    c.bench_function("feature/entropy_n2000", |b| {
        b.iter(|| black_box(entropy.compute(&piats).unwrap()))
    });
    c.bench_function("feature/welford_n2000", |b| {
        b.iter(|| black_box(RunningMoments::from_slice(&piats).variance().unwrap()))
    });
}

fn bench_kde(c: &mut Criterion) {
    let train = synthetic_piats(500, 7e-6, 2);
    c.bench_function("kde/fit_500", |b| {
        b.iter_batched(
            || train.clone(),
            |data| black_box(GaussianKde::fit(&data).unwrap()),
            BatchSize::SmallInput,
        )
    });
    let kde = GaussianKde::fit(&train).unwrap();
    c.bench_function("kde/pdf_eval", |b| b.iter(|| black_box(kde.pdf(0.0100001))));
    let f_low = synthetic_piats(300, 6e-6, 3);
    let f_high = synthetic_piats(300, 8e-6, 4);
    let classifier = KdeBayes::train(&[f_low, f_high]).unwrap();
    c.bench_function("classifier/classify", |b| {
        b.iter(|| black_box(classifier.classify(0.0100002)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_event_loop, bench_simulator, bench_features, bench_kde
}
criterion_main!(kernels);
