//! Engine self-profiling: what the event loop and its calendar queue
//! are actually doing, recorded deterministically in sim time.
//!
//! The profile exists to attack the dispatch bound (ROADMAP open item
//! 4) with evidence: how large same-instant delivery batches really
//! get, how deep the pending set runs over sim time, which ladder rungs
//! fill and which spill to the far tier, and how the event mix splits
//! between timers and deliveries. All of it is integers keyed to the
//! simulation clock, so two runs of the same `(spec, seed)` produce
//! bit-identical profiles — asserted by the `reset_determinism` family.
//!
//! The engine owns an `Option<Box<EngineProfile>>`; a sim that never
//! enables profiling takes one branch per run call and pays nothing per
//! event (the profiled loop is outlined `#[cold]`, mirroring the
//! watchdog). See DESIGN.md §Observability.

use crate::metrics::Histogram;

/// How many dispatches between pending-depth samples. Power of two so
/// the due-check is a mask; 1024 matches the watchdog's wall-check
/// stride.
const SAMPLE_EVERY: u64 = 1024;

/// Depth samples kept before the series decimates (drops every other
/// sample and doubles its stride) — bounds profile memory at ~128 KiB
/// regardless of run length while keeping full-run coverage.
const SERIES_CAP: usize = 4096;

/// One pending-depth sample, keyed to the simulation clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthSample {
    /// Simulation time of the sample (nanoseconds).
    pub sim_nanos: u64,
    /// Total pending events in the store.
    pub pending: u64,
    /// Events in the near (active-window) heap.
    pub near: u64,
    /// Events across the calendar rungs.
    pub rung: u64,
    /// Events in the unsorted far tier.
    pub far: u64,
}

/// Event-store operation counters, as deltas over the profiled span.
/// The engine copies these out of the queue's cumulative diagnostics
/// (which survive resets) so a profile always reads zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// Pushes routed to the near heap.
    pub push_near: u64,
    /// Pushes routed to a calendar rung.
    pub push_rung: u64,
    /// Pushes spilled to the far tier (beyond the rung span).
    pub push_far: u64,
    /// Rung-to-near refills.
    pub refills: u64,
    /// Ladder re-bases (full far-tier sweeps).
    pub rebases: u64,
    /// Keys examined by re-base sweeps.
    pub rebase_scanned: u64,
    /// Keys moved into rungs by re-bases.
    pub rebase_moved: u64,
}

impl StoreCounters {
    /// `self - base`, field-wise (saturating) — turns cumulative queue
    /// diagnostics into a span delta.
    pub fn delta(&self, base: &StoreCounters) -> StoreCounters {
        StoreCounters {
            push_near: self.push_near.saturating_sub(base.push_near),
            push_rung: self.push_rung.saturating_sub(base.push_rung),
            push_far: self.push_far.saturating_sub(base.push_far),
            refills: self.refills.saturating_sub(base.refills),
            rebases: self.rebases.saturating_sub(base.rebases),
            rebase_scanned: self.rebase_scanned.saturating_sub(base.rebase_scanned),
            rebase_moved: self.rebase_moved.saturating_sub(base.rebase_moved),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"push_near\":{},\"push_rung\":{},\"push_far\":{},\"refills\":{},\
             \"rebases\":{},\"rebase_scanned\":{},\"rebase_moved\":{}}}",
            self.push_near,
            self.push_rung,
            self.push_far,
            self.refills,
            self.rebases,
            self.rebase_scanned,
            self.rebase_moved
        )
    }
}

/// Live profiling state the engine records into while a profiled run
/// is in flight. Construct via [`EngineProfile::new`] with the queue's
/// cumulative counters as the zero point.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineProfile {
    timer_events: u64,
    deliver_events: u64,
    deliver_batches: u64,
    batch_sizes: Histogram,
    depth: Vec<DepthSample>,
    depth_stride: u64,
    depth_peak: u64,
    rung_peak: Vec<u64>,
    since_sample: u64,
    store_base: StoreCounters,
}

impl EngineProfile {
    /// Fresh profile. `store_base` is the queue's cumulative operation
    /// counters at enable time; reports subtract it so the profile
    /// covers exactly the profiled span.
    pub fn new(store_base: StoreCounters) -> Self {
        Self {
            timer_events: 0,
            deliver_events: 0,
            deliver_batches: 0,
            batch_sizes: Histogram::new(),
            depth: Vec::new(),
            depth_stride: 1,
            depth_peak: 0,
            rung_peak: Vec::new(),
            since_sample: 0,
            store_base,
        }
    }

    /// Re-zero for a reset sim: same shape as a fresh profile with the
    /// queue's current cumulative counters as the new base.
    pub fn reset(&mut self, store_base: StoreCounters) {
        *self = EngineProfile::new(store_base);
    }

    /// Fold one dispatched event (or same-instant batch) in. `consumed`
    /// is the number of events the dispatch retired — 1 for timers, the
    /// batch length for deliveries. Returns `true` when a pending-depth
    /// sample is due (every [`SAMPLE_EVERY`]-th dispatch).
    #[must_use]
    pub fn record_dispatch(&mut self, is_timer: bool, consumed: u64) -> bool {
        if is_timer {
            self.timer_events += 1;
        } else {
            self.deliver_events += consumed;
            self.deliver_batches += 1;
            self.batch_sizes.record(consumed);
        }
        self.since_sample += 1;
        if self.since_sample >= SAMPLE_EVERY * self.depth_stride {
            self.since_sample = 0;
            true
        } else {
            false
        }
    }

    /// Record a pending-depth sample (called when
    /// [`EngineProfile::record_dispatch`] returned `true`). `rung_lens`
    /// is the per-rung occupancy of the calendar tier; per-rung peaks
    /// are kept across the run.
    pub fn sample_depth(
        &mut self,
        sim_nanos: u64,
        pending: u64,
        near: u64,
        rung: u64,
        far: u64,
        rung_lens: &[usize],
    ) {
        self.depth_peak = self.depth_peak.max(pending);
        if self.rung_peak.len() < rung_lens.len() {
            self.rung_peak.resize(rung_lens.len(), 0);
        }
        for (peak, &len) in self.rung_peak.iter_mut().zip(rung_lens.iter()) {
            *peak = (*peak).max(len as u64);
        }
        self.depth.push(DepthSample {
            sim_nanos,
            pending,
            near,
            rung,
            far,
        });
        if self.depth.len() >= SERIES_CAP {
            // Decimate: keep every other sample, double the stride. The
            // series stays a uniform-stride view of the whole run.
            let mut keep = 0;
            self.depth.retain(|_| {
                keep += 1;
                keep % 2 == 1
            });
            self.depth_stride *= 2;
        }
    }

    /// Events recorded so far (timers + deliveries).
    pub fn events(&self) -> u64 {
        self.timer_events + self.deliver_events
    }

    /// Finalize into a report. `store_now` is the queue's cumulative
    /// operation counters at read time; the report carries the delta
    /// over the profiled span.
    pub fn report(&self, store_now: StoreCounters) -> ProfileReport {
        ProfileReport {
            timer_events: self.timer_events,
            deliver_events: self.deliver_events,
            deliver_batches: self.deliver_batches,
            batch_sizes: self.batch_sizes.clone(),
            depth: self.depth.clone(),
            depth_sample_stride: SAMPLE_EVERY * self.depth_stride,
            depth_peak: self.depth_peak,
            rung_peak: self.rung_peak.clone(),
            store: store_now.delta(&self.store_base),
        }
    }
}

/// Finalized engine profile for one run span — what `perf_baseline`
/// embeds in `BENCH_N.json` and sharded run manifests carry per shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Timer events dispatched.
    pub timer_events: u64,
    /// Delivery events dispatched (sum over batches).
    pub deliver_events: u64,
    /// Same-instant delivery batches dispatched.
    pub deliver_batches: u64,
    /// Distribution of same-instant batch sizes.
    pub batch_sizes: Histogram,
    /// Pending-depth time series (sim-time-stamped, uniform stride).
    pub depth: Vec<DepthSample>,
    /// Dispatches between consecutive depth samples.
    pub depth_sample_stride: u64,
    /// Largest sampled pending population.
    pub depth_peak: u64,
    /// Peak occupancy per calendar rung (sampled alongside depth).
    pub rung_peak: Vec<u64>,
    /// Event-store operation counters over the profiled span.
    pub store: StoreCounters,
}

impl ProfileReport {
    /// Total events dispatched over the profiled span.
    pub fn events(&self) -> u64 {
        self.timer_events + self.deliver_events
    }

    /// Mean same-instant delivery batch size (1.0 when no batches).
    pub fn mean_batch(&self) -> f64 {
        if self.deliver_batches == 0 {
            1.0
        } else {
            self.deliver_events as f64 / self.deliver_batches as f64
        }
    }

    /// Render as a JSON object. The depth series is emitted as parallel
    /// arrays (compact, trivially plottable); rung peaks as one array
    /// indexed by rung.
    pub fn to_json(&self) -> String {
        let col = |f: fn(&DepthSample) -> u64| -> String {
            let vals: Vec<String> = self.depth.iter().map(|s| f(s).to_string()).collect();
            format!("[{}]", vals.join(","))
        };
        let rungs: Vec<String> = self.rung_peak.iter().map(|v| v.to_string()).collect();
        format!(
            "{{\"timer_events\":{},\"deliver_events\":{},\"deliver_batches\":{},\
             \"mean_batch\":{},\"batch_sizes\":{},\"depth_peak\":{},\
             \"depth_sample_stride\":{},\"depth\":{{\"sim_nanos\":{},\"pending\":{},\
             \"near\":{},\"rung\":{},\"far\":{}}},\"rung_peak\":[{}],\"store\":{}}}",
            self.timer_events,
            self.deliver_events,
            self.deliver_batches,
            crate::json::num(self.mean_batch()),
            self.batch_sizes.to_json(),
            self.depth_peak,
            self.depth_sample_stride,
            col(|s| s.sim_nanos),
            col(|s| s.pending),
            col(|s| s.near),
            col(|s| s.rung),
            col(|s| s.far),
            rungs.join(","),
            self.store.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_recording_splits_timers_and_batches() {
        let mut p = EngineProfile::new(StoreCounters::default());
        let _ = p.record_dispatch(true, 1);
        let _ = p.record_dispatch(false, 3);
        let _ = p.record_dispatch(false, 1);
        let r = p.report(StoreCounters::default());
        assert_eq!(r.timer_events, 1);
        assert_eq!(r.deliver_events, 4);
        assert_eq!(r.deliver_batches, 2);
        assert_eq!(r.events(), 5);
        assert_eq!(r.mean_batch(), 2.0);
        assert_eq!(r.batch_sizes.max(), 3);
    }

    #[test]
    fn depth_sampling_fires_every_stride() {
        let mut p = EngineProfile::new(StoreCounters::default());
        let mut due = 0;
        for _ in 0..(SAMPLE_EVERY * 3) {
            if p.record_dispatch(true, 1) {
                due += 1;
                p.sample_depth(0, 1, 1, 0, 0, &[]);
            }
        }
        assert_eq!(due, 3);
    }

    #[test]
    fn depth_series_decimates_at_cap() {
        let mut p = EngineProfile::new(StoreCounters::default());
        for i in 0..(SERIES_CAP as u64 + 10) {
            p.sample_depth(i, i, 0, 0, 0, &[]);
        }
        let r = p.report(StoreCounters::default());
        assert!(r.depth.len() < SERIES_CAP);
        assert_eq!(r.depth_sample_stride, SAMPLE_EVERY * 2);
        assert_eq!(r.depth_peak, SERIES_CAP as u64 + 9);
        // Survivors are the odd-position originals (every other kept).
        assert_eq!(r.depth[0].sim_nanos, 0);
        assert_eq!(r.depth[1].sim_nanos, 2);
    }

    #[test]
    fn rung_peaks_track_the_maximum_per_rung() {
        let mut p = EngineProfile::new(StoreCounters::default());
        p.sample_depth(0, 0, 0, 0, 0, &[1, 5, 0]);
        p.sample_depth(1, 0, 0, 0, 0, &[3, 2, 4]);
        let r = p.report(StoreCounters::default());
        assert_eq!(r.rung_peak, vec![3, 5, 4]);
    }

    #[test]
    fn store_counters_report_as_deltas() {
        let base = StoreCounters {
            push_near: 10,
            refills: 2,
            ..Default::default()
        };
        let p = EngineProfile::new(base);
        let now = StoreCounters {
            push_near: 25,
            push_far: 3,
            refills: 5,
            ..Default::default()
        };
        let r = p.report(now);
        assert_eq!(r.store.push_near, 15);
        assert_eq!(r.store.push_far, 3);
        assert_eq!(r.store.refills, 3);
    }

    #[test]
    fn reset_profile_matches_a_fresh_one() {
        let mut p = EngineProfile::new(StoreCounters::default());
        let _ = p.record_dispatch(false, 7);
        p.sample_depth(5, 9, 9, 0, 0, &[1]);
        let base = StoreCounters {
            push_rung: 4,
            ..Default::default()
        };
        p.reset(base);
        assert_eq!(p, EngineProfile::new(base));
    }

    #[test]
    fn report_json_contains_the_headline_fields() {
        let mut p = EngineProfile::new(StoreCounters::default());
        let _ = p.record_dispatch(false, 2);
        p.sample_depth(7, 3, 2, 1, 0, &[1, 0]);
        let j = p.report(StoreCounters::default()).to_json();
        for needle in [
            "\"timer_events\":0",
            "\"deliver_events\":2",
            "\"deliver_batches\":1",
            "\"depth\":{\"sim_nanos\":[7]",
            "\"rung_peak\":[1,0]",
            "\"store\":{\"push_near\":0",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }
}
