//! The metric registry: counters, gauges, and log₂ histograms keyed by
//! static names, plus the mergeable [`Snapshot`] they export.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** Values are integers; snapshots sort by name;
//!    merging follows the window-series discipline (counters superpose
//!    exactly, gauges keep the peak, histograms pool bucket-wise).
//!    A snapshot is therefore a pure function of `(spec, seed)` and the
//!    determinism tests compare snapshots with `==`, bit for bit.
//! 2. **Cheap.** Registration hands out index handles; the record path
//!    is an array index plus an integer add. No hashing, no strings, no
//!    allocation after registration.
//! 3. **Dependency-free.** Names are `&'static str`; storage is flat
//!    `Vec`s; rendering is plain JSON via [`crate::json`].

use crate::json;

/// Handle to a registered counter (monotone `u64`, merges by `+`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (level/peak `u64`, merges by `max`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram (merges bucket-wise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts zeros; bucket `k ≥ 1` counts values in
/// `[2^(k-1), 2^k)`. Exact count/sum/min/max ride alongside, so the
/// mean is exact and only the quantiles are bucket-resolution.
/// Merging two histograms adds buckets and pools the exact moments —
/// the same reduction `RunningMoments::merge` performs for PIATs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    /// `u64::MAX` while empty.
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Fold one sample in.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Pool another histogram into this one (bucket-wise add, exact
    /// moments pooled).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Samples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0 < q <= 1`), i.e. the quantile at log₂ resolution.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if k == 0 { 0 } else { 1u64 << k };
            }
        }
        self.max
    }

    /// Render as a JSON object with the exact moments and the sparse
    /// non-empty buckets (keyed by bucket upper bound).
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| {
                let ub = if k == 0 { 0u128 } else { 1u128 << k };
                format!("\"{ub}\":{n}")
            })
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{{{}}}}}",
            self.count,
            self.sum,
            self.min(),
            self.max,
            buckets.join(",")
        )
    }
}

/// One snapshotted metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone count; merges by addition (exact superposition).
    Counter(u64),
    /// Level/peak; merges by `max`.
    Gauge(u64),
    /// Distribution; merges bucket-wise (boxed: a histogram's bucket
    /// array dwarfs the scalar variants).
    Histogram(Box<Histogram>),
}

impl MetricValue {
    fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += *b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            // Kind mismatch between same-named metrics is a programming
            // error upstream; keep the left value rather than inventing
            // a combination (and rather than panicking on a run path).
            _ => {}
        }
    }

    fn to_json(&self) -> String {
        match self {
            MetricValue::Counter(v) => format!("{{\"type\":\"counter\",\"value\":{v}}}"),
            MetricValue::Gauge(v) => format!("{{\"type\":\"gauge\",\"value\":{v}}}"),
            MetricValue::Histogram(h) => {
                format!("{{\"type\":\"histogram\",\"value\":{}}}", h.to_json())
            }
        }
    }
}

/// The live registry: flat storage, handle-indexed record path.
///
/// Handles are only meaningful against the registry that issued them;
/// recording through a foreign or stale handle is ignored (never a
/// panic — registries are updated on run paths).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or find) a counter by name.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register (or find) a gauge by name.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| *n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name, 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or find) a histogram by name.
    pub fn histogram(&mut self, name: &'static str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| *n == name) {
            return HistId(i);
        }
        self.hists.push((name, Histogram::new()));
        HistId(self.hists.len() - 1)
    }

    /// Add `delta` to a counter.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        if let Some((_, v)) = self.counters.get_mut(id.0) {
            *v += delta;
        }
    }

    /// Raise a gauge to at least `v` (peak semantics).
    pub fn gauge_max(&mut self, id: GaugeId, v: u64) {
        if let Some((_, g)) = self.gauges.get_mut(id.0) {
            *g = (*g).max(v);
        }
    }

    /// Set a gauge to `v` (level semantics).
    pub fn gauge_set(&mut self, id: GaugeId, v: u64) {
        if let Some((_, g)) = self.gauges.get_mut(id.0) {
            *g = v;
        }
    }

    /// Fold one sample into a histogram.
    pub fn record(&mut self, id: HistId, v: u64) {
        if let Some((_, h)) = self.hists.get_mut(id.0) {
            h.record(v);
        }
    }

    /// Zero every value, keeping registrations and handles valid — the
    /// registry analogue of a node reset: a reset registry re-recorded
    /// under the same seed snapshots bit-identically to a fresh one.
    pub fn reset(&mut self) {
        for (_, v) in &mut self.counters {
            *v = 0;
        }
        for (_, v) in &mut self.gauges {
            *v = 0;
        }
        for (_, h) in &mut self.hists {
            *h = Histogram::new();
        }
    }

    /// Export a name-sorted, mergeable snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries: Vec<(String, MetricValue)> =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + self.hists.len());
        for (n, v) in &self.counters {
            entries.push((n.to_string(), MetricValue::Counter(*v)));
        }
        for (n, v) in &self.gauges {
            entries.push((n.to_string(), MetricValue::Gauge(*v)));
        }
        for (n, h) in &self.hists {
            entries.push((n.to_string(), MetricValue::Histogram(Box::new(h.clone()))));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { entries }
    }
}

/// An immutable, name-sorted export of a registry — the unit that
/// crosses shard boundaries and lands in run manifests. Merging mirrors
/// `WindowStats::merge`: counters superpose exactly, gauges keep peaks,
/// histograms pool. Equality is bitwise (all-integer payloads), which
/// is what the `reset_determinism` family asserts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name, names unique.
    entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// A snapshot with no metrics.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metrics are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .and_then(|i| self.entries.get(i))
            .map(|(_, v)| v)
    }

    /// Counter value by name, if the metric exists and is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name, if the metric exists and is a gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Insert (or merge into) a single metric.
    pub fn insert(&mut self, name: &str, value: MetricValue) {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.entries[i].1.merge(&value),
            Err(i) => self.entries.insert(i, (name.to_string(), value)),
        }
    }

    /// Merge another snapshot in: shared names combine kind-wise
    /// (counters `+`, gauges `max`, histograms pool); names unique to
    /// `other` are adopted as-is.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.entries {
            self.insert(name, value.clone());
        }
    }

    /// Just the counters, as `(name, value)` pairs in name order — the
    /// exactly-superposable subset that the sharded-vs-unsharded
    /// equality gate compares bit-for-bit.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.entries
            .iter()
            .filter_map(|(n, v)| match v {
                MetricValue::Counter(c) => Some((n.clone(), *c)),
                _ => None,
            })
            .collect()
    }

    /// Render as one JSON object keyed by metric name.
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .entries
            .iter()
            .map(|(n, v)| format!("\"{}\":{}", json::escape(n), v.to_json()))
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 1050);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        // zeros → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4..7 → 3; 8 → 4.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 2);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[11], 1);
    }

    #[test]
    fn histogram_merge_equals_pooled_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut pooled = Histogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
            pooled.record(v);
        }
        for v in [0u64, 2, 100] {
            b.record(v);
            pooled.record(v);
        }
        a.merge(&b);
        assert_eq!(a, pooled);
    }

    #[test]
    fn histogram_quantile_is_bucket_resolution() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Value 1 lives in bucket [1, 2) whose upper bound is 2.
        assert_eq!(h.quantile(0.01), 2);
        // Median of 1..=100 sits in bucket [32, 64).
        assert_eq!(h.quantile(0.5), 64);
        assert_eq!(h.quantile(1.0), 128);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn registry_handles_record_and_snapshot_sorts() {
        let mut r = Registry::new();
        let c = r.counter("z.count");
        let g = r.gauge("a.peak");
        let h = r.histogram("m.sizes");
        r.add(c, 3);
        r.add(c, 4);
        r.gauge_max(g, 10);
        r.gauge_max(g, 7);
        r.record(h, 5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.peak", "m.sizes", "z.count"]);
        assert_eq!(snap.counter("z.count"), Some(7));
        assert_eq!(snap.gauge("a.peak"), Some(10));
        assert!(matches!(
            snap.get("m.sizes"),
            Some(MetricValue::Histogram(h)) if h.count() == 1
        ));
    }

    #[test]
    fn duplicate_registration_returns_the_same_handle() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.add(a, 1);
        r.add(b, 1);
        assert_eq!(r.snapshot().counter("x"), Some(2));
    }

    #[test]
    fn reset_restores_the_fresh_snapshot() {
        let mut r = Registry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h");
        let fresh = r.snapshot();
        r.add(c, 5);
        r.gauge_max(g, 9);
        r.record(h, 3);
        assert_ne!(r.snapshot(), fresh);
        r.reset();
        assert_eq!(r.snapshot(), fresh, "reset must be bit-identical");
        // Handles stay valid after reset.
        r.add(c, 1);
        assert_eq!(r.snapshot().counter("c"), Some(1));
    }

    #[test]
    fn snapshot_merge_follows_the_window_discipline() {
        let mut r1 = Registry::new();
        let c1 = r1.counter("events");
        let g1 = r1.gauge("peak");
        let h1 = r1.histogram("sizes");
        r1.add(c1, 10);
        r1.gauge_max(g1, 4);
        r1.record(h1, 2);

        let mut r2 = Registry::new();
        let c2 = r2.counter("events");
        let g2 = r2.gauge("peak");
        let h2 = r2.histogram("sizes");
        let only2 = r2.counter("retries");
        r2.add(c2, 5);
        r2.gauge_max(g2, 9);
        r2.record(h2, 64);
        r2.add(only2, 1);

        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counter("events"), Some(15), "counters superpose");
        assert_eq!(merged.gauge("peak"), Some(9), "gauges keep the peak");
        assert_eq!(merged.counter("retries"), Some(1), "unique names adopted");
        assert!(matches!(
            merged.get("sizes"),
            Some(MetricValue::Histogram(h)) if h.count() == 2
        ));
        // Merge order does not matter for the result.
        let mut other_way = r2.snapshot();
        other_way.merge(&r1.snapshot());
        assert_eq!(merged, other_way);
    }

    #[test]
    fn foreign_handles_are_ignored_not_fatal() {
        let mut issuing = Registry::new();
        let _pad = issuing.counter("a");
        let far = issuing.counter("b");
        let mut other = Registry::new();
        let near = other.counter("only");
        other.add(near, 1);
        other.add(far, 99); // index 1 does not exist in `other`
        assert_eq!(other.snapshot().counter("only"), Some(1));
        assert_eq!(other.snapshot().len(), 1);
    }

    #[test]
    fn snapshot_json_is_sorted_and_typed() {
        let mut r = Registry::new();
        let c = r.counter("b.count");
        r.add(c, 2);
        let g = r.gauge("a.peak");
        r.gauge_set(g, 3);
        let j = r.snapshot().to_json();
        assert!(j.starts_with("{\"a.peak\":{\"type\":\"gauge\",\"value\":3}"));
        assert!(j.contains("\"b.count\":{\"type\":\"counter\",\"value\":2}"));
    }
}
