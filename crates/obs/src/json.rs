//! Minimal JSON rendering helpers shared by snapshots, events, and
//! manifests. Writing only — the workspace's one JSON *parser* lives in
//! `linkpad-bench::compare`, at the other end of the pipe.

/// Escape a string for use inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number. Non-finite values (which JSON
/// cannot represent) render as `null` rather than producing an
/// unparseable document.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest-round-trip float formatting; always contains
        // a '.' or exponent? No — integers print bare ("3"), which is
        // still a valid JSON number.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn num_renders_null_for_non_finite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
