//! Causal event tracing: bounded, deterministic per-event records with
//! scheduler provenance, plus timeline/flamegraph exporters.
//!
//! Where [`crate::profile`] answers *how many* (dispatch counters,
//! batch-size histograms, queue depth), this module answers *why*: every
//! traced dispatch records which earlier event scheduled it (the
//! **parent event id**, threaded through the engine's scheduler), so a
//! trace is a causal forest over the run — timer chains, delivery
//! cascades, same-instant batches — rather than a flat event count.
//!
//! The recorder obeys the same determinism contract as the rest of the
//! deterministic side of this crate:
//!
//! * record content is sim-time only — sequence numbers, simulated
//!   nanoseconds, node ids, batch sizes. No wall clock exists in this
//!   module (`DET_WALLCLOCK` enforces it), so a trace is a pure function
//!   of `(spec, seed)` and replays bit-for-bit across `reset(seed)` and
//!   fresh builds.
//! * memory is bounded by construction: records live in a decimating
//!   ring ([`TRACE_CAP`]) that halves itself and doubles its sampling
//!   stride when full — the [`crate::profile::EngineProfile`] depth-series
//!   discipline — and the pending-provenance map is bounded by the
//!   number of *pending* events (entries retire when their event fires).
//!
//! Two exporters turn a [`TraceReport`] into standard tooling formats:
//! Chrome trace-event JSON ([`TraceReport::chrome_trace_json`], loadable
//! in Perfetto / `chrome://tracing`, one track per node, sim-time mapped
//! to microseconds) and collapsed causal stacks
//! ([`TraceReport::collapsed_stacks`], the `inferno`/`flamegraph.pl`
//! input format, with the parent chain standing in for a call stack).

use std::collections::BTreeMap;

/// Sentinel parent id for events with no recorded scheduler: roots
/// (scheduled by `on_start` or before tracing was enabled) and events
/// whose birth predates the recorder.
pub const NO_PARENT: u64 = u64::MAX;

/// Records kept before the ring decimates 2:1 and doubles its stride.
pub const TRACE_CAP: usize = 16_384;

/// What kind of dispatch a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A timer firing on its node.
    Timer,
    /// A packet delivery (possibly a same-instant batch).
    Deliver,
}

impl TraceEventKind {
    /// Stable lowercase name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Timer => "timer",
            TraceEventKind::Deliver => "deliver",
        }
    }
}

/// One traced dispatch. All fields are simulation-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// The event's global scheduling sequence number (unique per run).
    pub seq: u64,
    /// Sequence number of the event whose handler scheduled this one,
    /// or [`NO_PARENT`]. A batched delivery's children attribute to the
    /// batch head.
    pub parent: u64,
    /// Simulated time of the dispatch, nanoseconds.
    pub sim_nanos: u64,
    /// Target node index.
    pub node: u32,
    /// Timer or delivery.
    pub kind: TraceEventKind,
    /// Events consumed by this dispatch (>1 for same-instant delivery
    /// batches; the batched events do not get records of their own).
    pub batch: u32,
}

/// Opt-in causal trace recorder, held by the engine as
/// `Option<Box<TraceRecorder>>` so the disabled case costs one pointer
/// of state and one predictable branch per run call.
///
/// The engine drives it with three calls per dispatch: [`birth`]
/// (provenance of every event scheduled while tracing), [`absorb`]
/// (retire a batched event consumed without its own record), and
/// [`dispatched`] (emit the record).
///
/// [`birth`]: TraceRecorder::birth
/// [`absorb`]: TraceRecorder::absorb
/// [`dispatched`]: TraceRecorder::dispatched
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecorder {
    /// Decimating ring of records: every `stride`-th dispatch.
    records: Vec<TraceRecord>,
    /// Pending provenance: child seq → parent seq, inserted at schedule
    /// time and removed when the child fires — bounded by the pending
    /// event population, not the run length.
    parents: BTreeMap<u64, u64>,
    /// Node labels indexed by node id, captured at enable time.
    node_labels: Vec<String>,
    /// Current sampling stride: a dispatch is recorded when its index
    /// is a multiple of this. Starts at 1 (record everything), doubles
    /// on each ring decimation.
    stride: u64,
    /// Total dispatches seen (recorded or not).
    dispatched: u64,
}

impl TraceRecorder {
    /// A fresh recorder. `node_labels[i]` names node `i` (from
    /// [`Node::label`]); the exporters use it for track and frame names.
    ///
    /// [`Node::label`]: ../../linkpad_sim/node/trait.Node.html
    pub fn new(node_labels: Vec<String>) -> Self {
        Self {
            records: Vec::new(),
            parents: BTreeMap::new(),
            node_labels,
            stride: 1,
            dispatched: 0,
        }
    }

    /// Re-zero everything except the node labels (the topology is
    /// unchanged across [`reset`]-style replays), so a reset-then-run
    /// trace is bit-identical to a fresh-enable-then-run trace.
    ///
    /// [`reset`]: ../../linkpad_sim/engine/struct.Sim.html#method.reset
    pub fn reset(&mut self) {
        self.records.clear();
        self.parents.clear();
        self.stride = 1;
        self.dispatched = 0;
    }

    /// Register the provenance of a freshly scheduled event: `child`
    /// was scheduled while event `parent` (or [`NO_PARENT`]) was being
    /// dispatched.
    pub fn birth(&mut self, child: u64, parent: u64) {
        self.parents.insert(child, parent);
    }

    /// Retire a batched event consumed without a record of its own (a
    /// same-instant delivery folded into the batch head's dispatch).
    /// Keeps the provenance map bounded by the pending population.
    pub fn absorb(&mut self, seq: u64) {
        self.parents.remove(&seq);
    }

    /// Fold one dispatch into the trace: resolve and retire the event's
    /// provenance, and append a record when the sampling stride is due.
    pub fn dispatched(
        &mut self,
        seq: u64,
        sim_nanos: u64,
        node: u32,
        kind: TraceEventKind,
        batch: u32,
    ) {
        let parent = self.parents.remove(&seq).unwrap_or(NO_PARENT);
        let index = self.dispatched;
        self.dispatched += 1;
        if !index.is_multiple_of(self.stride) {
            return;
        }
        self.records.push(TraceRecord {
            seq,
            parent,
            sim_nanos,
            node,
            kind,
            batch,
        });
        if self.records.len() >= TRACE_CAP {
            // Keep every other record (indices 0, 2, 4, … — multiples
            // of the doubled stride) and halve the sampling rate, so
            // the ring stays bounded and the kept set is exactly what
            // recording at the new stride from the start would have
            // kept. Same discipline as the profile's depth series.
            let mut keep = 0u64;
            self.records.retain(|_| {
                keep += 1;
                keep % 2 == 1
            });
            self.stride *= 2;
        }
    }

    /// Snapshot the trace accumulated so far.
    pub fn report(&self) -> TraceReport {
        TraceReport {
            records: self.records.clone(),
            node_labels: self.node_labels.clone(),
            stride: self.stride,
            dispatched: self.dispatched,
        }
    }
}

/// An immutable trace snapshot: the recorded dispatches plus the
/// context the exporters need. Bit-identical across `reset(seed)`
/// replays and fresh builds (pinned by `metrics_determinism.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Recorded dispatches, in dispatch order.
    pub records: Vec<TraceRecord>,
    /// Node labels indexed by node id.
    pub node_labels: Vec<String>,
    /// Final sampling stride: records are every `stride`-th dispatch.
    pub stride: u64,
    /// Total dispatches the recorder saw (recorded or not).
    pub dispatched: u64,
}

/// Frames deeper than this are folded into a `[deep]` root marker —
/// timer re-arm chains make causal chains as long as the run, and a
/// thousand-frame stack defeats the point of a flamegraph.
const MAX_CHAIN: usize = 32;

impl TraceReport {
    /// Label of node `id`, or a stable placeholder for ids outside the
    /// captured table.
    fn label(&self, id: u32) -> &str {
        self.node_labels
            .get(id as usize)
            .map_or("node", String::as_str)
    }

    /// Render the trace as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in Perfetto and
    /// `chrome://tracing`.
    ///
    /// Mapping: one process (`pid` 0), one thread **per node** (`tid` =
    /// node id, named `node<id> <label>` via `thread_name` metadata),
    /// each dispatch an instant event (`ph: "i"`, thread scope) whose
    /// `ts` is the simulated time in microseconds (fractional — sim
    /// nanoseconds / 1000) and whose `args` carry the sequence number,
    /// parent id (omitted for roots), and batch size. The output uses
    /// only the JSON subset `linkpad-bench`'s mini parser accepts, and a
    /// round-trip test there holds this exporter to it.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.records.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
        // Track names: one metadata record per node that appears.
        let mut nodes: Vec<u32> = self.records.iter().map(|r| r.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        for node in nodes {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{node},\
                 \"args\":{{\"name\":\"node{node} {}\"}}}}",
                crate::json::escape(self.label(node))
            ));
        }
        for r in &self.records {
            sep(&mut out);
            let ts_us = r.sim_nanos / 1_000;
            let ts_frac = r.sim_nanos % 1_000;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{ts_us}.{ts_frac:03},\"pid\":0,\"tid\":{},\"args\":{{\"seq\":{}",
                crate::json::escape(self.label(r.node)),
                r.kind.name(),
                r.node,
                r.seq,
            ));
            if r.parent != NO_PARENT {
                out.push_str(&format!(",\"parent\":{}", r.parent));
            }
            out.push_str(&format!(",\"batch\":{}}}}}", r.batch));
        }
        out.push_str("]}");
        out
    }

    /// Render the causal chains as collapsed stacks (`frame;frame;…
    /// weight` lines, the flamegraph-tool input format): each record
    /// contributes its parent chain as the "stack", weighted by its
    /// batch size. Chains whose ancestors were decimated out of the
    /// ring start at a `[truncated]` root; chains deeper than
    /// [`MAX_CHAIN`] fold into `[deep]`. Identical stacks aggregate;
    /// lines are emitted in lexicographic order (deterministic).
    pub fn collapsed_stacks(&self) -> String {
        let by_seq: BTreeMap<u64, &TraceRecord> = self.records.iter().map(|r| (r.seq, r)).collect();
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for r in &self.records {
            let mut frames = Vec::new();
            let mut cur = Some(r);
            while let Some(rec) = cur {
                frames.push(format!("{}:{}", self.label(rec.node), rec.kind.name()));
                if frames.len() >= MAX_CHAIN {
                    frames.push("[deep]".to_string());
                    break;
                }
                cur = match rec.parent {
                    NO_PARENT => None,
                    p => match by_seq.get(&p) {
                        Some(parent) => Some(parent),
                        None => {
                            // The ancestor fired between recorded
                            // strides: the chain is real but its root
                            // was decimated.
                            frames.push("[truncated]".to_string());
                            None
                        }
                    },
                };
            }
            frames.reverse();
            *stacks.entry(frames.join(";")).or_insert(0) += u64::from(r.batch);
        }
        let mut out = String::new();
        for (stack, weight) in stacks {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder() -> TraceRecorder {
        TraceRecorder::new(vec!["ticker".to_string(), "sink".to_string()])
    }

    #[test]
    fn provenance_resolves_and_retires() {
        let mut t = recorder();
        t.birth(5, NO_PARENT);
        t.dispatched(5, 100, 0, TraceEventKind::Timer, 1);
        // The timer's handler scheduled 6 and 7; 7 rides in 6's batch.
        t.birth(6, 5);
        t.birth(7, 5);
        t.absorb(7);
        t.dispatched(6, 100, 1, TraceEventKind::Deliver, 2);
        let report = t.report();
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.records[0].parent, NO_PARENT);
        assert_eq!(report.records[1].parent, 5);
        assert_eq!(report.records[1].batch, 2);
        assert!(t.parents.is_empty(), "all provenance retired");
    }

    #[test]
    fn unknown_birth_reads_as_root() {
        let mut t = recorder();
        t.dispatched(9, 50, 0, TraceEventKind::Timer, 1);
        assert_eq!(t.report().records[0].parent, NO_PARENT);
    }

    #[test]
    fn ring_decimates_and_doubles_stride() {
        let mut t = recorder();
        for seq in 0..(2 * TRACE_CAP as u64) {
            t.dispatched(seq, seq, 0, TraceEventKind::Timer, 1);
        }
        let report = t.report();
        assert!(report.records.len() <= TRACE_CAP);
        assert!(report.stride > 1, "cap must force decimation");
        assert_eq!(report.dispatched, 2 * TRACE_CAP as u64);
        // Kept records are exactly the multiples of the final stride
        // (dispatch index == seq here).
        assert!(report
            .records
            .iter()
            .enumerate()
            .all(|(i, r)| r.seq == i as u64 * report.stride));
    }

    #[test]
    fn reset_keeps_labels_and_clears_state() {
        let mut t = recorder();
        t.birth(1, NO_PARENT);
        t.dispatched(1, 10, 0, TraceEventKind::Timer, 1);
        t.reset();
        let report = t.report();
        assert!(report.records.is_empty());
        assert_eq!(report.dispatched, 0);
        assert_eq!(report.stride, 1);
        assert_eq!(report.node_labels, vec!["ticker", "sink"]);
    }

    #[test]
    fn chrome_trace_has_tracks_and_provenance_args() {
        let mut t = recorder();
        t.dispatched(0, 1_500, 0, TraceEventKind::Timer, 1);
        t.birth(1, 0);
        t.dispatched(1, 2_500, 1, TraceEventKind::Deliver, 3);
        let json = t.report().chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"node0 ticker\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"ts\":2.500"));
        assert!(json.contains("\"parent\":0"));
        assert!(json.contains("\"batch\":3"));
        // Roots omit the parent key entirely.
        assert!(!json.contains("\"parent\":18446744073709551615"));
    }

    #[test]
    fn collapsed_stacks_walk_chains_and_aggregate() {
        let mut t = recorder();
        t.dispatched(0, 0, 0, TraceEventKind::Timer, 1);
        t.birth(1, 0);
        t.dispatched(1, 10, 1, TraceEventKind::Deliver, 1);
        t.birth(2, 0);
        t.dispatched(2, 20, 1, TraceEventKind::Deliver, 1);
        let out = t.report().collapsed_stacks();
        assert!(out.contains("ticker:timer 1\n"), "{out}");
        assert!(out.contains("ticker:timer;sink:deliver 2\n"), "{out}");
    }

    #[test]
    fn decimated_ancestors_truncate_the_chain() {
        let mut t = recorder();
        t.birth(1, 999); // parent never recorded
        t.dispatched(1, 10, 1, TraceEventKind::Deliver, 1);
        let out = t.report().collapsed_stacks();
        assert_eq!(out, "[truncated];sink:deliver 1\n");
    }
}
