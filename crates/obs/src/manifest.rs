//! Machine-readable run manifests.
//!
//! A manifest is the one-file answer to "what did this run do": seed,
//! spec digest, totals, per-shard breakdown, the merged metric
//! snapshot, and — crucially — an explicit `interrupted` flag with the
//! truncation point when a watchdog cut the run short. Before this
//! existed, a truncated sharded run looked exactly like a complete one
//! unless the caller thought to check `ShardedRun::interrupted()`;
//! the manifest makes partial results impossible to mistake for full
//! ones.
//!
//! Schema is versioned (`linkpad-run-manifest-v1`) and rendered with
//! the same hand-rolled JSON writer as everything else in this crate,
//! so `bench_compare`'s parser can read it back.

use crate::json::{escape, num};
use crate::metrics::Snapshot;
use crate::profile::ProfileReport;

/// Schema tag embedded in every manifest.
pub const MANIFEST_SCHEMA: &str = "linkpad-run-manifest-v1";

/// Where a watchdog-truncated run was cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncation {
    /// Complete merged windows retained.
    pub complete_windows: usize,
    /// Lowest-indexed shard whose watchdog tripped.
    pub first_tripped_shard: usize,
    /// Sim time (nanoseconds) that shard had reached when it tripped.
    pub sim_nanos: u64,
}

/// Per-shard slice of a run manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// Shard index.
    pub shard: usize,
    /// First flow id owned by this shard.
    pub flow_start: usize,
    /// Number of flows owned by this shard.
    pub flow_count: usize,
    /// Events this shard's sim processed.
    pub events: u64,
    /// Arrivals this shard's observer recorded.
    pub arrivals: u64,
    /// Complete observer windows this shard produced.
    pub windows: usize,
    /// Peak pending events sampled in this shard's sim.
    pub pending_peak: usize,
    /// Whether this shard's watchdog tripped.
    pub interrupted: bool,
    /// Engine self-profile, when the run enabled profiling.
    pub profile: Option<ProfileReport>,
}

impl ShardManifest {
    fn to_json(&self) -> String {
        let profile = match &self.profile {
            Some(p) => format!(",\"profile\":{}", p.to_json()),
            None => String::new(),
        };
        format!(
            "{{\"shard\":{},\"flow_start\":{},\"flow_count\":{},\"events\":{},\
             \"arrivals\":{},\"windows\":{},\"pending_peak\":{},\"interrupted\":{}{}}}",
            self.shard,
            self.flow_start,
            self.flow_count,
            self.events,
            self.arrivals,
            self.windows,
            self.pending_peak,
            self.interrupted,
            profile,
        )
    }
}

/// Machine-readable summary of one run, written next to figures and CI
/// artifacts via `--report <path>`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Binary (or scenario) that produced the run, e.g. `fig_million_flows`.
    pub bin: String,
    /// Base seed of the run.
    pub seed: u64,
    /// FNV-1a digest of the scenario spec, formatted `fnv1a:<hex>`.
    pub spec_digest: String,
    /// Whether any shard was watchdog-interrupted — if `true`, every
    /// aggregate below is a **prefix**, not a full-run total.
    pub interrupted: bool,
    /// Truncation point when `interrupted`.
    pub truncation: Option<Truncation>,
    /// Wall-clock duration of the run, measured by the harness.
    pub wall_secs: f64,
    /// Total events across all shard sims.
    pub events: u64,
    /// Total observed arrivals.
    pub arrivals: u64,
    /// Complete merged windows.
    pub windows: usize,
    /// Maximum per-shard pending peak.
    pub peak_pending: usize,
    /// Per-shard breakdown.
    pub shards: Vec<ShardManifest>,
    /// Merged metric snapshot (counters superposed across shards).
    pub metrics: Snapshot,
}

impl RunManifest {
    /// Render the manifest as a JSON object.
    pub fn to_json(&self) -> String {
        let truncation = match &self.truncation {
            Some(t) => format!(
                "{{\"complete_windows\":{},\"first_tripped_shard\":{},\"sim_nanos\":{}}}",
                t.complete_windows, t.first_tripped_shard, t.sim_nanos
            ),
            None => "null".to_string(),
        };
        let shards: Vec<String> = self.shards.iter().map(|s| s.to_json()).collect();
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"bin\": \"{}\",\n  \"seed\": {},\n  \
             \"spec_digest\": \"{}\",\n  \"interrupted\": {},\n  \"truncation\": {},\n  \
             \"wall_secs\": {},\n  \"events\": {},\n  \"arrivals\": {},\n  \
             \"windows\": {},\n  \"peak_pending\": {},\n  \"shards\": [{}],\n  \
             \"metrics\": {}\n}}\n",
            MANIFEST_SCHEMA,
            escape(&self.bin),
            self.seed,
            escape(&self.spec_digest),
            self.interrupted,
            truncation,
            num(self.wall_secs),
            self.events,
            self.arrivals,
            self.windows,
            self.peak_pending,
            shards.join(","),
            self.metrics.to_json(),
        )
    }

    /// Write the manifest to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> RunManifest {
        let mut reg = Registry::new();
        let c = reg.counter("trunk.arrivals");
        reg.add(c, 42);
        RunManifest {
            bin: "fig_test".to_string(),
            seed: 977,
            spec_digest: format!("fnv1a:{:016x}", crate::fnv1a(b"spec")),
            interrupted: false,
            truncation: None,
            wall_secs: 1.25,
            events: 100,
            arrivals: 42,
            windows: 5,
            peak_pending: 7,
            shards: vec![ShardManifest {
                shard: 0,
                flow_start: 0,
                flow_count: 10,
                events: 100,
                arrivals: 42,
                windows: 5,
                pending_peak: 7,
                interrupted: false,
                profile: None,
            }],
            metrics: reg.snapshot(),
        }
    }

    #[test]
    fn manifest_renders_schema_and_totals() {
        let j = sample().to_json();
        assert!(j.contains("\"schema\": \"linkpad-run-manifest-v1\""));
        assert!(j.contains("\"seed\": 977"));
        assert!(j.contains("\"interrupted\": false"));
        assert!(j.contains("\"truncation\": null"));
        assert!(j.contains("\"trunk.arrivals\""));
        assert!(j.contains("\"shard\":0"));
    }

    #[test]
    fn truncated_manifest_carries_the_cut_point() {
        let mut m = sample();
        m.interrupted = true;
        m.truncation = Some(Truncation {
            complete_windows: 3,
            first_tripped_shard: 1,
            sim_nanos: 600_000_000,
        });
        let j = m.to_json();
        assert!(j.contains("\"interrupted\": true"));
        assert!(j.contains("\"complete_windows\":3"));
        assert!(j.contains("\"sim_nanos\":600000000"));
    }

    #[test]
    fn manifest_roundtrips_through_a_file() {
        let dir = std::env::temp_dir().join("linkpad-obs-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let m = sample();
        m.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, m.to_json());
        let _ = std::fs::remove_file(&path);
    }
}
