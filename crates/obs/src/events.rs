//! Structured harness event log: shard lifecycle, watchdog
//! truncations, fault-plan activations, observer gap windows.
//!
//! Events are a *harness boundary* artifact — they describe what the
//! coordinator did about a run (spawned a shard, retried a panic,
//! truncated on watchdog), not what happened inside the simulation.
//! That is why each record carries a wall-clock offset: a shard retry
//! is a wall-clock phenomenon, and the JSONL file is read next to CI
//! logs. Sim-time quantities inside events (truncation points, window
//! indices) remain deterministic; only the `wall_secs` column varies
//! between runs.
//!
//! The log serializes as JSON Lines — one event per line — so it can be
//! tailed, grepped, and uploaded as a CI artifact without a parser. The
//! first line is always a schema header record
//! (`{"schema":"<`[`EVENTS_SCHEMA`]`>"}`), mirroring the versioned
//! manifests and bench-compare verdicts, so downstream tooling can
//! reject a log whose field layout it does not understand.

use crate::json::{escape, num};
use std::time::Instant;

/// Schema tag stamped as the first line of every JSONL rendering. Bump
/// when an event variant's field layout changes incompatibly.
pub const EVENTS_SCHEMA: &str = "linkpad-harness-events-v1";

/// One harness lifecycle event. Variants carry only plain data so the
/// log can be emitted from the sharded coordinator without touching
/// worker threads (the coordinator observes results in shard order —
/// the log is deterministic apart from its wall-clock column).
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessEvent {
    /// A sharded (or single) run began.
    RunStart {
        /// Base seed of the run.
        seed: u64,
        /// Number of shards (1 for unsharded runs).
        shards: usize,
        /// Total flow population.
        flows: usize,
    },
    /// A fault plan is armed for this run.
    FaultPlanActive {
        /// Human-readable plan summary.
        summary: String,
    },
    /// A shard completed (possibly after a retry).
    ShardFinished {
        /// Shard index.
        shard: usize,
        /// Events the shard's sim processed.
        events: u64,
        /// Arrivals the shard's observer recorded.
        arrivals: u64,
        /// Complete observer windows the shard produced.
        windows: usize,
        /// Whether the shard's watchdog tripped.
        interrupted: bool,
    },
    /// A shard panicked on its first attempt.
    ShardPanicked {
        /// Shard index.
        shard: usize,
        /// Panic payload rendered as text.
        cause: String,
    },
    /// A panicked shard was re-run on a fresh scenario and succeeded.
    ShardRetried {
        /// Shard index.
        shard: usize,
    },
    /// The run was truncated because at least one shard's watchdog
    /// tripped. This is the prominent record of a partial result:
    /// downstream readers must treat the merged series as a prefix.
    WatchdogTruncation {
        /// Complete windows retained after truncation.
        complete_windows: usize,
        /// Windows dropped from the longest shard.
        dropped: usize,
        /// Lowest-indexed shard that tripped.
        first_tripped_shard: usize,
        /// Sim time (nanoseconds) the first tripped shard had reached.
        sim_nanos: u64,
    },
    /// A merged observer window had coverage below 1.0 (an observer
    /// outage overlapped it).
    ObserverGap {
        /// Window index in the merged series.
        window: usize,
        /// Fraction of the window the observer was up, in [0, 1].
        coverage: f64,
    },
    /// The run finished; totals are post-merge.
    RunFinished {
        /// Total events across all shard sims.
        events: u64,
        /// Total observed arrivals.
        arrivals: u64,
        /// Complete merged windows.
        windows: usize,
        /// Whether any shard was interrupted.
        interrupted: bool,
    },
}

impl HarnessEvent {
    /// Short machine-stable kind tag (`"run_start"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            HarnessEvent::RunStart { .. } => "run_start",
            HarnessEvent::FaultPlanActive { .. } => "fault_plan_active",
            HarnessEvent::ShardFinished { .. } => "shard_finished",
            HarnessEvent::ShardPanicked { .. } => "shard_panicked",
            HarnessEvent::ShardRetried { .. } => "shard_retried",
            HarnessEvent::WatchdogTruncation { .. } => "watchdog_truncation",
            HarnessEvent::ObserverGap { .. } => "observer_gap",
            HarnessEvent::RunFinished { .. } => "run_finished",
        }
    }

    /// Render the variant's payload fields as JSON object members
    /// (without braces), or an empty string for payload-free variants.
    fn payload_json(&self) -> String {
        match self {
            HarnessEvent::RunStart {
                seed,
                shards,
                flows,
            } => {
                format!("\"seed\":{seed},\"shards\":{shards},\"flows\":{flows}")
            }
            HarnessEvent::FaultPlanActive { summary } => {
                format!("\"summary\":\"{}\"", escape(summary))
            }
            HarnessEvent::ShardFinished {
                shard,
                events,
                arrivals,
                windows,
                interrupted,
            } => format!(
                "\"shard\":{shard},\"events\":{events},\"arrivals\":{arrivals},\
                 \"windows\":{windows},\"interrupted\":{interrupted}"
            ),
            HarnessEvent::ShardPanicked { shard, cause } => {
                format!("\"shard\":{shard},\"cause\":\"{}\"", escape(cause))
            }
            HarnessEvent::ShardRetried { shard } => format!("\"shard\":{shard}"),
            HarnessEvent::WatchdogTruncation {
                complete_windows,
                dropped,
                first_tripped_shard,
                sim_nanos,
            } => format!(
                "\"complete_windows\":{complete_windows},\"dropped\":{dropped},\
                 \"first_tripped_shard\":{first_tripped_shard},\"sim_nanos\":{sim_nanos}"
            ),
            HarnessEvent::ObserverGap { window, coverage } => {
                format!("\"window\":{window},\"coverage\":{}", num(*coverage))
            }
            HarnessEvent::RunFinished {
                events,
                arrivals,
                windows,
                interrupted,
            } => format!(
                "\"events\":{events},\"arrivals\":{arrivals},\
                 \"windows\":{windows},\"interrupted\":{interrupted}"
            ),
        }
    }
}

/// Append-only harness event log with wall-clock offsets from its
/// creation instant.
#[derive(Debug)]
pub struct EventLog {
    // Harness-boundary wall clock: event logs time-stamp coordinator
    // actions (retries, truncations) relative to run start. Sim-side
    // telemetry never touches this; see the module docs and the
    // DET_WALLCLOCK allowlist entry for this file.
    t0: Instant,
    entries: Vec<(f64, HarnessEvent)>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl EventLog {
    /// Empty log; wall offsets are measured from this call.
    pub fn new() -> Self {
        Self {
            t0: Instant::now(),
            entries: Vec::new(),
        }
    }

    /// Append an event stamped with the current wall offset.
    pub fn emit(&mut self, event: HarnessEvent) {
        let wall = self.t0.elapsed().as_secs_f64();
        self.entries.push((wall, event));
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate events in emission order (with wall offsets).
    pub fn iter(&self) -> impl Iterator<Item = &(f64, HarnessEvent)> {
        self.entries.iter()
    }

    /// Render as JSON Lines: a schema header record first, then one
    /// `{"wall_secs":…,"kind":…,…}` object per line, in emission order.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!("{{\"schema\":\"{EVENTS_SCHEMA}\"}}\n");
        for (wall, event) in &self.entries {
            out.push_str(&format!(
                "{{\"wall_secs\":{},\"kind\":\"{}\"",
                num(*wall),
                event.kind()
            ));
            let payload = event.payload_json();
            if !payload.is_empty() {
                out.push(',');
                out.push_str(&payload);
            }
            out.push_str("}\n");
        }
        out
    }

    /// Write the JSONL rendering to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_one_json_object_per_line() {
        let mut log = EventLog::new();
        log.emit(HarnessEvent::RunStart {
            seed: 7,
            shards: 2,
            flows: 100,
        });
        log.emit(HarnessEvent::ShardPanicked {
            shard: 1,
            cause: "boom \"quoted\"".to_string(),
        });
        log.emit(HarnessEvent::RunFinished {
            events: 10,
            arrivals: 5,
            windows: 3,
            interrupted: false,
        });
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4, "schema header + 3 events");
        assert_eq!(lines[0], "{\"schema\":\"linkpad-harness-events-v1\"}");
        assert!(lines[1].contains("\"kind\":\"run_start\""));
        assert!(lines[1].contains("\"seed\":7"));
        assert!(lines[2].contains("\"cause\":\"boom \\\"quoted\\\"\""));
        assert!(lines[3].contains("\"interrupted\":false"));
        for line in &lines[1..] {
            assert!(line.starts_with("{\"wall_secs\":"));
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn empty_log_still_stamps_its_schema() {
        let log = EventLog::new();
        assert_eq!(
            log.to_jsonl(),
            format!("{{\"schema\":\"{EVENTS_SCHEMA}\"}}\n")
        );
    }

    #[test]
    fn truncation_event_carries_the_cut_point() {
        let e = HarnessEvent::WatchdogTruncation {
            complete_windows: 4,
            dropped: 2,
            first_tripped_shard: 1,
            sim_nanos: 900_000_000,
        };
        assert_eq!(e.kind(), "watchdog_truncation");
        let p = e.payload_json();
        assert!(p.contains("\"complete_windows\":4"));
        assert!(p.contains("\"sim_nanos\":900000000"));
    }

    #[test]
    fn wall_offsets_are_monotone() {
        let mut log = EventLog::new();
        for i in 0..5 {
            log.emit(HarnessEvent::ShardRetried { shard: i });
        }
        let walls: Vec<f64> = log.iter().map(|(w, _)| *w).collect();
        assert!(walls.windows(2).all(|w| w[0] <= w[1]));
    }
}
