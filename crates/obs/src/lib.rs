//! Deterministic run telemetry for the linkpad workspace.
//!
//! Everything the stack can observe about a run — engine self-profiling,
//! workload counters, harness lifecycle events, machine-readable run
//! manifests — flows through this crate. It is deliberately
//! **dependency-free** and split along the determinism boundary:
//!
//! * [`metrics`] and [`profile`] are the deterministic core. Values are
//!   integers, sim-time-stamped (`u64` nanoseconds of *simulated* time),
//!   and snapshots merge with the same discipline as the observer's
//!   window series (counters superpose, gauges take peaks, histograms
//!   pool bucket-wise) — so a snapshot is a pure function of
//!   `(spec, seed)` and is compared bit-for-bit by the determinism
//!   tests. No wall clock exists in these modules; `linkpad-lint`'s
//!   DET_WALLCLOCK rule enforces that.
//! * [`trace`] extends the deterministic core with *causality*: an
//!   opt-in bounded recorder whose records carry the **parent event
//!   id** threaded through the engine's scheduler, plus Perfetto /
//!   flamegraph exporters. Traces replay bit-for-bit like snapshots.
//! * [`events`] and [`manifest`] are the harness boundary. Lifecycle
//!   events carry wall-clock stamps (a shard retry *is* a wall-clock
//!   phenomenon) and manifests record wall time measured by the caller;
//!   both serialize to JSON for CI artifacts and downstream tooling.
//!   The one `Instant` lives in [`events`] behind an individually
//!   justified lint allowlist entry.
//!
//! The zero-cost contract: a simulation that never installs a profile
//! or sink pays one predictable branch per run call and nothing per
//! event — asserted <1 % in `perf_baseline` alongside the fault-hook
//! gate. See DESIGN.md §Observability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use events::{EventLog, HarnessEvent};
pub use manifest::{RunManifest, ShardManifest, Truncation};
pub use metrics::{CounterId, GaugeId, HistId, Histogram, MetricValue, Registry, Snapshot};
pub use profile::{DepthSample, EngineProfile, ProfileReport, StoreCounters};
pub use trace::{TraceEventKind, TraceRecord, TraceRecorder, TraceReport, NO_PARENT};

/// FNV-1a 64-bit hash — the spec-digest primitive for run manifests.
/// Stable across platforms and releases (it is pure arithmetic), so two
/// manifests with equal digests ran byte-identical specs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
