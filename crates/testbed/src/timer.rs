//! Precision waiting on the monotonic clock.
//!
//! `thread::sleep` alone typically overshoots by the scheduler quantum
//! (1–4 ms on stock kernels) — useless for a 10 ms padding timer whose
//! security-relevant jitter is microseconds. The paper used TimeSys
//! Linux/RT for the same reason. The classic user-space substitute is
//! hybrid waiting: sleep until shortly before the deadline, then spin on
//! `Instant::now()` for the final stretch.

use std::time::{Duration, Instant};

/// How long before the deadline to switch from sleeping to spinning.
/// Generous enough to absorb a stock scheduler's wake-up latency.
pub const DEFAULT_SPIN_WINDOW: Duration = Duration::from_micros(800);

/// Block until `deadline` (monotonic). Returns the overshoot (how late
/// the wait actually returned).
///
/// Deadlines in the past return immediately with their (positive)
/// lateness.
pub fn sleep_until(deadline: Instant) -> Duration {
    sleep_until_with_window(deadline, DEFAULT_SPIN_WINDOW)
}

/// [`sleep_until`] with an explicit spin window.
pub fn sleep_until_with_window(deadline: Instant, spin_window: Duration) -> Duration {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return now - deadline;
        }
        let remaining = deadline - now;
        if remaining > spin_window {
            std::thread::sleep(remaining - spin_window);
        } else {
            // Spin: yield keeps us polite on loaded CI boxes while
            // still waking within a few µs on an idle core.
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn past_deadline_returns_immediately() {
        let d = Instant::now() - Duration::from_millis(5);
        let overshoot = sleep_until(d);
        assert!(overshoot >= Duration::from_millis(5));
    }

    #[test]
    fn wait_reaches_the_deadline() {
        let start = Instant::now();
        let d = start + Duration::from_millis(5);
        let overshoot = sleep_until(d);
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(5),
            "woke early: {elapsed:?}"
        );
        // Loose ceiling: CI boxes can be noisy, but 5 ms must not
        // become 50 ms.
        assert!(elapsed < Duration::from_millis(50), "elapsed {elapsed:?}");
        assert!(overshoot < Duration::from_millis(45));
    }

    #[test]
    fn spin_window_larger_than_wait_still_works() {
        let d = Instant::now() + Duration::from_micros(100);
        let overshoot = sleep_until_with_window(d, Duration::from_millis(10));
        assert!(overshoot < Duration::from_millis(10));
    }

    #[test]
    fn repeated_ticks_have_low_drift_on_average() {
        // 20 ticks of 2 ms: average period must stay within 25% of the
        // target even on a busy machine (absolute schedule → no drift
        // accumulation).
        let period = Duration::from_millis(2);
        let start = Instant::now();
        let mut stamps = Vec::with_capacity(21);
        for i in 1..=20u32 {
            sleep_until(start + period * i);
            stamps.push(Instant::now());
        }
        let total = stamps.last().unwrap().duration_since(start);
        let mean_period = total / 20;
        let err = mean_period.abs_diff(period);
        assert!(
            err < period / 4,
            "mean period {mean_period:?} vs target {period:?}"
        );
    }
}
