//! The live padded link: three real threads and two channel wires.
//!
//! ```text
//! [payload generator] --ch--> [gateway: timer + queue + dummy fill]
//!                                   --wire--> [receiver: tap + strip]
//! ```
//!
//! The gateway thread runs an *absolute* timer schedule (tick *i* at
//! `start + Σ Tⱼ`), exactly like `linkpad_core::gateway` in the
//! simulator, but the per-tick disturbance is whatever the host OS
//! scheduler inflicts instead of a model. The receiver timestamps each
//! frame on arrival (the analyzer position of the paper) and strips
//! dummies.

use crate::timer::sleep_until;
use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use linkpad_core::schedule::PaddingSchedule;
use linkpad_core::wire;
use linkpad_sim::packet::{FlowId, Packet, PacketKind};
use linkpad_sim::time::SimTime;
use linkpad_stats::rng::MasterSeed;
use linkpad_stats::StatsError;
use std::time::{Duration, Instant};

/// Configuration of a live run.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Mean timer period τ, seconds.
    pub tau: f64,
    /// VIT σ_T in seconds; 0 = CIT.
    pub sigma_t: f64,
    /// CBR payload rate, packets/second (0 = no payload, pure padding).
    pub payload_rate: f64,
    /// Fixed padded frame size in bytes.
    pub packet_size: u32,
    /// Number of padded packets to emit.
    pub count: usize,
    /// RNG seed (drives the VIT interval draws).
    pub seed: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            tau: 0.010,
            sigma_t: 0.0,
            payload_rate: 10.0,
            packet_size: 500,
            count: 500,
            seed: 7,
        }
    }
}

/// What a live run produced.
#[derive(Debug, Clone)]
pub struct LiveRunReport {
    /// Receiver-side PIATs, seconds (length = frames − 1).
    pub piats: Vec<f64>,
    /// Payload frames decoded at the receiver.
    pub payload_received: u64,
    /// Dummy frames stripped at the receiver.
    pub dummies_stripped: u64,
    /// Frames that failed to decode (should be 0).
    pub decode_errors: u64,
    /// Wall-clock duration of the capture.
    pub elapsed: Duration,
}

impl LiveRunReport {
    /// Total frames captured.
    pub fn frames(&self) -> u64 {
        self.payload_received + self.dummies_stripped
    }
}

/// Run the live padded link to completion.
///
/// Spawns generator/gateway/receiver threads, waits for `count` frames,
/// and joins everything before returning. Runtime ≈ `count × tau`.
pub fn run_live(config: LiveConfig) -> Result<LiveRunReport, StatsError> {
    if !config.tau.is_finite() || config.tau <= 0.0 {
        return Err(StatsError::NonPositive {
            what: "live tau",
            value: config.tau,
        });
    }
    if config.count == 0 {
        return Err(StatsError::InsufficientData {
            what: "live packet count",
            needed: 1,
            got: 0,
        });
    }
    let schedule = if config.sigma_t > 0.0 {
        PaddingSchedule::vit_truncated_normal(config.tau, config.sigma_t)?
    } else {
        PaddingSchedule::cit(config.tau)?
    };

    // Payload channel: generator → gateway. Bounded so a runaway
    // generator cannot balloon memory; the gateway drains one per tick.
    let (payload_tx, payload_rx) = bounded::<Instant>(1024);
    // Wire: gateway → receiver.
    let (wire_tx, wire_rx) = unbounded::<bytes::Bytes>();

    let start = Instant::now();
    let gen_deadline_count = if config.payload_rate > 0.0 {
        (config.count as f64 * config.tau * config.payload_rate).ceil() as usize
    } else {
        0
    };

    std::thread::scope(|scope| {
        // Payload generator: CBR on an absolute schedule.
        if config.payload_rate > 0.0 {
            let payload_tx = payload_tx.clone();
            let rate = config.payload_rate;
            scope.spawn(move || {
                let gap = Duration::from_secs_f64(1.0 / rate);
                for i in 1..=gen_deadline_count {
                    sleep_until(start + gap * i as u32);
                    // The gateway may already have finished; stop quietly.
                    if payload_tx.send(Instant::now()).is_err() {
                        break;
                    }
                }
            });
        }
        drop(payload_tx);

        // Gateway: the §3.2 algorithm on a real timer.
        let gw = scope.spawn(move || {
            let mut rng = MasterSeed::new(config.seed).stream(0);
            let mut next_deadline =
                start + Duration::from_secs_f64(schedule.next_interval_secs(&mut rng));
            let mut payload_sent = 0u64;
            let mut dummy_sent = 0u64;
            for i in 0..config.count {
                sleep_until(next_deadline);
                let kind = match payload_rx.try_recv() {
                    Ok(_enqueued_at) => {
                        payload_sent += 1;
                        PacketKind::Payload
                    }
                    Err(_) => {
                        dummy_sent += 1;
                        PacketKind::Dummy
                    }
                };
                let pkt = Packet::new(
                    i as u64,
                    FlowId::PADDED,
                    kind,
                    config.packet_size,
                    SimTime::from_nanos(start.elapsed().as_nanos() as u64),
                );
                let frame = wire::encode(&pkt);
                if wire_tx.send(frame).is_err() {
                    break;
                }
                next_deadline += Duration::from_secs_f64(schedule.next_interval_secs(&mut rng));
            }
            drop(wire_tx);
            (payload_sent, dummy_sent)
        });

        // Receiver + analyzer tap: timestamp on arrival, decode, strip.
        let rx = scope.spawn(move || {
            let mut stamps: Vec<Instant> = Vec::with_capacity(config.count);
            let mut payload = 0u64;
            let mut dummies = 0u64;
            let mut errors = 0u64;
            loop {
                match wire_rx.recv_timeout(Duration::from_secs(30)) {
                    Ok(frame) => {
                        stamps.push(Instant::now());
                        match wire::decode(&frame) {
                            Ok(pkt) => match pkt.kind {
                                PacketKind::Payload => payload += 1,
                                PacketKind::Dummy => dummies += 1,
                                PacketKind::Cross => errors += 1,
                            },
                            Err(_) => errors += 1,
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                    Err(RecvTimeoutError::Timeout) => break,
                }
            }
            (stamps, payload, dummies, errors)
        });

        let (_payload_sent, _dummy_sent) = gw.join().expect("gateway thread panicked");
        let (stamps, payload, dummies, errors) = rx.join().expect("receiver thread panicked");
        let piats = stamps
            .windows(2)
            .map(|w| w[1].duration_since(w[0]).as_secs_f64())
            .collect();
        Ok(LiveRunReport {
            piats,
            payload_received: payload,
            dummies_stripped: dummies,
            decode_errors: errors,
            elapsed: start.elapsed(),
        })
    })
}

/// Type used by channel plumbing above; re-exported for doc purposes.
#[allow(dead_code)]
type WireSender = Sender<bytes::Bytes>;
#[allow(dead_code)]
type WireReceiver = Receiver<bytes::Bytes>;

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_stats::moments::{sample_mean, sample_variance};

    // Live tests use a fast 2 ms timer so each stays under a second of
    // wall clock. Assertions are loose: CI schedulers are noisy.

    #[test]
    fn cit_run_produces_expected_frame_count_and_mix() {
        let report = run_live(LiveConfig {
            tau: 0.002,
            sigma_t: 0.0,
            payload_rate: 100.0, // 1 payload per 5 ticks
            count: 250,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(report.frames(), 250);
        assert_eq!(report.decode_errors, 0);
        assert_eq!(report.piats.len(), 249);
        // ~20% payload.
        let frac = report.payload_received as f64 / report.frames() as f64;
        assert!((frac - 0.2).abs() < 0.1, "payload fraction {frac}");
    }

    #[test]
    fn cit_piat_mean_tracks_tau() {
        let report = run_live(LiveConfig {
            tau: 0.002,
            sigma_t: 0.0,
            payload_rate: 0.0,
            count: 300,
            ..Default::default()
        })
        .unwrap();
        let mean = sample_mean(&report.piats).unwrap();
        assert!(
            (mean - 0.002).abs() / 0.002 < 0.2,
            "mean PIAT {mean} vs τ=0.002"
        );
    }

    #[test]
    fn vit_piats_are_much_more_variable_than_cit() {
        let cit = run_live(LiveConfig {
            tau: 0.002,
            sigma_t: 0.0,
            payload_rate: 0.0,
            count: 250,
            ..Default::default()
        })
        .unwrap();
        let vit = run_live(LiveConfig {
            tau: 0.002,
            sigma_t: 0.001,
            payload_rate: 0.0,
            count: 250,
            ..Default::default()
        })
        .unwrap();
        let v_cit = sample_variance(&cit.piats).unwrap();
        let v_vit = sample_variance(&vit.piats).unwrap();
        // σ_T = 1 ms should dominate OS jitter even on noisy CI hosts
        // (loaded single-core containers show ~300+ µs of ambient
        // jitter, i.e. ambient variance above 1e-7).
        assert!(
            v_vit > 4.0 * v_cit,
            "VIT variance {v_vit:e} vs CIT {v_cit:e}"
        );
        // And is in the right ballpark of σ_T².
        assert!(v_vit > 0.25 * 0.001f64.powi(2), "v_vit {v_vit:e}");
    }

    #[test]
    fn invalid_configs_error() {
        assert!(run_live(LiveConfig {
            tau: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(run_live(LiveConfig {
            count: 0,
            ..Default::default()
        })
        .is_err());
    }
}
