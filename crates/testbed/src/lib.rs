//! # linkpad-testbed
//!
//! A real-time, in-process stand-in for the paper's physical testbed
//! (two TimeSys Linux gateways and a hardware network analyzer): real
//! OS threads, real monotonic-clock timers, and channel "wires" carrying
//! the fixed-size encrypted frames of `linkpad_core::wire`.
//!
//! The point of this crate is honesty: the simulator *models* gateway
//! timer jitter; here the jitter is whatever the host OS actually does.
//! The same adversary pipeline (`linkpad-adversary`) runs unchanged on
//! the captured PIATs, so the paper's central claim — CIT padding leaks
//! through timer disturbance, VIT hides it — can be checked against a
//! real scheduler, not just the model. (In-process channels lack a NIC,
//! so the payload-interrupt coupling is weaker than on the paper's
//! hardware; the live examples report whatever the host exhibits.)
//!
//! * [`timer`] — hybrid sleep+spin precision waits on `Instant`.
//! * [`live`] — the three-thread padded link: payload generator →
//!   gateway (CIT/VIT timer, dummy filling) → wire with receiver-side
//!   timestamping tap → receiver (dummy stripping).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod live;
pub mod timer;

pub use live::{run_live, LiveConfig, LiveRunReport};
