//! Gaussian kernel density estimation.
//!
//! Step 2 of the paper's off-line training (§3.3): "the adversary derives
//! the Probability Density Functions (PDF) of the selected statistical
//! feature. As histograms are usually too coarse for the distribution
//! estimation, we assume that the adversary uses the Gaussian kernel
//! estimator of PDF [Silverman 1986]".
//!
//! The estimator is `f̂(x) = (1/(n·h)) Σᵢ φ((x − xᵢ)/h)` with bandwidth
//! `h`; the default bandwidth is Silverman's rule-of-thumb
//! `h = 0.9·min(σ̂, IQR/1.34)·n^{−1/5}`.
//!
//! Evaluation sorts the training points once and then only visits points
//! within `±CUTOFF·h` of the query (binary search + early exit), so
//! classifying a large test set stays fast even with thousands of
//! training features.

use crate::error::StatsError;
use crate::moments::RunningMoments;
use crate::quantiles::quantile_of_sorted;
use crate::Result;

/// Kernel contributions beyond `CUTOFF` standard deviations are below
/// 3.7e-6 of the peak and are skipped during evaluation.
const CUTOFF: f64 = 5.0;

/// A fitted one-dimensional Gaussian KDE.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianKde {
    /// Training points, sorted ascending.
    points: Vec<f64>,
    bandwidth: f64,
}

impl GaussianKde {
    /// Fit with Silverman's rule-of-thumb bandwidth.
    ///
    /// Errors when fewer than two points are given, when any point is
    /// non-finite, or when the data are completely degenerate (zero
    /// spread), in which case a bandwidth cannot be chosen automatically —
    /// use [`GaussianKde::with_bandwidth`] instead.
    pub fn fit(data: &[f64]) -> Result<Self> {
        let h = silverman_bandwidth(data)?;
        Self::with_bandwidth(data, h)
    }

    /// Fit with an explicit bandwidth `h > 0`.
    pub fn with_bandwidth(data: &[f64], bandwidth: f64) -> Result<Self> {
        if data.len() < 2 {
            return Err(StatsError::InsufficientData {
                what: "gaussian kde",
                needed: 2,
                got: data.len(),
            });
        }
        if !bandwidth.is_finite() || bandwidth <= 0.0 {
            return Err(StatsError::NonPositive {
                what: "kde bandwidth",
                value: bandwidth,
            });
        }
        if let Some(&bad) = data.iter().find(|x| !x.is_finite()) {
            return Err(StatsError::NonFinite {
                what: "kde training point",
                value: bad,
            });
        }
        let mut points = data.to_vec();
        points.sort_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
        Ok(Self { points, bandwidth })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no training points are held (cannot happen via the
    /// constructors; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Density estimate `f̂(x)`.
    pub fn pdf(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return 0.0;
        }
        let h = self.bandwidth;
        let lo = x - CUTOFF * h;
        let hi = x + CUTOFF * h;
        // First training point ≥ lo:
        let start = self.points.partition_point(|&p| p < lo);
        let mut acc = 0.0;
        for &p in &self.points[start..] {
            if p > hi {
                break;
            }
            let z = (x - p) / h;
            acc += (-0.5 * z * z).exp();
        }
        const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
        acc * INV_SQRT_2PI / (self.points.len() as f64 * h)
    }

    /// Natural log of the density, with a floor so that far-tail queries
    /// return a large negative number instead of `−∞` (keeps Bayes
    /// comparisons well-defined for outlier features).
    pub fn ln_pdf(&self, x: f64) -> f64 {
        let p = self.pdf(x);
        if p > 0.0 {
            p.ln()
        } else {
            // Fall back to the nearest-kernel log density (exact when one
            // kernel dominates), which preserves ordering between classes
            // far outside both training supports.
            let nearest = self.nearest_point(x);
            let z = (x - nearest) / self.bandwidth;
            const LN_INV_SQRT_2PI: f64 = -0.918_938_533_204_672_7;
            LN_INV_SQRT_2PI - 0.5 * z * z - (self.points.len() as f64 * self.bandwidth).ln()
        }
    }

    fn nearest_point(&self, x: f64) -> f64 {
        let idx = self.points.partition_point(|&p| p < x);
        let after = self.points.get(idx).copied();
        let before = if idx > 0 {
            Some(self.points[idx - 1])
        } else {
            None
        };
        match (before, after) {
            (Some(b), Some(a)) => {
                if (x - b).abs() <= (a - x).abs() {
                    b
                } else {
                    a
                }
            }
            (Some(b), None) => b,
            (None, Some(a)) => a,
            (None, None) => x,
        }
    }

    /// CDF estimate `F̂(x)` (mixture of normal CDFs).
    pub fn cdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let mut acc = 0.0;
        for &p in &self.points {
            acc += crate::special::std_normal_cdf((x - p) / h);
        }
        acc / self.points.len() as f64
    }

    /// Smallest and largest training points.
    pub fn support_hint(&self) -> (f64, f64) {
        (
            *self.points.first().expect("non-empty by construction"),
            *self.points.last().expect("non-empty by construction"),
        )
    }
}

/// Silverman's rule-of-thumb bandwidth
/// `h = 0.9·min(σ̂, IQR/1.34)·n^{−1/5}`.
///
/// Errors on fewer than two points or zero spread.
pub fn silverman_bandwidth(data: &[f64]) -> Result<f64> {
    if data.len() < 2 {
        return Err(StatsError::InsufficientData {
            what: "silverman bandwidth",
            needed: 2,
            got: data.len(),
        });
    }
    let m = RunningMoments::from_slice(data);
    let sd = m.std_dev().unwrap_or(0.0);
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .ok_or(())
            .map_err(|_| ())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let iqr = quantile_of_sorted(&sorted, 0.75) - quantile_of_sorted(&sorted, 0.25);
    let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
    if spread <= 0.0 || !spread.is_finite() {
        return Err(StatsError::NonPositive {
            what: "data spread for silverman bandwidth",
            value: spread,
        });
    }
    Ok(0.9 * spread * (data.len() as f64).powf(-0.2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::Normal;
    use crate::rng::MasterSeed;

    fn normal_sample(n: usize, mu: f64, sigma: f64, seed: u64) -> Vec<f64> {
        let dist = Normal::new(mu, sigma).unwrap();
        let mut rng = MasterSeed::new(seed).stream(0);
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }

    #[test]
    fn constructors_validate() {
        assert!(GaussianKde::fit(&[]).is_err());
        assert!(GaussianKde::fit(&[1.0]).is_err());
        assert!(GaussianKde::fit(&[1.0, 1.0, 1.0]).is_err()); // zero spread
        assert!(GaussianKde::with_bandwidth(&[1.0, 2.0], 0.0).is_err());
        assert!(GaussianKde::with_bandwidth(&[1.0, f64::NAN], 0.1).is_err());
        assert!(GaussianKde::with_bandwidth(&[1.0, 1.0], 0.5).is_ok()); // explicit h is fine
    }

    #[test]
    fn pdf_integrates_to_one() {
        let data = normal_sample(500, 3.0, 2.0, 1);
        let kde = GaussianKde::fit(&data).unwrap();
        // Trapezoid over a wide window.
        let (lo, hi) = (-10.0, 16.0);
        let steps = 4000;
        let dx = (hi - lo) / steps as f64;
        let mut acc = 0.0;
        for i in 0..=steps {
            let x = lo + i as f64 * dx;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            acc += w * kde.pdf(x) * dx;
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral = {acc}");
    }

    #[test]
    fn pdf_tracks_true_density() {
        let data = normal_sample(4000, 0.0, 1.0, 2);
        let kde = GaussianKde::fit(&data).unwrap();
        let truth = Normal::standard();
        // Tolerances widen in the tails where relative KDE error is
        // naturally larger (boundary bias + fewer kernels).
        for &(x, tol) in &[
            (-2.0, 0.2),
            (-1.0, 0.1),
            (0.0, 0.1),
            (0.5, 0.1),
            (1.5, 0.15),
        ] {
            let est = kde.pdf(x);
            let want = truth.pdf(x);
            assert!(
                (est - want).abs() / want < tol,
                "pdf({x}) = {est}, want ≈ {want}"
            );
        }
    }

    #[test]
    fn pdf_is_permutation_invariant() {
        // Fixed bandwidth: Silverman's rule itself accumulates moments in
        // data order, so only the *density* (post-sort) is exactly
        // order-free.
        let mut data = normal_sample(100, 5.0, 1.0, 3);
        let kde1 = GaussianKde::with_bandwidth(&data, 0.4).unwrap();
        data.reverse();
        let kde2 = GaussianKde::with_bandwidth(&data, 0.4).unwrap();
        for &x in &[3.0, 5.0, 7.0] {
            assert_eq!(kde1.pdf(x), kde2.pdf(x));
        }
    }

    #[test]
    fn ln_pdf_matches_pdf_in_support() {
        let data = normal_sample(200, 0.0, 1.0, 4);
        let kde = GaussianKde::fit(&data).unwrap();
        for &x in &[-1.0, 0.0, 2.0] {
            assert!((kde.ln_pdf(x) - kde.pdf(x).ln()).abs() < 1e-9);
        }
    }

    #[test]
    fn ln_pdf_far_tail_is_finite_and_ordered() {
        // Two KDEs with different spreads: far in the tail the wider one
        // must win, and neither may return −∞/NaN.
        let narrow = GaussianKde::fit(&normal_sample(300, 0.0, 1.0, 5)).unwrap();
        let wide = GaussianKde::fit(&normal_sample(300, 0.0, 4.0, 6)).unwrap();
        let x = 1e3;
        let ln_n = narrow.ln_pdf(x);
        let ln_w = wide.ln_pdf(x);
        assert!(ln_n.is_finite() && ln_w.is_finite());
        assert!(ln_w > ln_n, "wider density must dominate at {x}");
        assert_eq!(narrow.pdf(f64::NAN), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let data = normal_sample(300, 0.0, 1.0, 7);
        let kde = GaussianKde::fit(&data).unwrap();
        let mut prev = 0.0;
        for i in -40..=40 {
            let x = i as f64 * 0.2;
            let c = kde.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!(kde.cdf(-50.0) < 1e-6);
        assert!(kde.cdf(50.0) > 1.0 - 1e-6);
    }

    #[test]
    fn silverman_matches_hand_computation() {
        // For data with sd ≈ 1, IQR/1.34 ≈ 1: h ≈ 0.9·n^{-1/5}.
        let data = normal_sample(1000, 0.0, 1.0, 8);
        let h = silverman_bandwidth(&data).unwrap();
        let expect = 0.9 * (1000.0f64).powf(-0.2);
        assert!((h - expect).abs() / expect < 0.15, "h = {h}, ≈ {expect}");
    }

    #[test]
    fn cutoff_does_not_distort_density() {
        // pdf at a point must equal the brute-force sum (within the mass
        // that the 5σ cutoff legitimately ignores).
        let data = normal_sample(500, 0.0, 1.0, 9);
        let kde = GaussianKde::fit(&data).unwrap();
        let h = kde.bandwidth();
        let x = 0.37;
        let brute: f64 = data
            .iter()
            .map(|&p| {
                let z = (x - p) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * 0.398_942_280_401_432_7
            / (data.len() as f64 * h);
        assert!((kde.pdf(x) - brute).abs() / brute < 1e-6);
    }

    #[test]
    fn support_hint_brackets_data() {
        let data = vec![3.0, 1.0, 2.0, 10.0];
        let kde = GaussianKde::with_bandwidth(&data, 0.5).unwrap();
        assert_eq!(kde.support_hint(), (1.0, 10.0));
        assert_eq!(kde.len(), 4);
        assert!(!kde.is_empty());
    }
}
