//! Distribution toolbox: the interval laws a VIT padding timer can use and
//! the traffic models the simulated network needs.
//!
//! The paper's VIT padding draws the timer interval from a distribution
//! with mean τ and standard deviation σ_T (eq. 9); Figures 5a/5b sweep
//! σ_T. A real timer interval must be positive, so the canonical VIT law
//! here is the [`TruncatedNormal`]. [`Uniform`] and [`Exponential`] exist
//! both as alternative VIT laws (an ablation in the bench suite) and as
//! cross-traffic inter-arrival models; [`Pareto`] and [`LogNormal`] model
//! bursty cross traffic; [`Mixture`]/[`Categorical`] model packet-size
//! mixes.

use crate::error::{ensure_finite, ensure_positive, StatsError};
use crate::normal::{standard_normal_sample, unit_f64, Normal};
use crate::special::std_normal_cdf;
use crate::Result;
use rand_core::RngCore;

/// A continuous distribution that can be sampled and report its first two
/// moments. Object-safe so schedules can hold `Box<dyn ContinuousDist>`.
pub trait ContinuousDist: Send + Sync + std::fmt::Debug {
    /// Draw one sample.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;
    /// Distribution mean.
    fn mean(&self) -> f64;
    /// Distribution variance.
    fn variance(&self) -> f64;
    /// Standard deviation (derived).
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl ContinuousDist for Normal {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        Normal::sample(self, rng)
    }
    fn mean(&self) -> f64 {
        Normal::mean(self)
    }
    fn variance(&self) -> f64 {
        Normal::variance(self)
    }
}

/// A point mass: always returns `value`. This is the CIT "distribution"
/// (σ_T = 0) and also handy for deterministic packet sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Point mass at `value` (must be finite).
    pub fn new(value: f64) -> Result<Self> {
        ensure_finite("deterministic value", value)?;
        Ok(Self { value })
    }
}

impl ContinuousDist for Deterministic {
    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }
    fn mean(&self) -> f64 {
        self.value
    }
    fn variance(&self) -> f64 {
        0.0
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Uniform on `[lo, hi)`; requires `lo < hi`, both finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        ensure_finite("uniform lo", lo)?;
        ensure_finite("uniform hi", hi)?;
        if lo >= hi {
            return Err(StatsError::EmptyInterval {
                what: "uniform support",
                lo,
                hi,
            });
        }
        Ok(Self { lo, hi })
    }

    /// The uniform VIT law with mean τ and standard deviation σ:
    /// `U[τ − σ√3, τ + σ√3)`. Fails if the lower end would be ≤ 0
    /// (a timer interval must stay positive).
    pub fn with_mean_sigma(tau: f64, sigma: f64) -> Result<Self> {
        ensure_positive("uniform mean", tau)?;
        ensure_positive("uniform sigma", sigma)?;
        let half = sigma * 3.0f64.sqrt();
        if tau - half <= 0.0 {
            return Err(StatsError::EmptyInterval {
                what: "uniform VIT law (interval would go non-positive)",
                lo: tau - half,
                hi: tau + half,
            });
        }
        Self::new(tau - half, tau + half)
    }
}

impl ContinuousDist for Uniform {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.lo + (self.hi - self.lo) * unit_f64(rng)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
}

/// Exponential distribution with the given mean (= 1/rate).
///
/// Used for Poisson cross-traffic inter-arrivals and as the
/// interrupt-blocking delay law in the gateway jitter model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Exponential with mean `mean > 0`.
    pub fn new(mean: f64) -> Result<Self> {
        ensure_positive("exponential mean", mean)?;
        Ok(Self { mean })
    }

    /// Exponential with rate `rate > 0` events per unit time.
    pub fn with_rate(rate: f64) -> Result<Self> {
        ensure_positive("exponential rate", rate)?;
        Ok(Self { mean: 1.0 / rate })
    }
}

impl ContinuousDist for Exponential {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Inverse CDF; 1−U avoids ln(0).
        -self.mean * (1.0 - unit_f64(rng)).ln()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn variance(&self) -> f64 {
        self.mean * self.mean
    }
}

/// Normal distribution truncated to `[lo, ∞)` — the canonical VIT interval
/// law: `T ~ N(τ, σ_T²)` conditioned on `T ≥ lo` so the timer never fires
/// in the past.
///
/// Sampling is by rejection against the parent normal, which is efficient
/// whenever the truncation removes a modest tail (the regime of every
/// experiment in the paper: τ = 10 ms, σ_T ≤ a few ms). Constructing a law
/// whose parent probability of acceptance is below 1 % is rejected as a
/// configuration error rather than looping forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    parent: Normal,
    lo: f64,
    /// Acceptance probability P(parent ≥ lo), cached for moments.
    accept: f64,
}

impl TruncatedNormal {
    /// `N(mu, sigma²)` truncated to `[lo, ∞)`.
    pub fn new(mu: f64, sigma: f64, lo: f64) -> Result<Self> {
        let parent = Normal::new(mu, sigma)?;
        ensure_finite("truncation bound", lo)?;
        let accept = 1.0 - parent.cdf(lo);
        if accept < 0.01 {
            return Err(StatsError::NonPositive {
                what: "truncated-normal acceptance probability (lower the bound or sigma)",
                value: accept,
            });
        }
        Ok(Self { parent, lo, accept })
    }

    /// The standard VIT law of the paper's experiments: mean τ, deviation
    /// σ_T, truncated at a small positive floor (default 1 % of τ).
    pub fn vit_law(tau: f64, sigma_t: f64) -> Result<Self> {
        ensure_positive("VIT tau", tau)?;
        ensure_positive("VIT sigma_t", sigma_t)?;
        Self::new(tau, sigma_t, 0.01 * tau)
    }

    /// The truncation lower bound.
    pub fn lower_bound(&self) -> f64 {
        self.lo
    }

    /// The untruncated parent law.
    pub fn parent(&self) -> Normal {
        self.parent
    }
}

impl ContinuousDist for TruncatedNormal {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        loop {
            let x = self.parent.mean() + self.parent.sigma() * standard_normal_sample(rng);
            if x >= self.lo {
                return x;
            }
        }
    }

    fn mean(&self) -> f64 {
        // E[X | X ≥ lo] = µ + σ·φ(α)/(1−Φ(α)), α = (lo−µ)/σ
        let a = (self.lo - self.parent.mean()) / self.parent.sigma();
        let lambda = crate::special::std_normal_pdf(a) / self.accept;
        self.parent.mean() + self.parent.sigma() * lambda
    }

    fn variance(&self) -> f64 {
        let a = (self.lo - self.parent.mean()) / self.parent.sigma();
        let lambda = crate::special::std_normal_pdf(a) / self.accept;
        let delta = lambda * (lambda - a);
        self.parent.variance() * (1.0 - delta)
    }
}

/// Log-normal distribution: `exp(N(mu_log, sigma_log²))`.
///
/// Heavy-ish-tailed cross-traffic service model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    log_normal: Normal,
}

impl LogNormal {
    /// From the underlying normal parameters.
    pub fn new(mu_log: f64, sigma_log: f64) -> Result<Self> {
        Ok(Self {
            log_normal: Normal::new(mu_log, sigma_log)?,
        })
    }

    /// Parameterized by the *target* mean and standard deviation of the
    /// log-normal itself (solves for the underlying normal parameters).
    pub fn with_mean_sigma(mean: f64, sigma: f64) -> Result<Self> {
        ensure_positive("lognormal mean", mean)?;
        ensure_positive("lognormal sigma", sigma)?;
        let cv2 = (sigma / mean) * (sigma / mean);
        let sigma_log = (1.0 + cv2).ln().sqrt();
        let mu_log = mean.ln() - 0.5 * sigma_log * sigma_log;
        Self::new(mu_log, sigma_log)
    }
}

impl ContinuousDist for LogNormal {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.log_normal.sample(rng).exp()
    }
    fn mean(&self) -> f64 {
        (self.log_normal.mean() + 0.5 * self.log_normal.variance()).exp()
    }
    fn variance(&self) -> f64 {
        let s2 = self.log_normal.variance();
        ((s2).exp_m1()) * (2.0 * self.log_normal.mean() + s2).exp()
    }
}

/// Pareto (type I) distribution with scale `x_m > 0` and shape `alpha > 0`.
///
/// Models bursty cross traffic. Note the variance is infinite for
/// `alpha ≤ 2`; [`ContinuousDist::variance`] reports `f64::INFINITY` there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Pareto with scale (minimum) `x_m` and tail index `alpha`.
    pub fn new(scale: f64, shape: f64) -> Result<Self> {
        ensure_positive("pareto scale", scale)?;
        ensure_positive("pareto shape", shape)?;
        Ok(Self { scale, shape })
    }
}

impl ContinuousDist for Pareto {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.scale * (1.0 - unit_f64(rng)).powf(-1.0 / self.shape)
    }
    fn mean(&self) -> f64 {
        if self.shape <= 1.0 {
            f64::INFINITY
        } else {
            self.shape * self.scale / (self.shape - 1.0)
        }
    }
    fn variance(&self) -> f64 {
        if self.shape <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.shape;
            self.scale * self.scale * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }
}

/// Discrete distribution over arbitrary `f64` support points with given
/// weights. Used for packet-size mixes like {64 B, 550 B, 1500 B}.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    values: Vec<f64>,
    /// Cumulative normalized weights; last entry is exactly 1.0.
    cumulative: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Categorical {
    /// Build from `(value, weight)` pairs. Weights must be non-negative
    /// with a positive sum.
    pub fn new(pairs: &[(f64, f64)]) -> Result<Self> {
        if pairs.is_empty() {
            return Err(StatsError::InsufficientData {
                what: "categorical",
                needed: 1,
                got: 0,
            });
        }
        let mut total = 0.0;
        for &(v, w) in pairs {
            ensure_finite("categorical value", v)?;
            ensure_finite("categorical weight", w)?;
            if w < 0.0 {
                return Err(StatsError::BadWeights);
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(StatsError::BadWeights);
        }
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        let mut mean = 0.0;
        for &(v, w) in pairs {
            acc += w / total;
            cumulative.push(acc);
            values.push(v);
            mean += v * w / total;
        }
        *cumulative.last_mut().expect("nonempty") = 1.0;
        let mut variance = 0.0;
        for &(v, w) in pairs {
            variance += (v - mean) * (v - mean) * w / total;
        }
        Ok(Self {
            values,
            cumulative,
            mean,
            variance,
        })
    }

    /// The support points.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl ContinuousDist for Categorical {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u = unit_f64(rng);
        // Linear scan: supports are tiny (packet-size mixes of 2–5 points).
        for (i, &c) in self.cumulative.iter().enumerate() {
            if u < c {
                return self.values[i];
            }
        }
        *self.values.last().expect("nonempty")
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn variance(&self) -> f64 {
        self.variance
    }
}

/// Finite mixture of continuous distributions with given weights.
#[derive(Debug)]
pub struct Mixture {
    components: Vec<Box<dyn ContinuousDist>>,
    cumulative: Vec<f64>,
    weights: Vec<f64>,
}

impl Mixture {
    /// Build from `(component, weight)` pairs; weights must be
    /// non-negative with a positive sum.
    pub fn new(parts: Vec<(Box<dyn ContinuousDist>, f64)>) -> Result<Self> {
        if parts.is_empty() {
            return Err(StatsError::InsufficientData {
                what: "mixture",
                needed: 1,
                got: 0,
            });
        }
        let total: f64 = parts.iter().map(|(_, w)| *w).sum();
        if total <= 0.0 || parts.iter().any(|(_, w)| *w < 0.0 || !w.is_finite()) {
            return Err(StatsError::BadWeights);
        }
        let mut components = Vec::with_capacity(parts.len());
        let mut cumulative = Vec::with_capacity(parts.len());
        let mut weights = Vec::with_capacity(parts.len());
        let mut acc = 0.0;
        for (c, w) in parts {
            acc += w / total;
            cumulative.push(acc);
            weights.push(w / total);
            components.push(c);
        }
        *cumulative.last_mut().expect("nonempty") = 1.0;
        Ok(Self {
            components,
            cumulative,
            weights,
        })
    }
}

impl ContinuousDist for Mixture {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u = unit_f64(rng);
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.components.len() - 1);
        self.components[idx].sample(rng)
    }

    fn mean(&self) -> f64 {
        self.components
            .iter()
            .zip(&self.weights)
            .map(|(c, w)| w * c.mean())
            .sum()
    }

    fn variance(&self) -> f64 {
        // Law of total variance.
        let m = self.mean();
        self.components
            .iter()
            .zip(&self.weights)
            .map(|(c, w)| w * (c.variance() + (c.mean() - m) * (c.mean() - m)))
            .sum()
    }
}

/// Sample-based estimate of how far a law's empirical moments sit from its
/// reported moments — a test helper exported for reuse in other crates'
/// tests.
pub fn empirical_moments<D: ContinuousDist + ?Sized, R: RngCore>(
    dist: &D,
    rng: &mut R,
    n: usize,
) -> (f64, f64) {
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for i in 0..n {
        let x = dist.sample(rng);
        let d = x - mean;
        mean += d / (i + 1) as f64;
        m2 += d * (x - mean);
    }
    (mean, m2 / (n.max(2) - 1) as f64)
}

/// Helper: the CDF of the truncated normal (used in tests and by the
/// analytic crate when validating VIT configurations).
pub fn truncated_normal_cdf(tn: &TruncatedNormal, x: f64) -> f64 {
    let parent = tn.parent();
    if x < tn.lower_bound() {
        return 0.0;
    }
    let a = std_normal_cdf((tn.lower_bound() - parent.mean()) / parent.sigma());
    let fx = std_normal_cdf((x - parent.mean()) / parent.sigma());
    ((fx - a) / (1.0 - a)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MasterSeed;

    fn rng() -> crate::rng::Xoshiro256StarStar {
        MasterSeed::new(2024).stream(0)
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(0.01).unwrap();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 0.01);
        }
        assert_eq!(d.mean(), 0.01);
        assert_eq!(d.variance(), 0.0);
        assert!(Deterministic::new(f64::NAN).is_err());
    }

    #[test]
    fn uniform_moments_and_support() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(u.mean(), 4.0);
        assert!((u.variance() - 16.0 / 12.0).abs() < 1e-15);
        let mut r = rng();
        for _ in 0..1000 {
            let x = u.sample(&mut r);
            assert!((2.0..6.0).contains(&x));
        }
        assert!(Uniform::new(3.0, 3.0).is_err());
        assert!(Uniform::new(5.0, 1.0).is_err());
    }

    #[test]
    fn uniform_vit_law_has_requested_moments() {
        let tau = 10e-3;
        let sigma = 1e-3;
        let u = Uniform::with_mean_sigma(tau, sigma).unwrap();
        assert!((u.mean() - tau).abs() < 1e-12);
        assert!((u.std_dev() - sigma).abs() < 1e-9);
        // σ too large → support would cross zero → error
        assert!(Uniform::with_mean_sigma(10e-3, 10e-3).is_err());
    }

    #[test]
    fn exponential_moments() {
        let e = Exponential::new(0.5).unwrap();
        assert_eq!(e.mean(), 0.5);
        assert_eq!(e.variance(), 0.25);
        let e2 = Exponential::with_rate(4.0).unwrap();
        assert!((e2.mean() - 0.25).abs() < 1e-15);
        let mut r = rng();
        let (m, v) = empirical_moments(&e, &mut r, 100_000);
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
        assert!((v - 0.25).abs() < 0.02, "var {v}");
    }

    #[test]
    fn exponential_samples_are_positive() {
        let e = Exponential::new(1.0).unwrap();
        let mut r = rng();
        assert!((0..10_000).all(|_| e.sample(&mut r) >= 0.0));
    }

    #[test]
    fn truncated_normal_respects_bound() {
        let tn = TruncatedNormal::new(10.0, 3.0, 8.0).unwrap();
        let mut r = rng();
        for _ in 0..5_000 {
            assert!(tn.sample(&mut r) >= 8.0);
        }
    }

    #[test]
    fn truncated_normal_moments_match_closed_form() {
        let tn = TruncatedNormal::new(1.0, 1.0, 0.0).unwrap();
        // Known: for µ=1,σ=1,lo=0 → α=−1, λ=φ(1)/Φ(1)≈0.287600
        let lambda = crate::special::std_normal_pdf(1.0) / crate::special::std_normal_cdf(1.0);
        assert!((tn.mean() - (1.0 + lambda)).abs() < 1e-12);
        let mut r = rng();
        let (m, v) = empirical_moments(&tn, &mut r, 200_000);
        assert!((m - tn.mean()).abs() < 0.01, "mean {m} vs {}", tn.mean());
        assert!(
            (v - tn.variance()).abs() < 0.01,
            "var {v} vs {}",
            tn.variance()
        );
    }

    #[test]
    fn vit_law_mild_truncation_keeps_moments() {
        // σ_T = 1ms on τ = 10ms: truncation negligible, moments ≈ parent.
        let tn = TruncatedNormal::vit_law(10e-3, 1e-3).unwrap();
        assert!((tn.mean() - 10e-3).abs() < 1e-6);
        assert!((tn.std_dev() - 1e-3).abs() < 1e-6);
    }

    #[test]
    fn vit_law_rejects_hopeless_truncation() {
        // σ_T enormous relative to τ: acceptance < 1% never happens here
        // (acceptance stays ~50%+), so instead test the raw constructor.
        assert!(TruncatedNormal::new(0.0, 1.0, 3.0).is_err()); // accept ≈ 0.13%
    }

    #[test]
    fn lognormal_target_moments() {
        let ln = LogNormal::with_mean_sigma(2.0, 0.5).unwrap();
        assert!((ln.mean() - 2.0).abs() < 1e-12);
        assert!((ln.variance() - 0.25).abs() < 1e-12);
        let mut r = rng();
        let (m, v) = empirical_moments(&ln, &mut r, 200_000);
        assert!((m - 2.0).abs() < 0.02);
        assert!((v - 0.25).abs() < 0.03);
    }

    #[test]
    fn pareto_tail_and_moments() {
        let p = Pareto::new(1.0, 3.0).unwrap();
        assert!((p.mean() - 1.5).abs() < 1e-12);
        assert!((p.variance() - 0.75).abs() < 1e-12);
        let heavy = Pareto::new(1.0, 1.5).unwrap();
        assert!(heavy.variance().is_infinite());
        let very_heavy = Pareto::new(1.0, 0.9).unwrap();
        assert!(very_heavy.mean().is_infinite());
        let mut r = rng();
        for _ in 0..1000 {
            assert!(p.sample(&mut r) >= 1.0);
        }
    }

    #[test]
    fn categorical_packet_mix() {
        let mix = Categorical::new(&[(64.0, 0.5), (550.0, 0.3), (1500.0, 0.2)]).unwrap();
        let want_mean = 64.0 * 0.5 + 550.0 * 0.3 + 1500.0 * 0.2;
        assert!((mix.mean() - want_mean).abs() < 1e-12);
        let mut r = rng();
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            let s = mix.sample(&mut r);
            match s as u32 {
                64 => counts[0] += 1,
                550 => counts[1] += 1,
                1500 => counts[2] += 1,
                other => panic!("unexpected sample {other}"),
            }
        }
        assert!((counts[0] as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.2).abs() < 0.01);
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[(1.0, -0.5)]).is_err());
        assert!(Categorical::new(&[(1.0, 0.0), (2.0, 0.0)]).is_err());
    }

    #[test]
    fn mixture_total_variance_law() {
        let a = Box::new(Normal::new(0.0, 1.0).unwrap());
        let b = Box::new(Normal::new(10.0, 2.0).unwrap());
        let mix = Mixture::new(vec![
            (a as Box<dyn ContinuousDist>, 1.0),
            (b as Box<dyn ContinuousDist>, 3.0),
        ])
        .unwrap();
        // mean = 0.25·0 + 0.75·10 = 7.5
        assert!((mix.mean() - 7.5).abs() < 1e-12);
        // var = 0.25·(1+56.25) + 0.75·(4+6.25) = 14.3125 + 7.6875 = 22.0
        assert!((mix.variance() - 22.0).abs() < 1e-12);
        let mut r = rng();
        let (m, v) = empirical_moments(&mix, &mut r, 200_000);
        assert!((m - 7.5).abs() < 0.05);
        assert!((v - 22.0).abs() < 0.5);
    }

    #[test]
    fn mixture_rejects_empty_or_negative() {
        assert!(Mixture::new(vec![]).is_err());
        let a = Box::new(Normal::new(0.0, 1.0).unwrap());
        assert!(Mixture::new(vec![(a as Box<dyn ContinuousDist>, -1.0)]).is_err());
    }

    #[test]
    fn truncated_normal_cdf_is_valid() {
        let tn = TruncatedNormal::new(10.0, 2.0, 7.0).unwrap();
        assert_eq!(truncated_normal_cdf(&tn, 6.0), 0.0);
        assert!((truncated_normal_cdf(&tn, 100.0) - 1.0).abs() < 1e-12);
        let mid = truncated_normal_cdf(&tn, 10.0);
        assert!(mid > 0.0 && mid < 1.0);
        // Monotone
        assert!(truncated_normal_cdf(&tn, 9.0) < truncated_normal_cdf(&tn, 11.0));
    }
}
