//! Sample moments: the adversary's first two feature statistics.
//!
//! The paper's adversary computes the **sample mean** (eq. 17) and the
//! **sample variance** (eq. 19) of a PIAT sample `{X₁ … Xₙ}`. Both are
//! provided as one-shot functions over slices and as the single-pass
//! [`RunningMoments`] accumulator (Welford's algorithm with higher-moment
//! extensions and a parallel `merge`, per Chan et al.), which the
//! simulator and testbed use so PIATs never need to be buffered twice.

use crate::error::StatsError;
use crate::Result;

/// Sample mean `X̄ = Σ Xᵢ / n` (paper eq. 17). Errors on an empty slice.
pub fn sample_mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData {
            what: "sample mean",
            needed: 1,
            got: 0,
        });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance `Y = Σ (Xᵢ − X̄)² / (n − 1)` (paper eq. 19).
/// Errors when `n < 2`.
///
/// Two-pass formulation for accuracy (the PIAT samples cluster tightly
/// around 10 ms where the single-pass textbook formula would cancel
/// catastrophically: variances of interest are ~10⁻¹¹ s² on means of
/// ~10⁻² s).
pub fn sample_variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(StatsError::InsufficientData {
            what: "sample variance",
            needed: 2,
            got: xs.len(),
        });
    }
    let mean = sample_mean(xs)?;
    let mut acc = 0.0;
    let mut comp = 0.0; // second-order correction term Σd
    for &x in xs {
        let d = x - mean;
        acc += d * d;
        comp += d;
    }
    // Björck correction: subtract (Σd)²/n to cancel rounding in the mean.
    let n = xs.len() as f64;
    Ok((acc - comp * comp / n) / (n - 1.0))
}

/// Sample standard deviation `√Y`.
pub fn sample_std_dev(xs: &[f64]) -> Result<f64> {
    Ok(sample_variance(xs)?.sqrt())
}

/// Lag-`k` sample autocovariance `(1/n) Σ (Xᵢ−X̄)(Xᵢ₊ₖ−X̄)`.
///
/// Diagnostic for the timer-discipline ablation: an absolute (periodic)
/// timer makes consecutive PIATs negatively correlated at lag 1, a
/// relative (re-arming) timer does not.
pub fn autocovariance(xs: &[f64], lag: usize) -> Result<f64> {
    if xs.len() < lag + 2 {
        return Err(StatsError::InsufficientData {
            what: "autocovariance",
            needed: lag + 2,
            got: xs.len(),
        });
    }
    let mean = sample_mean(xs)?;
    let n = xs.len();
    let mut acc = 0.0;
    for i in 0..n - lag {
        acc += (xs[i] - mean) * (xs[i + lag] - mean);
    }
    Ok(acc / n as f64)
}

/// Lag-`k` autocorrelation (autocovariance normalized by lag-0).
pub fn autocorrelation(xs: &[f64], lag: usize) -> Result<f64> {
    let c0 = autocovariance(xs, 0)?;
    if c0 <= 0.0 {
        return Err(StatsError::NonPositive {
            what: "lag-0 autocovariance",
            value: c0,
        });
    }
    Ok(autocovariance(xs, lag)? / c0)
}

/// Single-pass accumulator for count/mean/variance/skewness/kurtosis with
/// O(1) updates and an exact parallel merge.
///
/// Numerically this is Welford's algorithm extended to third and fourth
/// central moments (Pébay 2008); `merge` implements the pairwise-combine
/// update so per-thread accumulators can be reduced without losing
/// accuracy — the idiom used by all parallel sweeps in this workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Default for RunningMoments {
    /// Same as [`RunningMoments::new`] — an empty accumulator (min/max
    /// seeded at ±∞, not zero).
    fn default() -> Self {
        Self::new()
    }
}

impl RunningMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold in a whole slice.
    pub fn push_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Build an accumulator from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Self::new();
        m.push_all(xs);
        m
    }

    /// Merge another accumulator (exact pairwise combination).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;

        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;

        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean. `None` until at least one observation arrives.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Unbiased sample variance. `None` until two observations arrive.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Population variance (divide by n).
    pub fn population_variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Skewness `g₁ = (m₃/n) / (m₂/n)^{3/2}`. `None` for degenerate data.
    pub fn skewness(&self) -> Option<f64> {
        if self.n < 3 || self.m2 <= 0.0 {
            return None;
        }
        let n = self.n as f64;
        Some((n.sqrt() * self.m3) / self.m2.powf(1.5))
    }

    /// Excess kurtosis `g₂ = n·m₄/m₂² − 3`. `None` for degenerate data.
    pub fn kurtosis(&self) -> Option<f64> {
        if self.n < 4 || self.m2 <= 0.0 {
            return None;
        }
        let n = self.n as f64;
        Some(n * self.m4 / (self.m2 * self.m2) - 3.0)
    }

    /// Minimum observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(sample_mean(&xs).unwrap(), 5.0);
        // Σ(x−5)² = 9+1+1+1+0+0+4+16 = 32; 32/7
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-14);
        assert!((sample_std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn empty_and_singleton_are_errors() {
        assert!(sample_mean(&[]).is_err());
        assert!(sample_variance(&[1.0]).is_err());
        assert!(sample_variance(&[]).is_err());
        assert!(autocovariance(&[1.0, 2.0], 1).is_err());
    }

    #[test]
    fn variance_is_accurate_at_piat_scale() {
        // 10ms mean with µs-scale jitter: classic catastrophic-cancellation
        // territory. True variance of {10ms ± 5µs alternating} is 25e-12.
        let mut xs = Vec::new();
        for i in 0..1000 {
            let jitter = if i % 2 == 0 { 5e-6 } else { -5e-6 };
            xs.push(10e-3 + jitter);
        }
        let v = sample_variance(&xs).unwrap();
        let want = 25e-12 * 1000.0 / 999.0;
        assert!(
            ((v - want) / want).abs() < 1e-9,
            "v = {v:e}, want = {want:e}"
        );
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..500).map(|i| 10e-3 + (i as f64).sin() * 1e-5).collect();
        let m = RunningMoments::from_slice(&xs);
        assert!((m.mean().unwrap() - sample_mean(&xs).unwrap()).abs() < 1e-15);
        let rel = (m.variance().unwrap() - sample_variance(&xs).unwrap()).abs()
            / sample_variance(&xs).unwrap();
        assert!(rel < 1e-9, "relative error {rel}");
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.7).cos() * 3.0 + 1.0)
            .collect();
        let whole = RunningMoments::from_slice(&xs);
        for split in [1, 17, 500, 999] {
            let mut a = RunningMoments::from_slice(&xs[..split]);
            let b = RunningMoments::from_slice(&xs[split..]);
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-12);
            assert!(
                (a.variance().unwrap() - whole.variance().unwrap()).abs()
                    / whole.variance().unwrap()
                    < 1e-10
            );
            assert!((a.skewness().unwrap() - whole.skewness().unwrap()).abs() < 1e-8);
            assert!((a.kurtosis().unwrap() - whole.kurtosis().unwrap()).abs() < 1e-8);
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut a = RunningMoments::from_slice(&xs);
        let before = a;
        a.merge(&RunningMoments::new());
        assert_eq!(a, before);
        let mut e = RunningMoments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn running_moments_min_max() {
        let m = RunningMoments::from_slice(&[3.0, -1.0, 7.0]);
        assert_eq!(m.min(), -1.0);
        assert_eq!(m.max(), 7.0);
        let e = RunningMoments::new();
        assert!(e.min().is_infinite() && e.max().is_infinite());
    }

    #[test]
    fn skewness_and_kurtosis_of_known_shapes() {
        // Symmetric data → skewness ≈ 0.
        let sym: Vec<f64> = (-500..=500).map(|i| i as f64).collect();
        let m = RunningMoments::from_slice(&sym);
        assert!(m.skewness().unwrap().abs() < 1e-12);
        // Uniform distribution has excess kurtosis −1.2.
        assert!((m.kurtosis().unwrap() + 1.2).abs() < 0.01);
        // Right-skewed data → positive skewness.
        let skewed: Vec<f64> = (0..1000).map(|i| ((i % 10) as f64).powi(3)).collect();
        assert!(RunningMoments::from_slice(&skewed).skewness().unwrap() > 0.0);
    }

    #[test]
    fn degenerate_moment_queries_return_none() {
        let mut m = RunningMoments::new();
        assert!(m.mean().is_none());
        assert!(m.variance().is_none());
        m.push(5.0);
        assert_eq!(m.mean(), Some(5.0));
        assert!(m.variance().is_none());
        assert!(m.skewness().is_none());
        // Constant data → zero variance → skew/kurtosis undefined
        let c = RunningMoments::from_slice(&[2.0; 10]);
        assert_eq!(c.variance(), Some(0.0));
        assert!(c.skewness().is_none());
        assert!(c.kurtosis().is_none());
    }

    #[test]
    fn autocovariance_of_alternating_sequence() {
        // x alternates ±1: lag-0 cov = 1, lag-1 cov ≈ −1 (exactly −(n−1)/n).
        let xs: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let c0 = autocovariance(&xs, 0).unwrap();
        let c1 = autocovariance(&xs, 1).unwrap();
        assert!((c0 - 1.0).abs() < 1e-12);
        assert!((c1 + 1.0).abs() < 2e-3);
        let rho = autocorrelation(&xs, 1).unwrap();
        assert!(rho < -0.99);
    }

    #[test]
    fn autocorrelation_of_iid_is_small() {
        use crate::rng::MasterSeed;
        let mut rng = MasterSeed::new(5).stream(2);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.next_f64()).collect();
        let rho = autocorrelation(&xs, 1).unwrap();
        assert!(rho.abs() < 0.02, "rho = {rho}");
    }
}
