//! Error type shared by the statistics substrate.

use std::fmt;

/// Errors produced by statistical constructors and estimators.
///
/// The substrate never panics on bad numeric input from callers; every
/// fallible operation returns `Result<_, StatsError>` so failure injection
/// tests can exercise degenerate configurations (empty samples, non-finite
/// parameters, zero-width bins, …).
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A parameter was not finite (NaN or ±∞).
    NonFinite {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An operation needed more data points than it was given.
    InsufficientData {
        /// Which operation.
        what: &'static str,
        /// Points required.
        needed: usize,
        /// Points available.
        got: usize,
    },
    /// An interval `[lo, hi]` had `lo >= hi` (or was otherwise empty).
    EmptyInterval {
        /// Which parameter was rejected.
        what: &'static str,
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
    /// A probability-like quantity fell outside `[0, 1]`.
    InvalidProbability {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Weights for a mixture/categorical distribution were unusable
    /// (all zero, or containing negatives).
    BadWeights,
    /// An iterative numerical routine failed to converge.
    NoConvergence {
        /// Which routine.
        what: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NonFinite { what, value } => {
                write!(f, "{what} must be finite, got {value}")
            }
            StatsError::NonPositive { what, value } => {
                write!(f, "{what} must be > 0, got {value}")
            }
            StatsError::InsufficientData { what, needed, got } => {
                write!(f, "{what} needs at least {needed} data points, got {got}")
            }
            StatsError::EmptyInterval { what, lo, hi } => {
                write!(f, "{what}: empty interval [{lo}, {hi}]")
            }
            StatsError::InvalidProbability { what, value } => {
                write!(f, "{what} must lie in [0, 1], got {value}")
            }
            StatsError::BadWeights => write!(f, "weights must be non-negative and sum to > 0"),
            StatsError::NoConvergence { what } => write!(f, "{what} failed to converge"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Validate that `value` is finite, tagging errors with `what`.
pub(crate) fn ensure_finite(what: &'static str, value: f64) -> crate::Result<f64> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(StatsError::NonFinite { what, value })
    }
}

/// Validate that `value` is finite and strictly positive.
pub(crate) fn ensure_positive(what: &'static str, value: f64) -> crate::Result<f64> {
    ensure_finite(what, value)?;
    if value > 0.0 {
        Ok(value)
    } else {
        Err(StatsError::NonPositive { what, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_parameter() {
        let e = StatsError::NonPositive {
            what: "sigma",
            value: -1.0,
        };
        assert!(e.to_string().contains("sigma"));
        let e = StatsError::InsufficientData {
            what: "kde",
            needed: 2,
            got: 0,
        };
        assert!(e.to_string().contains("kde"));
    }

    #[test]
    fn ensure_finite_rejects_nan_and_inf() {
        assert!(ensure_finite("x", f64::NAN).is_err());
        assert!(ensure_finite("x", f64::INFINITY).is_err());
        assert_eq!(ensure_finite("x", 1.5).unwrap(), 1.5);
    }

    #[test]
    fn ensure_positive_rejects_zero_and_negative() {
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", -3.0).is_err());
        assert_eq!(ensure_positive("x", 2.0).unwrap(), 2.0);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StatsError::BadWeights, StatsError::BadWeights);
        assert_ne!(
            StatsError::BadWeights,
            StatsError::NoConvergence { what: "bisect" }
        );
    }
}
