//! Special functions: `erf`, `erfc`, inverse normal CDF, `ln Γ`, and the
//! regularized incomplete gamma functions.
//!
//! These are the numerical bedrock of the analytical detection-rate model:
//! Theorem 1 needs the normal CDF, the exact sample-variance detection rate
//! (χ² feature distribution) needs the regularized incomplete gamma, and
//! sample-size planning needs the inverse normal CDF.
//!
//! All routines are pure `f64` implementations with no `unsafe` and no
//! external dependencies; accuracies are stated per function and locked in
//! by tests against high-precision reference values.

/// `erf(x)`, the error function, accurate to ~1.2e-16 relative error.
///
/// Uses the rational Chebyshev approximations of W. J. Cody (1969) on the
/// three classical ranges (|x| ≤ 0.5, 0.5 < |x| ≤ 4, |x| > 4), the same
/// scheme used by most libm implementations.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax < 0.5 {
        // erf(x) = x * P(x²)/Q(x²)
        let t = x * x;
        let top = ((((ERF_A[0] * t + ERF_A[1]) * t + ERF_A[2]) * t + ERF_A[3]) * t) + ERF_A[4];
        let bot = ((((ERF_B[0] * t + ERF_B[1]) * t + ERF_B[2]) * t + ERF_B[3]) * t) + ERF_B[4];
        x * top / bot
    } else {
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        sign * (1.0 - erfc_abs(ax))
    }
}

/// `erfc(x) = 1 − erf(x)`, the complementary error function.
///
/// Computed directly in the tails so that `erfc(10) ≈ 2.09e-45` retains
/// full relative accuracy (no catastrophic cancellation).
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.5 {
        if x < -0.5 {
            2.0 - erfc_abs(-x)
        } else {
            1.0 - erf(x)
        }
    } else {
        erfc_abs(x)
    }
}

/// erfc on `x >= 0.5` via Cody's rational approximations.
fn erfc_abs(x: f64) -> f64 {
    debug_assert!(x >= 0.5);
    if x > 26.5 {
        // Underflows to zero well before this; avoid spurious work.
        return 0.0;
    }
    let z = (-x * x).exp();
    if x <= 4.0 {
        let top = ((((((((ERFC_C[0] * x + ERFC_C[1]) * x + ERFC_C[2]) * x + ERFC_C[3]) * x
            + ERFC_C[4])
            * x
            + ERFC_C[5])
            * x
            + ERFC_C[6])
            * x
            + ERFC_C[7])
            * x)
            + ERFC_C[8];
        let bot = ((((((((ERFC_D[0] * x + ERFC_D[1]) * x + ERFC_D[2]) * x + ERFC_D[3]) * x
            + ERFC_D[4])
            * x
            + ERFC_D[5])
            * x
            + ERFC_D[6])
            * x
            + ERFC_D[7])
            * x)
            + ERFC_D[8];
        z * top / bot
    } else {
        // erfc(x) = exp(−x²)/x · (1/√π − t·P(t)/Q(t)),  t = 1/x²
        const INV_SQRT_PI: f64 = 0.564_189_583_547_756_3;
        let t = 1.0 / (x * x);
        let top =
            (((((ERFC_P[0] * t + ERFC_P[1]) * t + ERFC_P[2]) * t + ERFC_P[3]) * t + ERFC_P[4]) * t)
                + ERFC_P[5];
        let bot =
            (((((ERFC_Q[0] * t + ERFC_Q[1]) * t + ERFC_Q[2]) * t + ERFC_Q[3]) * t + ERFC_Q[4]) * t)
                + ERFC_Q[5];
        let frac = t * top / bot;
        z * (INV_SQRT_PI - frac) / x
    }
}

// Cody (1969) coefficients.
const ERF_A: [f64; 5] = [
    1.857_777_061_846_031_5e-1,
    3.161_123_743_870_565_6e0,
    1.138_641_541_510_501_6e2,
    3.774_852_376_853_020_2e2,
    3.209_377_589_138_469_5e3,
];
const ERF_B: [f64; 5] = [
    1.0,
    2.360_129_095_234_412_1e1,
    2.440_246_379_344_441_7e2,
    1.282_616_526_077_372_3e3,
    2.844_236_833_439_170_6e3,
];
const ERFC_C: [f64; 9] = [
    2.153_115_354_744_038_3e-8,
    5.641_884_969_886_700_9e-1,
    8.883_149_794_388_375_6e0,
    6.611_919_063_714_162_9e1,
    2.986_351_381_974_001_3e2,
    8.819_522_212_417_690_9e2,
    1.712_047_612_634_070_7e3,
    2.051_078_377_826_071_6e3,
    1.230_339_354_797_997_2e3,
];
const ERFC_D: [f64; 9] = [
    1.0,
    1.574_492_611_070_983_5e1,
    1.176_939_508_913_125e2,
    5.371_811_018_620_098_6e2,
    1.621_389_574_566_690_3e3,
    3.290_799_235_733_459_7e3,
    4.362_619_090_143_247_2e3,
    3.439_367_674_143_721_6e3,
    1.230_339_354_803_749_4e3,
];
const ERFC_P: [f64; 6] = [
    1.631_538_713_730_209_8e-2,
    3.053_266_349_612_323_4e-1,
    3.603_448_999_498_044_4e-1,
    1.257_817_261_112_292_5e-1,
    1.608_378_514_874_227_7e-2,
    6.587_491_615_298_378e-4,
];
const ERFC_Q: [f64; 6] = [
    1.0,
    2.568_520_192_289_822e0,
    1.872_952_849_923_460_4e0,
    5.279_051_029_514_284_5e-1,
    6.051_834_131_244_131_8e-2,
    2.335_204_976_268_691_8e-3,
];

/// Standard normal cumulative distribution function Φ(x).
#[inline]
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Standard normal probability density function φ(x).
#[inline]
pub fn std_normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Inverse of the standard normal CDF, Φ⁻¹(p), for `p ∈ (0, 1)`.
///
/// Peter Acklam's rational approximation (relative error < 1.15e-9)
/// followed by one Halley refinement step, giving ~1e-15 accuracy — more
/// than enough for sample-size planning and confidence intervals.
///
/// Returns `NaN` outside `(0, 1)`; `±∞` at the endpoints.
pub fn std_normal_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239e0,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838e0,
        -2.549_732_539_343_734e0,
        4.374_664_141_464_968e0,
        2.938_163_982_698_783e0,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996e0,
        3.754_408_661_907_416e0,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: x ← x − f/(f' − f·f''/(2f')) with f = Φ(x) − p.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 7, n = 9), |relative error| < 2e-10 over the
/// positive reals, exact at integers to ~1e-13.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x <= 0.0 {
        return f64::NAN;
    }
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π/sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes scheme). Needed for the exact Bayes detection rate of
/// the sample-variance feature, whose sampling law is Gamma/χ².
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    if a <= 0.0 || x < 0.0 || !a.is_finite() || !x.is_finite() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    if a <= 0.0 || x < 0.0 || !a.is_finite() || !x.is_finite() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_frac(a, x)
    }
}

fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// CDF of the χ² distribution with `k` degrees of freedom at `x`.
#[inline]
pub fn chi_square_cdf(k: f64, x: f64) -> f64 {
    reg_lower_gamma(0.5 * k, 0.5 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    const REL: f64 = 1e-12;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        if b == 0.0 {
            a.abs() < tol
        } else {
            ((a - b) / b).abs() < tol
        }
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from mpmath (50 digits).
        let cases = [
            (0.0, 0.0),
            (0.1, 0.112_462_916_018_284_89),
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
        ];
        for (x, want) in cases {
            assert!(
                close(erf(x), want, 1e-10),
                "erf({x}) = {} != {want}",
                erf(x)
            );
            assert!(close(erf(-x), -want, 1e-10), "erf(-{x})");
        }
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(5) = 1.5374597944280348e-12 (mpmath)
        assert!(close(erfc(5.0), 1.537_459_794_428_034_8e-12, 1e-8));
        // erfc(10) = 2.0884875837625448e-45
        assert!(close(erfc(10.0), 2.088_487_583_762_544_8e-45, 1e-7));
        assert_eq!(erfc(30.0), 0.0);
    }

    #[test]
    fn erf_erfc_complementarity() {
        for i in -40..=40 {
            let x = i as f64 * 0.1;
            let s = erf(x) + erfc(x);
            assert!((s - 1.0).abs() < 1e-14, "erf+erfc at {x} = {s}");
        }
    }

    #[test]
    fn erf_is_odd_and_monotone() {
        let mut prev = -1.0;
        for i in -50..=50 {
            let x = i as f64 * 0.1;
            let e = erf(x);
            assert!((e + erf(-x)).abs() < 1e-15);
            assert!(e >= prev);
            prev = e;
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!(close(std_normal_cdf(0.0), 0.5, REL));
        assert!(close(std_normal_cdf(1.0), 0.841_344_746_068_542_9, 1e-12));
        assert!(close(std_normal_cdf(-1.0), 0.158_655_253_931_457_07, 1e-12));
        assert!(close(std_normal_cdf(1.96), 0.975_002_104_851_780_1, 1e-12));
        assert!(close(
            std_normal_cdf(-3.0),
            1.349_898_031_630_094_6e-3,
            1e-10
        ));
    }

    #[test]
    fn normal_quantile_round_trips_cdf() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = std_normal_quantile(p);
            assert!(
                (std_normal_cdf(x) - p).abs() < 1e-12,
                "round trip failed at p={p}"
            );
        }
    }

    #[test]
    fn normal_quantile_known_points() {
        assert!(std_normal_quantile(0.5).abs() < 1e-14);
        assert!(close(
            std_normal_quantile(0.975),
            1.959_963_984_540_054,
            1e-9
        ));
        assert!(close(
            std_normal_quantile(0.99),
            2.326_347_874_040_841,
            1e-9
        ));
        // Deep tail
        assert!(close(
            std_normal_quantile(1e-10),
            -6.361_340_902_404_056,
            1e-8
        ));
    }

    #[test]
    fn normal_quantile_edge_cases() {
        assert!(std_normal_quantile(0.0).is_infinite());
        assert!(std_normal_quantile(1.0).is_infinite());
        assert!(std_normal_quantile(-0.1).is_nan());
        assert!(std_normal_quantile(1.1).is_nan());
        assert!(std_normal_quantile(f64::NAN).is_nan());
    }

    #[test]
    fn ln_gamma_integers_match_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            // ln Γ(n) = ln (n-1)!
            assert!(close(ln_gamma(n as f64), fact.ln(), 1e-10), "lnGamma({n})");
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // Γ(3/2) = √π/2
        assert!(close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12
        ));
    }

    #[test]
    fn incomplete_gamma_complementarity_and_bounds() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.01, 0.5, 1.0, 2.0, 10.0, 60.0] {
                let p = reg_lower_gamma(a, x);
                let q = reg_upper_gamma(a, x);
                assert!((p + q - 1.0).abs() < 1e-12, "P+Q at a={a},x={x}");
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!(close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-12));
        }
    }

    #[test]
    fn chi_square_cdf_matches_known_values() {
        // χ²(k=2) is Exp(1/2): CDF(x) = 1 − e^{−x/2}
        for &x in &[0.5, 1.0, 5.0] {
            assert!(close(
                chi_square_cdf(2.0, x),
                1.0 - (-x / 2.0f64).exp(),
                1e-12
            ));
        }
        // Median of χ²₁ ≈ 0.454936
        assert!((chi_square_cdf(1.0, 0.454_936_423_119_572_3) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pdf_integrates_to_cdf_increment() {
        // Trapezoid check: ∫φ over [0,1] ≈ Φ(1) − Φ(0)
        let steps = 10_000;
        let mut acc = 0.0;
        for i in 0..steps {
            let x0 = i as f64 / steps as f64;
            let x1 = (i + 1) as f64 / steps as f64;
            acc += 0.5 * (std_normal_pdf(x0) + std_normal_pdf(x1)) * (x1 - x0);
        }
        assert!((acc - (std_normal_cdf(1.0) - 0.5)).abs() < 1e-9);
    }

    #[test]
    fn nan_propagation() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
        assert!(ln_gamma(-1.0).is_nan());
        assert!(reg_lower_gamma(0.0, 1.0).is_nan());
        assert!(reg_lower_gamma(1.0, -1.0).is_nan());
    }
}
