//! Order statistics: quantiles, median, and the median absolute deviation.
//!
//! The MAD backs the robustness ablation: the paper observes (§5.2) that
//! sample variance is "very sensitive to outliers" under congested
//! cross-traffic, losing detection rate to the entropy feature. A robust
//! scale feature (MAD) makes that comparison concrete in the `ablations`
//! bench.

use crate::error::StatsError;
use crate::Result;

/// Linear-interpolated quantile of *unsorted* data, `q ∈ [0, 1]`
/// (type-7 / NumPy default definition).
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData {
            what: "quantile",
            needed: 1,
            got: 0,
        });
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(StatsError::InvalidProbability {
            what: "quantile level",
            value: q,
        });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Ok(quantile_of_sorted(&sorted, q))
}

/// Quantile of already-sorted data (no validation, used on hot paths).
pub(crate) fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Median absolute deviation `MAD = median(|xᵢ − median(x)|)`.
///
/// Scaled by 1.4826 it is a consistent estimator of σ for normal data;
/// this function returns the *raw* MAD — apply
/// [`MAD_NORMAL_CONSISTENCY`] for the σ-consistent version.
pub fn median_abs_deviation(xs: &[f64]) -> Result<f64> {
    let med = median(xs)?;
    let devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&devs)
}

/// Multiply a raw MAD by this to estimate σ under normality.
pub const MAD_NORMAL_CONSISTENCY: f64 = 1.482_602_218_505_602;

/// Interquartile range `Q3 − Q1`.
pub fn interquartile_range(xs: &[f64]) -> Result<f64> {
    Ok(quantile(xs, 0.75)? - quantile(xs, 0.25)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::Normal;
    use crate::rng::MasterSeed;

    #[test]
    fn quantiles_of_small_sets() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 2.5);
        // type-7 interpolation: h = 0.25·3 = 0.75 → 1.75
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-15);
    }

    #[test]
    fn quantile_validates_inputs() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[1.0], 1.1).is_err());
        assert!(quantile(&[1.0], f64::NAN).is_err());
        assert_eq!(quantile(&[7.0], 0.3).unwrap(), 7.0);
    }

    #[test]
    fn median_handles_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&xs).unwrap(), 5.0);
    }

    #[test]
    fn mad_estimates_sigma_for_normal_data() {
        let dist = Normal::new(0.0, 2.0).unwrap();
        let mut rng = MasterSeed::new(5).stream(0);
        let xs: Vec<f64> = (0..50_000).map(|_| dist.sample(&mut rng)).collect();
        let sigma_hat = median_abs_deviation(&xs).unwrap() * MAD_NORMAL_CONSISTENCY;
        assert!((sigma_hat - 2.0).abs() < 0.05, "sigma_hat = {sigma_hat}");
    }

    #[test]
    fn mad_is_robust_to_outliers() {
        let mut xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        let clean = median_abs_deviation(&xs).unwrap();
        xs.push(1e9);
        let dirty = median_abs_deviation(&xs).unwrap();
        assert!((dirty - clean).abs() / clean < 0.05);
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert!((interquartile_range(&xs).unwrap() - 50.0).abs() < 1e-12);
    }
}
