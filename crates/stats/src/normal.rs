//! The normal distribution `N(µ, σ²)`.
//!
//! The paper's analytical model (Sec. 4.1.2) assumes every PIAT component
//! is normal: the VIT timer interval `T ~ N(τ, σ_T²)`, the gateway
//! disturbance `δ_gw ~ N(0, σ_gw²)` and the network disturbance
//! `δ_net ~ N(0, σ_net²)`. This module provides the pdf/cdf/quantile and
//! exact sampling used everywhere those assumptions appear.

use crate::error::{ensure_finite, ensure_positive};
use crate::special::{std_normal_cdf, std_normal_pdf, std_normal_quantile};
use crate::Result;
use rand_core::RngCore;

/// A normal (Gaussian) distribution with mean `mu` and standard deviation
/// `sigma > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create `N(mu, sigma²)`. Fails if `mu` is not finite or `sigma ≤ 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        ensure_finite("normal mean", mu)?;
        ensure_positive("normal sigma", sigma)?;
        Ok(Self { mu, sigma })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Mean µ.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Standard deviation σ.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Variance σ².
    #[inline]
    pub fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    /// Probability density function at `x`.
    #[inline]
    pub fn pdf(&self, x: f64) -> f64 {
        std_normal_pdf((x - self.mu) / self.sigma) / self.sigma
    }

    /// Natural log of the pdf at `x` (numerically stable in the tails).
    #[inline]
    pub fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        -0.5 * z * z - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    /// Cumulative distribution function at `x`.
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`.
    #[inline]
    pub fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * std_normal_quantile(p)
    }

    /// Differential entropy `½·ln(2πe·σ²)` in nats.
    ///
    /// This identity is what lets Theorem 3 relate sample entropy to the
    /// PIAT variance ratio r.
    #[inline]
    pub fn entropy(&self) -> f64 {
        0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E * self.variance()).ln()
    }

    /// Draw one sample using the Marsaglia polar method.
    ///
    /// The polar method produces pairs; we deliberately discard the second
    /// variate instead of caching it so the sampler stays stateless — a
    /// stateless sampler keeps component RNG streams independent of call
    /// interleaving, which the reproducibility tests rely on.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * standard_normal_sample(rng)
    }

    /// Fill `out` with iid samples.
    pub fn sample_into<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }
}

/// One standard-normal variate via the Marsaglia polar method.
pub fn standard_normal_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * unit_f64(rng) - 1.0;
        let v = 2.0 * unit_f64(rng) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Uniform `f64` in `[0, 1)` from any `RngCore` (53-bit mantissa).
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MasterSeed;
    use crate::StatsError;

    #[test]
    fn constructor_validates() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(matches!(
            Normal::new(0.0, f64::INFINITY),
            Err(StatsError::NonFinite { .. })
        ));
        assert!(Normal::new(5.0, 2.0).is_ok());
    }

    #[test]
    fn pdf_peaks_at_mean_and_is_symmetric() {
        let n = Normal::new(3.0, 2.0).unwrap();
        assert!(n.pdf(3.0) > n.pdf(4.0));
        assert!((n.pdf(3.0 + 1.3) - n.pdf(3.0 - 1.3)).abs() < 1e-15);
        // Peak value = 1/(σ√(2π))
        let want = 1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt());
        assert!((n.pdf(3.0) - want).abs() < 1e-15);
    }

    #[test]
    fn ln_pdf_matches_pdf() {
        let n = Normal::new(-1.0, 0.5).unwrap();
        for &x in &[-3.0, -1.0, 0.0, 2.0] {
            assert!((n.ln_pdf(x) - n.pdf(x).ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let n = Normal::new(10.0e-3, 6.0e-6).unwrap(); // the paper's 10ms timer scale
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn entropy_matches_closed_form() {
        // H(N(µ,σ²)) = ½ ln(2πeσ²); for σ=1: ≈ 1.4189385332046727
        let n = Normal::new(0.0, 1.0).unwrap();
        assert!((n.entropy() - 1.418_938_533_204_672_7).abs() < 1e-14);
        // Entropy grows with ln σ: doubling σ adds ln 2.
        let w = Normal::new(0.0, 2.0).unwrap();
        assert!((w.entropy() - n.entropy() - (2.0f64).ln()).abs() < 1e-14);
    }

    #[test]
    fn sample_moments_converge() {
        let n = Normal::new(4.0, 3.0).unwrap();
        let mut rng = MasterSeed::new(7).stream(0);
        let count = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..count {
            let x = n.sample(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / count as f64;
        let var = sum2 / count as f64 - mean * mean;
        assert!((mean - 4.0).abs() < 0.03, "mean={mean}");
        assert!((var - 9.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn sampled_cdf_is_uniform() {
        // Kolmogorov–Smirnov-ish check: max |F̂ − F| small.
        let n = Normal::new(0.0, 1.0).unwrap();
        let mut rng = MasterSeed::new(21).stream(5);
        let count = 50_000;
        let mut us: Vec<f64> = (0..count).map(|_| n.cdf(n.sample(&mut rng))).collect();
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut dmax: f64 = 0.0;
        for (i, u) in us.iter().enumerate() {
            let emp = (i + 1) as f64 / count as f64;
            dmax = dmax.max((emp - u).abs());
        }
        // KS critical value at alpha=0.001 is ~1.95/sqrt(n) ≈ 0.0087
        assert!(dmax < 0.01, "KS statistic = {dmax}");
    }

    #[test]
    fn sample_into_fills_buffer() {
        let n = Normal::standard();
        let mut rng = MasterSeed::new(3).stream(1);
        let mut buf = [0.0; 64];
        n.sample_into(&mut rng, &mut buf);
        assert!(buf.iter().any(|&x| x != 0.0));
    }
}
