//! Deterministic random-number streams.
//!
//! Experiments in this workspace must be reproducible bit-for-bit: the same
//! master seed has to produce the same detection rates no matter how many
//! worker threads a sweep uses. We therefore give every simulation
//! component its own *substream* derived from `(master seed, stream id)`
//! with SplitMix64, and drive each substream with xoshiro256★★ — a fast,
//! well-tested generator whose output is stable across platforms and crate
//! versions (unlike `StdRng`, whose algorithm is allowed to change).
//!
//! ```
//! use linkpad_stats::rng::MasterSeed;
//! use rand::Rng;
//!
//! let seed = MasterSeed::new(42);
//! let mut gw_rng = seed.stream(7);     // e.g. the sender gateway
//! let mut net_rng = seed.stream(8);    // e.g. a router
//! let a: f64 = gw_rng.random();
//! let b: f64 = net_rng.random();
//! assert_ne!(a, b);
//! // Re-derive the same stream: identical sequence.
//! let mut again = seed.stream(7);
//! assert_eq!(a, again.random::<f64>());
//! ```

use rand_core::{RngCore, SeedableRng};

/// SplitMix64 step — used for seeding and stream derivation.
///
/// This is the generator recommended by the xoshiro authors for expanding
/// a small seed into full generator state.
#[inline]
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// Finalizer of SplitMix64: turns a state word into an output word.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256★★ pseudo-random generator (Blackman & Vigna, 2018).
///
/// Period 2²⁵⁶ − 1, passes BigCrush, four words of state, ~0.8 ns per
/// `next_u64` on modern x86-64. Implements [`rand_core::RngCore`] so it
/// plugs into the whole `rand` distribution machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Construct from four raw state words. At least one must be non-zero;
    /// an all-zero request is silently remapped to a fixed non-zero state
    /// (the all-zero state is a fixed point of the transition function).
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            // Derived from SplitMix64(0xDEADBEEF..): any fixed non-zero
            // state is acceptable; zero state would generate only zeros.
            Self {
                s: [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ],
            }
        } else {
            Self { s }
        }
    }

    /// Seed via SplitMix64 expansion of a single `u64`, as recommended by
    /// the xoshiro reference implementation.
    pub fn from_u64(seed: u64) -> Self {
        let mut st = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            splitmix64(&mut st);
            *w = splitmix64_mix(st);
        }
        Self::from_state(s)
    }

    /// The 2¹²⁸-step jump function: advances the generator as if 2¹²⁸
    /// `next_u64` calls had been made. Used to create non-overlapping
    /// sequences from one seed.
    pub fn jump(&mut self) {
        // Constants from the xoshiro256** reference implementation.
        const JUMP_REF: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for &jump in JUMP_REF.iter() {
            for b in 0..64 {
                if (jump & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Sample a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *w = u64::from_le_bytes(b);
        }
        Self::from_state(s)
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::from_u64(state)
    }
}

/// A master seed from which independent, reproducible substreams are
/// derived by stream id.
///
/// Stream derivation hashes `(seed, id)` through SplitMix64 twice, so
/// nearby ids (0, 1, 2, …) yield statistically unrelated generators. Every
/// simulation component, worker task, and replication in the workspace is
/// handed its own id; results are therefore independent of scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MasterSeed(u64);

impl MasterSeed {
    /// Wrap a raw seed value.
    pub const fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// The raw seed value.
    pub const fn value(&self) -> u64 {
        self.0
    }

    /// Derive the generator for substream `id`.
    pub fn stream(&self, id: u64) -> Xoshiro256StarStar {
        // Two rounds of mixing decorrelate (seed, id) pairs.
        let a = splitmix64_mix(self.0 ^ 0x6A09_E667_F3BC_C909u64.wrapping_mul(id | 1));
        let b = splitmix64_mix(a.wrapping_add(id).wrapping_add(0x9E37_79B9_7F4A_7C15));
        Xoshiro256StarStar::from_u64(a ^ b.rotate_left(17))
    }

    /// Derive a child master seed (for nested replication structures:
    /// e.g. replication k of a sweep gets `seed.child(k)` and then hands
    /// out per-component streams itself).
    pub fn child(&self, id: u64) -> MasterSeed {
        MasterSeed(splitmix64_mix(self.0.rotate_left(23).wrapping_add(
            splitmix64_mix(id.wrapping_add(0xABCD_EF01_2345_6789)),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn xoshiro_matches_reference_vector() {
        // First three outputs of the public C reference implementation of
        // xoshiro256** seeded with state {1, 2, 3, 4}.
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 11520);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1_509_978_240);
    }

    #[test]
    fn xoshiro_regression_sequence_is_stable() {
        let mut rng = Xoshiro256StarStar::from_u64(42);
        let v: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = Xoshiro256StarStar::from_u64(42);
        let w: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(v, w, "same seed must give the same sequence");
        let mut rng3 = Xoshiro256StarStar::from_u64(43);
        let u: Vec<u64> = (0..4).map(|_| rng3.next_u64()).collect();
        assert_ne!(v, u, "different seeds must differ");
    }

    #[test]
    fn zero_state_is_remapped() {
        let mut rng = Xoshiro256StarStar::from_state([0; 4]);
        // Must not be stuck at zero.
        let outputs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0));
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_is_near_half() {
        let mut rng = Xoshiro256StarStar::from_u64(123);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = Xoshiro256StarStar::from_u64(9);
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} produced all zeros");
            }
        }
    }

    #[test]
    fn jump_produces_disjoint_looking_streams() {
        let mut a = Xoshiro256StarStar::from_u64(5);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert!(xs.iter().all(|x| !ys.contains(x)));
    }

    #[test]
    fn master_seed_streams_are_reproducible_and_distinct() {
        let seed = MasterSeed::new(1234);
        let mut s0 = seed.stream(0);
        let mut s0b = seed.stream(0);
        let mut s1 = seed.stream(1);
        let a: Vec<u64> = (0..16).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| s0b.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| s1.next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn adjacent_stream_ids_are_decorrelated() {
        // Crude correlation check between streams id and id+1.
        let seed = MasterSeed::new(99);
        let mut x = seed.stream(10);
        let mut y = seed.stream(11);
        let n = 20_000;
        let mut dot = 0.0;
        for _ in 0..n {
            let a = x.next_f64() - 0.5;
            let b = y.next_f64() - 0.5;
            dot += a * b;
        }
        let corr = dot / n as f64 / (1.0 / 12.0);
        assert!(corr.abs() < 0.05, "corr = {corr}");
    }

    #[test]
    fn child_seeds_differ_from_parent() {
        let seed = MasterSeed::new(7);
        assert_ne!(seed.child(0), seed);
        assert_ne!(seed.child(0), seed.child(1));
        // Children are deterministic.
        assert_eq!(seed.child(3), seed.child(3));
    }

    #[test]
    fn works_with_rand_traits() {
        let seed = MasterSeed::new(11);
        let mut rng = seed.stream(0);
        let x: f64 = rng.random_range(5.0..6.0);
        assert!((5.0..6.0).contains(&x));
        let k: u32 = rng.random_range(0..10);
        assert!(k < 10);
    }
}
