//! # linkpad-stats
//!
//! Statistics substrate for the `linkpad` reproduction of Fu et al.,
//! *"Analytical and Empirical Analysis of Countermeasures to Traffic
//! Analysis Attacks"* (ICPP 2003).
//!
//! Everything the padding system, the simulated network, the adversary and
//! the analytical model need from statistics lives here:
//!
//! * [`special`] — error function, log-gamma, regularized incomplete gamma,
//!   inverse normal CDF; the numerical bedrock for the closed-form
//!   detection-rate theorems.
//! * [`normal`] — the normal distribution (pdf/cdf/quantile/sampling). The
//!   paper models every component of the packet inter-arrival time (PIAT)
//!   decomposition `X = T + δ_gw + δ_net` as normal (eq. 8–15).
//! * [`dist`] — the distribution toolbox used for VIT timer-interval laws
//!   and cross-traffic models (uniform, exponential, truncated normal,
//!   log-normal, Pareto, mixtures).
//! * [`moments`] — single-pass (Welford) moment accumulation with parallel
//!   merge, sample mean/variance (the adversary's first two features,
//!   eq. 17 and 19), and autocovariance diagnostics.
//! * [`histogram`] — fixed-bin-width histograms and the robust Moddemeijer
//!   entropy estimator `Ĥ = −Σ (kᵢ/n)·ln(kᵢ/n)` (paper eq. 24–25, the
//!   adversary's third feature).
//! * [`kde`] — Gaussian kernel density estimation with Silverman's
//!   bandwidth; the adversary trains class-conditional feature densities
//!   with it (paper §3.3 step 2).
//! * [`rng`] — deterministic xoshiro256★★ random streams with stable
//!   per-component substreams so whole experiments are reproducible
//!   bit-for-bit regardless of thread interleaving.
//! * [`quantiles`] — order statistics, median, MAD (used by the robustness
//!   ablation: the paper remarks that sample variance is outlier-sensitive).
//!
//! The crate is `#![forbid(unsafe_code)]` and allocation-free on its hot
//! paths (moment accumulation, histogram updates, KDE evaluation after
//! construction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Reference constants for special functions are kept at full published
// precision even where f64 rounds them.
#![allow(clippy::excessive_precision)]

pub mod dist;
pub mod error;
pub mod histogram;
pub mod kde;
pub mod moments;
pub mod normal;
pub mod quantiles;
pub mod rng;
pub mod special;

pub use dist::{
    Categorical, ContinuousDist, Deterministic, Exponential, LogNormal, Mixture, Pareto,
    TruncatedNormal, Uniform,
};
pub use error::StatsError;
pub use histogram::{FixedWidthHistogram, HistogramSpec};
pub use kde::GaussianKde;
pub use moments::{sample_mean, sample_variance, RunningMoments};
pub use normal::Normal;
pub use quantiles::{median, median_abs_deviation, quantile};
pub use rng::{MasterSeed, Xoshiro256StarStar};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
