//! Fixed-bin-width histograms and the robust histogram entropy estimator.
//!
//! The paper's third adversary feature is **sample entropy**, estimated
//! with the histogram method of Moddemeijer (1989), eq. 24:
//!
//! ```text
//! Ĥ ≈ −Σᵢ (kᵢ/n)·ln(kᵢ/n) + ln Δh
//! ```
//!
//! where `kᵢ` is the count in bin `i` and `Δh` the bin width. When a
//! constant bin width is used throughout an experiment the `ln Δh` term is
//! a constant offset that cannot influence the Bayes classification, so
//! the paper drops it (eq. 25). [`FixedWidthHistogram::entropy`] computes
//! eq. 25 and [`FixedWidthHistogram::differential_entropy`] computes
//! eq. 24.
//!
//! The estimator is *robust* in the paper's sense: outliers land in
//! otherwise-empty bins with tiny probability weight `kᵢ/n`, so they
//! barely move `Ĥ` — unlike the sample variance, which they dominate
//! quadratically. The `ablations` bench demonstrates exactly this.

use crate::error::{ensure_finite, ensure_positive, StatsError};
use crate::Result;
use std::collections::BTreeMap;

/// Specification of a fixed-width binning: an origin and a bin width.
///
/// Bin `i` covers `[origin + i·Δh, origin + (i+1)·Δh)`; `i` may be
/// negative. Keeping the spec separate from the histogram lets an
/// experiment guarantee that *every* sample in a sweep is binned
/// identically — the precondition for dropping the `ln Δh` term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSpec {
    origin: f64,
    bin_width: f64,
}

impl HistogramSpec {
    /// Create a spec with the given origin and bin width (> 0).
    pub fn new(origin: f64, bin_width: f64) -> Result<Self> {
        ensure_finite("histogram origin", origin)?;
        ensure_positive("histogram bin width", bin_width)?;
        Ok(Self { origin, bin_width })
    }

    /// Bin index for a value.
    #[inline]
    pub fn bin_of(&self, x: f64) -> i64 {
        ((x - self.origin) / self.bin_width).floor() as i64
    }

    /// Left edge of bin `i`.
    #[inline]
    pub fn left_edge(&self, i: i64) -> f64 {
        self.origin + i as f64 * self.bin_width
    }

    /// The bin width Δh.
    #[inline]
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// The origin.
    #[inline]
    pub fn origin(&self) -> f64 {
        self.origin
    }

    /// Build an empty histogram over this binning.
    pub fn empty(&self) -> FixedWidthHistogram {
        FixedWidthHistogram {
            spec: *self,
            counts: BTreeMap::new(),
            total: 0,
        }
    }

    /// Histogram a slice in one call.
    pub fn histogram(&self, xs: &[f64]) -> FixedWidthHistogram {
        let mut h = self.empty();
        h.add_all(xs);
        h
    }
}

/// A sparse fixed-width histogram (bins stored only when occupied).
///
/// Sparse storage matters here: PIAT values cluster within ±tens of µs of
/// the 10 ms timer period, but congested-network outliers can land many
/// thousands of bin-widths away. A dense array would either truncate them
/// (biasing the entropy feature exactly where robustness is the point) or
/// waste megabytes.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedWidthHistogram {
    spec: HistogramSpec,
    counts: BTreeMap<i64, u64>,
    total: u64,
}

impl FixedWidthHistogram {
    /// Insert one observation. Non-finite values are rejected.
    pub fn add(&mut self, x: f64) -> Result<()> {
        ensure_finite("histogram observation", x)?;
        *self.counts.entry(self.spec.bin_of(x)).or_insert(0) += 1;
        self.total += 1;
        Ok(())
    }

    /// Insert a slice of observations, skipping non-finite entries
    /// (returns how many were skipped).
    pub fn add_all(&mut self, xs: &[f64]) -> usize {
        let mut skipped = 0;
        for &x in xs {
            if x.is_finite() {
                *self.counts.entry(self.spec.bin_of(x)).or_insert(0) += 1;
                self.total += 1;
            } else {
                skipped += 1;
            }
        }
        skipped
    }

    /// Total count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of occupied bins.
    pub fn occupied_bins(&self) -> usize {
        self.counts.len()
    }

    /// The binning spec.
    pub fn spec(&self) -> HistogramSpec {
        self.spec
    }

    /// Count in bin `i`.
    pub fn count(&self, i: i64) -> u64 {
        self.counts.get(&i).copied().unwrap_or(0)
    }

    /// Iterate `(bin index, count)` in ascending bin order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.counts.iter().map(|(&i, &c)| (i, c))
    }

    /// Iterate `(bin center, estimated density)` — for plotting the PIAT
    /// PDFs of Fig. 4(a).
    pub fn density_points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.total.max(1) as f64;
        let w = self.spec.bin_width;
        self.counts
            .iter()
            .map(move |(&i, &c)| (self.spec.left_edge(i) + 0.5 * w, c as f64 / (n * w)))
    }

    /// The paper's eq. 25: `Ĥ = −Σ (kᵢ/n)·ln(kᵢ/n)` in nats.
    ///
    /// This is the discrete entropy of the binned empirical distribution;
    /// it omits the constant `ln Δh` offset of the differential-entropy
    /// estimator, which cancels in Bayes classification with a shared
    /// binning. Errors when the histogram is empty.
    pub fn entropy(&self) -> Result<f64> {
        if self.total == 0 {
            return Err(StatsError::InsufficientData {
                what: "histogram entropy",
                needed: 1,
                got: 0,
            });
        }
        let n = self.total as f64;
        let mut h = 0.0;
        for &c in self.counts.values() {
            let p = c as f64 / n;
            h -= p * p.ln();
        }
        Ok(h)
    }

    /// The paper's eq. 24: differential entropy estimate
    /// `Ĥ + ln Δh` in nats.
    pub fn differential_entropy(&self) -> Result<f64> {
        Ok(self.entropy()? + self.spec.bin_width.ln())
    }

    /// Mode bin (index of the maximum count); `None` when empty.
    pub fn mode_bin(&self) -> Option<i64> {
        self.counts.iter().max_by_key(|(_, &c)| c).map(|(&i, _)| i)
    }
}

/// Entropy (eq. 25) of a slice with a given binning, in one call.
pub fn histogram_entropy(spec: &HistogramSpec, xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::InsufficientData {
            what: "histogram entropy",
            needed: 1,
            got: 0,
        });
    }
    spec.histogram(xs).entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::Normal;
    use crate::rng::MasterSeed;

    fn spec(origin: f64, w: f64) -> HistogramSpec {
        HistogramSpec::new(origin, w).unwrap()
    }

    #[test]
    fn spec_validates() {
        assert!(HistogramSpec::new(0.0, 0.0).is_err());
        assert!(HistogramSpec::new(0.0, -1.0).is_err());
        assert!(HistogramSpec::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn binning_is_half_open() {
        let s = spec(0.0, 1.0);
        assert_eq!(s.bin_of(0.0), 0);
        assert_eq!(s.bin_of(0.999_999), 0);
        assert_eq!(s.bin_of(1.0), 1);
        assert_eq!(s.bin_of(-0.1), -1);
        assert_eq!(s.left_edge(3), 3.0);
        assert_eq!(s.left_edge(-2), -2.0);
    }

    #[test]
    fn counts_accumulate() {
        let mut h = spec(0.0, 0.5).empty();
        h.add_all(&[0.1, 0.2, 0.3, 0.6, 2.4, 2.4]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(0), 3);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 2);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.occupied_bins(), 3);
        assert_eq!(h.mode_bin(), Some(0));
    }

    #[test]
    fn add_rejects_non_finite_and_add_all_skips() {
        let mut h = spec(0.0, 1.0).empty();
        assert!(h.add(f64::NAN).is_err());
        assert!(h.add(f64::INFINITY).is_err());
        let skipped = h.add_all(&[1.0, f64::NAN, 2.0, f64::NEG_INFINITY]);
        assert_eq!(skipped, 2);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn uniform_bins_give_log_k_entropy() {
        // n points spread evenly across k bins: H = ln k.
        let s = spec(0.0, 1.0);
        let xs: Vec<f64> = (0..800).map(|i| (i % 8) as f64 + 0.5).collect();
        let h = s.histogram(&xs);
        assert!((h.entropy().unwrap() - (8.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn single_bin_gives_zero_entropy() {
        let s = spec(0.0, 10.0);
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(histogram_entropy(&s, &xs).unwrap(), 0.0);
    }

    #[test]
    fn empty_histogram_entropy_is_error() {
        let h = spec(0.0, 1.0).empty();
        assert!(h.entropy().is_err());
        assert!(histogram_entropy(&spec(0.0, 1.0), &[]).is_err());
    }

    #[test]
    fn entropy_is_permutation_invariant() {
        let s = spec(-5.0, 0.3);
        let xs = [0.1, 0.5, -2.0, 3.3, 0.12, 7.0];
        let mut ys = xs;
        ys.reverse();
        assert_eq!(
            histogram_entropy(&s, &xs).unwrap(),
            histogram_entropy(&s, &ys).unwrap()
        );
    }

    #[test]
    fn entropy_is_shift_invariant_when_origin_shifts_too() {
        let xs = [0.13, 0.55, 0.92, 1.41, 1.97];
        let h1 = histogram_entropy(&spec(0.0, 0.25), &xs).unwrap();
        let shifted: Vec<f64> = xs.iter().map(|x| x + 100.0).collect();
        let h2 = histogram_entropy(&spec(100.0, 0.25), &shifted).unwrap();
        assert!((h1 - h2).abs() < 1e-12);
    }

    #[test]
    fn differential_entropy_approaches_normal_entropy() {
        // For many samples from N(0,1) with fine bins, eq. 24 ≈ ½ln(2πe).
        let n = Normal::standard();
        let mut rng = MasterSeed::new(11).stream(0);
        let xs: Vec<f64> = (0..60_000).map(|_| n.sample(&mut rng)).collect();
        let s = spec(0.0, 0.05);
        let h = s.histogram(&xs).differential_entropy().unwrap();
        assert!(
            (h - n.entropy()).abs() < 0.02,
            "estimated {h}, want {}",
            n.entropy()
        );
    }

    #[test]
    fn entropy_orders_by_spread_like_theory() {
        // Larger σ ⇒ larger estimated entropy (same binning). This is the
        // monotonicity Theorem 3 exploits.
        let mut rng = MasterSeed::new(12).stream(0);
        let narrow = Normal::new(0.0, 1.0).unwrap();
        let wide = Normal::new(0.0, 1.5).unwrap();
        let xs: Vec<f64> = (0..20_000).map(|_| narrow.sample(&mut rng)).collect();
        let ys: Vec<f64> = (0..20_000).map(|_| wide.sample(&mut rng)).collect();
        let s = spec(0.0, 0.1);
        assert!(histogram_entropy(&s, &ys).unwrap() > histogram_entropy(&s, &xs).unwrap());
    }

    #[test]
    fn entropy_is_robust_to_outliers_variance_is_not() {
        // The paper's §4.4 argument, as a test: inject one huge outlier
        // into a tight sample; variance explodes, entropy barely moves.
        let mut rng = MasterSeed::new(13).stream(0);
        let n = Normal::new(10e-3, 5e-6).unwrap();
        let mut xs: Vec<f64> = (0..1000).map(|_| n.sample(&mut rng)).collect();
        let s = spec(10e-3, 2e-6);
        let h_clean = histogram_entropy(&s, &xs).unwrap();
        let v_clean = crate::moments::sample_variance(&xs).unwrap();
        xs.push(0.5); // a 0.5 s outlier — e.g. a retransmission stall
        let h_dirty = histogram_entropy(&s, &xs).unwrap();
        let v_dirty = crate::moments::sample_variance(&xs).unwrap();
        assert!(v_dirty / v_clean > 1000.0, "variance must explode");
        assert!(
            (h_dirty - h_clean).abs() / h_clean < 0.02,
            "entropy moved too much: {h_clean} → {h_dirty}"
        );
    }

    #[test]
    fn density_points_integrate_to_one() {
        let mut rng = MasterSeed::new(14).stream(0);
        let n = Normal::standard();
        let xs: Vec<f64> = (0..10_000).map(|_| n.sample(&mut rng)).collect();
        let s = spec(0.0, 0.1);
        let h = s.histogram(&xs);
        let integral: f64 = h.density_points().map(|(_, d)| d * 0.1).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }
}
