//! Property-based tests for the statistics substrate.
//!
//! These lock in the invariants the rest of the workspace leans on:
//! monotone CDFs, quantile/CDF round trips, Welford ≡ two-pass moments,
//! entropy invariances, and KDE sanity.

use linkpad_stats::histogram::HistogramSpec;
use linkpad_stats::moments::{sample_mean, sample_variance, RunningMoments};
use linkpad_stats::normal::Normal;
use linkpad_stats::quantiles::{median, quantile};
use linkpad_stats::rng::MasterSeed;
use linkpad_stats::special::{
    erf, erfc, reg_lower_gamma, reg_upper_gamma, std_normal_cdf, std_normal_quantile,
};
use linkpad_stats::GaussianKde;
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e6f64..1e6f64
}

fn small_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(finite_f64(), 2..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn erf_is_bounded_and_odd(x in -30.0f64..30.0) {
        let e = erf(x);
        prop_assert!((-1.0..=1.0).contains(&e));
        prop_assert!((e + erf(-x)).abs() < 1e-12);
    }

    #[test]
    fn erf_erfc_sum_to_one(x in -10.0f64..10.0) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erf_is_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(erf(lo) <= erf(hi) + 1e-15);
    }

    #[test]
    fn normal_cdf_quantile_round_trip(p in 0.0005f64..0.9995) {
        let x = std_normal_quantile(p);
        prop_assert!((std_normal_cdf(x) - p).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_is_monotone(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(std_normal_cdf(lo) <= std_normal_cdf(hi) + 1e-15);
    }

    #[test]
    fn incomplete_gamma_complements(a in 0.1f64..100.0, x in 0.0f64..200.0) {
        let p = reg_lower_gamma(a, x);
        let q = reg_upper_gamma(a, x);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "P={p}");
        prop_assert!((p + q - 1.0).abs() < 1e-10, "P+Q = {}", p + q);
    }

    #[test]
    fn incomplete_gamma_monotone_in_x(a in 0.1f64..50.0, x in 0.0f64..100.0, dx in 0.0f64..10.0) {
        prop_assert!(reg_lower_gamma(a, x) <= reg_lower_gamma(a, x + dx) + 1e-10);
    }

    #[test]
    fn welford_matches_two_pass(xs in small_vec()) {
        let m = RunningMoments::from_slice(&xs);
        let mean = sample_mean(&xs).unwrap();
        prop_assert!((m.mean().unwrap() - mean).abs() <= 1e-9 * (1.0 + mean.abs()));
        let var = sample_variance(&xs).unwrap();
        let scale = 1.0 + var.abs();
        prop_assert!((m.variance().unwrap() - var).abs() <= 1e-6 * scale,
            "welford {} vs two-pass {}", m.variance().unwrap(), var);
    }

    #[test]
    fn welford_merge_is_order_free(xs in small_vec(), split in 1usize..100) {
        let k = split.min(xs.len() - 1);
        let mut left = RunningMoments::from_slice(&xs[..k]);
        let right = RunningMoments::from_slice(&xs[k..]);
        left.merge(&right);
        let whole = RunningMoments::from_slice(&xs);
        prop_assert_eq!(left.count(), whole.count());
        let scale = 1.0 + whole.variance().unwrap().abs();
        prop_assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-6 * scale);
    }

    #[test]
    fn variance_is_non_negative_and_shift_invariant(xs in small_vec(), shift in -1e3f64..1e3) {
        let v = sample_variance(&xs).unwrap();
        prop_assert!(v >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let vs = sample_variance(&shifted).unwrap();
        let scale = 1.0 + v.abs();
        prop_assert!((v - vs).abs() < 1e-6 * scale, "v={v} vs shifted {vs}");
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed(xs in small_vec(), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let lo = quantile(&xs, lo_q).unwrap();
        let hi = quantile(&xs, hi_q).unwrap();
        prop_assert!(lo <= hi);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo >= min && hi <= max);
    }

    #[test]
    fn median_is_between_min_and_max(xs in small_vec()) {
        let m = median(&xs).unwrap();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min && m <= max);
    }

    #[test]
    fn histogram_entropy_bounds(xs in small_vec(), width in 0.001f64..100.0) {
        let spec = HistogramSpec::new(0.0, width).unwrap();
        let h = spec.histogram(&xs).entropy().unwrap();
        // 0 ≤ H ≤ ln(number of occupied bins) ≤ ln n
        prop_assert!(h >= -1e-12);
        let bins = spec.histogram(&xs).occupied_bins() as f64;
        prop_assert!(h <= bins.ln() + 1e-9, "H={h} > ln bins={}", bins.ln());
    }

    #[test]
    fn histogram_total_matches_input_len(xs in small_vec(), width in 0.001f64..10.0) {
        let spec = HistogramSpec::new(-0.5, width).unwrap();
        prop_assert_eq!(spec.histogram(&xs).total(), xs.len() as u64);
    }

    #[test]
    fn master_seed_streams_reproduce(seed in any::<u64>(), id in 0u64..1000) {
        let s = MasterSeed::new(seed);
        let mut a = s.stream(id);
        let mut b = s.stream(id);
        use rand_core::RngCore;
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn normal_sampling_round_trip_cdf_is_uniformish(mu in -100.0f64..100.0, sigma in 0.01f64..100.0, seed in any::<u64>()) {
        let n = Normal::new(mu, sigma).unwrap();
        let mut rng = MasterSeed::new(seed).stream(0);
        let mut below_half = 0usize;
        let total = 200;
        for _ in 0..total {
            if n.cdf(n.sample(&mut rng)) < 0.5 { below_half += 1; }
        }
        // Binomial(200, 0.5): allow ±6σ ≈ ±42.
        prop_assert!((below_half as i64 - 100).abs() < 45, "below_half = {below_half}");
    }
}

proptest! {
    // KDE fitting is costlier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kde_pdf_is_non_negative_everywhere(
        xs in proptest::collection::vec(-100.0f64..100.0, 8..64),
        probe in -200.0f64..200.0,
    ) {
        if let Ok(kde) = GaussianKde::fit(&xs) {
            prop_assert!(kde.pdf(probe) >= 0.0);
            prop_assert!(kde.ln_pdf(probe).is_finite());
        }
    }

    #[test]
    fn kde_cdf_hits_both_limits(xs in proptest::collection::vec(-50.0f64..50.0, 8..64)) {
        if let Ok(kde) = GaussianKde::fit(&xs) {
            prop_assert!(kde.cdf(-1e4) < 1e-9);
            prop_assert!(kde.cdf(1e4) > 1.0 - 1e-9);
        }
    }
}
