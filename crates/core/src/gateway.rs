//! The security gateways GW1 (sender) and GW2 (receiver).
//!
//! Paper §3.2: *"(a) On GW1, incoming payload packets from the sender are
//! placed in a queue. (b) An interrupt-driven timer is set up on GW1.
//! When the timer times out, the interrupt processing routine checks if
//! there is a payload packet in the queue: (1) If there are payload
//! packets, one is removed from the queue and transmitted to GW2;
//! (2) Otherwise, a dummy packet is transmitted to GW2."*
//!
//! [`SenderGateway`] implements that algorithm on top of a
//! [`LinkSchedule`] — a stateless [`PaddingSchedule`](crate::schedule::PaddingSchedule) law (CIT/VIT/
//! constant-rate) or the stateful adaptive-padding machine — and a
//! [`GatewayJitterModel`] (δ_gw). The timer can run in two disciplines:
//!
//! * [`TimerDiscipline::Absolute`] — a periodic interrupt: tick *i* fires
//!   at the nominal instant `Σ T_j`; jitter shifts only the transmission.
//!   PIAT mean is exactly τ for every payload rate (the paper's empirical
//!   observation that the two PIAT distributions share a mean), and PIAT
//!   variance is `σ_T² + 2·Var(δ)`.
//! * [`TimerDiscipline::Relative`] — the timer re-arms after each send,
//!   so blocking delays accumulate into the period and the *mean* PIAT
//!   grows with the payload rate. This is a deliberately flawed variant
//!   kept for the ablation bench: it demonstrates why implementation
//!   details below the model can re-open a side channel the model says is
//!   closed (sample mean becomes a working feature).
//!
//! [`ReceiverGateway`] strips dummies and delivers payload to the
//! protected subnet, completing the end-to-end QoS measurement.

use crate::jitter::GatewayJitterModel;
use crate::schedule::LinkSchedule;
use linkpad_sim::engine::Context;
use linkpad_sim::node::{Node, NodeId};
use linkpad_sim::packet::{FlowId, Packet, PacketKind};
use linkpad_sim::time::{SimDuration, SimTime};
use linkpad_stats::dist::ContinuousDist;
use linkpad_stats::moments::RunningMoments;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Timer re-arming policy of the sender gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerDiscipline {
    /// Periodic interrupt at nominal instants (TimeSys-style RT timer).
    Absolute,
    /// Re-arm relative to the previous (jittered) send — flawed, ablation.
    Relative,
}

const TICK: u64 = 0;

#[derive(Debug, Default)]
struct GatewayStats {
    ticks: u64,
    payload_sent: u64,
    dummy_sent: u64,
    payload_dropped: u64,
    max_queue_len: usize,
    queue_wait: RunningMoments,
    tick_delay: RunningMoments,
}

/// Read handle for sender-gateway instrumentation. Simulations are
/// single-threaded, so stats are shared over `Rc<RefCell<_>>` — plain
/// owned state, no lock or atomic on the per-tick/per-packet path.
#[derive(Debug, Clone)]
pub struct GatewayHandle {
    stats: Rc<RefCell<GatewayStats>>,
}

impl GatewayHandle {
    /// Timer ticks fired so far.
    pub fn ticks(&self) -> u64 {
        self.stats.borrow().ticks
    }
    /// Payload packets transmitted.
    pub fn payload_sent(&self) -> u64 {
        self.stats.borrow().payload_sent
    }
    /// Dummy packets transmitted.
    pub fn dummy_sent(&self) -> u64 {
        self.stats.borrow().dummy_sent
    }
    /// Payload packets dropped at a full gateway queue.
    pub fn payload_dropped(&self) -> u64 {
        self.stats.borrow().payload_dropped
    }
    /// Largest queue backlog observed.
    pub fn max_queue_len(&self) -> usize {
        self.stats.borrow().max_queue_len
    }
    /// Moments of payload queueing delay inside the gateway (seconds) —
    /// the QoS cost of padding.
    pub fn queue_wait_moments(&self) -> RunningMoments {
        self.stats.borrow().queue_wait
    }
    /// Moments of the per-tick disturbance δ_gw actually applied
    /// (seconds) — an oracle view used by calibration tests, *not*
    /// available to the adversary.
    pub fn tick_delay_moments(&self) -> RunningMoments {
        self.stats.borrow().tick_delay
    }
}

/// The sender gateway GW1.
pub struct SenderGateway {
    schedule: LinkSchedule,
    jitter: GatewayJitterModel,
    discipline: TimerDiscipline,
    next: NodeId,
    /// Flow identity of the padded stream this gateway emits. Defaults
    /// to [`FlowId::PADDED`]; aggregate scenarios give each gateway pair
    /// its own flow so a trunk tap can be demultiplexed per flow.
    flow: FlowId,
    /// Constant on-the-wire size of every padded packet (threat model
    /// remark 3: all packets look identical).
    packet_size: u32,
    /// Wire-size law for variable-payload defences: when set, each
    /// emission samples its on-the-wire size (floored to whole bytes,
    /// min 1) instead of using the constant `packet_size`. Deterministic
    /// laws (fixed, MTU-padded) make zero RNG draws.
    size_law: Option<Box<dyn ContinuousDist>>,
    /// Clock start offset: the first timer interval is measured from
    /// `start_phase` instead of simulation time zero, so the tick grid
    /// sits at `start_phase + Σ Tⱼ`. Desynchronized gateway deployments
    /// (ROADMAP: staggered padding clocks) differ only in this phase.
    start_phase: SimDuration,
    /// Optional bound on the payload queue (failure injection / memory
    /// safety in long runs). `None` = unbounded.
    queue_capacity: Option<usize>,
    queue: VecDeque<Packet>,
    arrivals_since_tick: u32,
    stats: Rc<RefCell<GatewayStats>>,
    label: String,
}

impl SenderGateway {
    /// Build GW1 sending padded traffic to `next`. Accepts a
    /// [`PaddingSchedule`](crate::schedule::PaddingSchedule) law or a
    /// full [`LinkSchedule`] (e.g. an adaptive-padding machine) via
    /// `Into`.
    pub fn new(
        next: NodeId,
        schedule: impl Into<LinkSchedule>,
        jitter: GatewayJitterModel,
        packet_size: u32,
    ) -> (GatewayHandle, Self) {
        let stats = Rc::new(RefCell::new(GatewayStats::default()));
        (
            GatewayHandle {
                stats: Rc::clone(&stats),
            },
            Self {
                schedule: schedule.into(),
                jitter,
                discipline: TimerDiscipline::Absolute,
                next,
                flow: FlowId::PADDED,
                packet_size,
                size_law: None,
                start_phase: SimDuration::ZERO,
                queue_capacity: None,
                queue: VecDeque::new(),
                arrivals_since_tick: 0,
                stats,
                label: "gw1".to_string(),
            },
        )
    }

    /// Select the timer discipline (default [`TimerDiscipline::Absolute`]).
    pub fn with_discipline(mut self, discipline: TimerDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Emit the padded stream under a specific flow id (default
    /// [`FlowId::PADDED`]) — used by aggregate many-gateway scenarios.
    pub fn with_flow(mut self, flow: FlowId) -> Self {
        self.flow = flow;
        self
    }

    /// Start the padding clock at an offset: every tick's nominal
    /// instant shifts by exactly `phase` (first tick at `phase + T₁`
    /// instead of `T₁`). The desynchronized-clock knob — aggregate
    /// scenarios give each gateway its own phase so padding clocks stop
    /// sharing one τ grid. Default [`SimDuration::ZERO`] (the historical
    /// synchronized behavior).
    pub fn with_start_phase(mut self, phase: SimDuration) -> Self {
        self.start_phase = phase;
        self
    }

    /// Bound the payload queue; arrivals beyond it are dropped (counted).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Builder-style label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The configured schedule.
    pub fn schedule(&self) -> &LinkSchedule {
        &self.schedule
    }

    /// Install a wire-size law for variable-payload defences (default:
    /// every packet is exactly `packet_size`).
    pub fn with_packet_size_law(mut self, law: Box<dyn ContinuousDist>) -> Self {
        self.size_law = Some(law);
        self
    }

    /// Wire size of the next emission (a draw under a size law, else
    /// the constant configured size).
    #[inline]
    fn sample_size(
        size_law: &Option<Box<dyn ContinuousDist>>,
        packet_size: u32,
        ctx: &mut Context<'_>,
    ) -> u32 {
        match size_law {
            Some(law) => law.sample(ctx.rng).floor().max(1.0) as u32,
            None => packet_size,
        }
    }

    fn emit(&mut self, ctx: &mut Context<'_>) {
        let mut st = self.stats.borrow_mut();
        st.ticks += 1;

        // δ_gw for this tick: driven by payload arrivals during the
        // period just ended (NIC interrupts blocking the timer interrupt).
        let delay = self
            .jitter
            .sample_tick_delay(self.arrivals_since_tick, ctx.rng);
        self.arrivals_since_tick = 0;
        st.tick_delay.push(delay);

        // Fixed pipeline offset keeps the (possibly negative) zero-mean
        // jitter causal; being constant, it shifts every timestamp equally
        // and is invisible in inter-arrival times.
        let send_delay = (self.jitter.pipeline_offset() + delay).max(0.0);

        // Per-emission draw order: tick δ (above), wire size, next
        // interval (below) — documented so determinism tests can reason
        // about the RNG stream.
        let size = Self::sample_size(&self.size_law, self.packet_size, ctx);
        let out = if let Some(payload) = self.queue.pop_front() {
            st.payload_sent += 1;
            st.queue_wait
                .push(ctx.now().saturating_since(payload.enqueued).as_secs_f64());
            let mut p = ctx.spawn_packet(self.flow, PacketKind::Payload, size);
            // Preserve when the payload entered the gateway so the far
            // sink can measure end-to-end padding delay.
            p.enqueued = payload.enqueued;
            p
        } else {
            st.dummy_sent += 1;
            ctx.spawn_packet(self.flow, PacketKind::Dummy, size)
        };
        drop(st);

        ctx.send_after(SimDuration::from_secs_f64(send_delay), self.next, out);

        // Arm the next tick.
        let interval = self.schedule.next_interval_secs(ctx.rng);
        let rearm = match self.discipline {
            TimerDiscipline::Absolute => interval,
            TimerDiscipline::Relative => interval + send_delay,
        };
        ctx.schedule_timer(SimDuration::from_secs_f64(rearm), TICK);
    }
}

impl Node for SenderGateway {
    fn on_packet(&mut self, mut packet: Packet, ctx: &mut Context<'_>) {
        // A payload packet from the protected subnet enters the queue.
        self.arrivals_since_tick = self.arrivals_since_tick.saturating_add(1);
        // Reactive adaptive padding opens a fresh burst on client
        // traffic (no-op for laws and non-reactive machines).
        self.schedule.notify_client_arrival();
        packet.enqueued = ctx.now();
        let mut st = self.stats.borrow_mut();
        if self.queue_capacity.is_none_or(|cap| self.queue.len() < cap) {
            self.queue.push_back(packet);
            st.max_queue_len = st.max_queue_len.max(self.queue.len());
        } else {
            st.payload_dropped += 1;
        }
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let first = self.schedule.next_interval_secs(ctx.rng);
        ctx.schedule_timer(
            self.start_phase
                .saturating_add(SimDuration::from_secs_f64(first)),
            TICK,
        );
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_>) {
        debug_assert_eq!(tag, TICK);
        self.emit(ctx);
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.arrivals_since_tick = 0;
        self.schedule.reset();
        *self.stats.borrow_mut() = GatewayStats::default();
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[derive(Debug, Default)]
struct ReceiverStats {
    payload_delivered: u64,
    dummies_stripped: u64,
    unexpected: u64,
    end_to_end_delay: RunningMoments,
    last_delivery: Option<SimTime>,
}

/// Read handle for receiver-gateway instrumentation (single-threaded
/// shared state, like [`GatewayHandle`]).
#[derive(Debug, Clone)]
pub struct ReceiverHandle {
    stats: Rc<RefCell<ReceiverStats>>,
}

impl ReceiverHandle {
    /// Payload packets delivered into the protected subnet.
    pub fn payload_delivered(&self) -> u64 {
        self.stats.borrow().payload_delivered
    }
    /// Dummy packets identified and removed.
    pub fn dummies_stripped(&self) -> u64 {
        self.stats.borrow().dummies_stripped
    }
    /// Packets that were neither padded payload nor dummies (should be 0
    /// in a correct topology).
    pub fn unexpected(&self) -> u64 {
        self.stats.borrow().unexpected
    }
    /// End-to-end payload delay moments (enqueue at GW1 → delivery by
    /// GW2), seconds.
    pub fn end_to_end_delay_moments(&self) -> RunningMoments {
        self.stats.borrow().end_to_end_delay
    }
}

/// The receiver gateway GW2: strips padding, delivers payload.
pub struct ReceiverGateway {
    /// Where decrypted payload goes (`None` = terminate here).
    inner: Option<NodeId>,
    /// Flow identity of the padded stream this gateway terminates.
    flow: FlowId,
    stats: Rc<RefCell<ReceiverStats>>,
    label: String,
}

impl ReceiverGateway {
    /// Build GW2, forwarding payload to `inner` (e.g. the subnet-B sink).
    pub fn new(inner: Option<NodeId>) -> (ReceiverHandle, Self) {
        let stats = Rc::new(RefCell::new(ReceiverStats::default()));
        (
            ReceiverHandle {
                stats: Rc::clone(&stats),
            },
            Self {
                inner,
                flow: FlowId::PADDED,
                stats,
                label: "gw2".to_string(),
            },
        )
    }

    /// Terminate a specific flow id (default [`FlowId::PADDED`]) —
    /// pairs with [`SenderGateway::with_flow`] in aggregate scenarios.
    pub fn with_flow(mut self, flow: FlowId) -> Self {
        self.flow = flow;
        self
    }

    /// Builder-style label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl Node for ReceiverGateway {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let mut st = self.stats.borrow_mut();
        match packet.kind {
            PacketKind::Payload if packet.flow == self.flow => {
                st.payload_delivered += 1;
                st.end_to_end_delay
                    .push(ctx.now().saturating_since(packet.enqueued).as_secs_f64());
                st.last_delivery = Some(ctx.now());
                drop(st);
                if let Some(inner) = self.inner {
                    ctx.send_now(inner, packet);
                }
            }
            PacketKind::Dummy if packet.flow == self.flow => {
                st.dummies_stripped += 1;
            }
            _ => {
                st.unexpected += 1;
            }
        }
    }

    fn reset(&mut self) {
        *self.stats.borrow_mut() = ReceiverStats::default();
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::PaddingSchedule;
    use linkpad_sim::engine::SimBuilder;
    use linkpad_sim::sink::Sink;
    use linkpad_sim::source::DistSource;
    use linkpad_sim::tap::{Tap, TapHandle};
    use linkpad_stats::dist::Deterministic;
    use linkpad_stats::moments::{sample_mean, sample_variance};
    use linkpad_stats::rng::MasterSeed;

    /// Build source(rate pps) → GW1(schedule) → tap → GW2 → sink and run.
    fn run_padded(
        seed: u64,
        rate_pps: f64,
        schedule: PaddingSchedule,
        discipline: TimerDiscipline,
        secs: f64,
    ) -> (TapHandle, GatewayHandle, ReceiverHandle) {
        let mut b = SimBuilder::new(MasterSeed::new(seed));
        let (_sink_handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let (rx_handle, rx) = ReceiverGateway::new(Some(sink_id));
        let rx_id = b.add_node(Box::new(rx));
        let (tap_handle, tap) = Tap::on_padded_flow(Some(rx_id));
        let tap_id = b.add_node(Box::new(tap));
        let (gw_handle, gw) =
            SenderGateway::new(tap_id, schedule, GatewayJitterModel::calibrated(), 500);
        let gw_id = b.add_node(Box::new(gw.with_discipline(discipline)));
        b.add_node(Box::new(DistSource::new(
            gw_id,
            FlowId::PADDED,
            PacketKind::Payload,
            Box::new(Deterministic::new(1.0 / rate_pps).unwrap()),
            Box::new(Deterministic::new(500.0).unwrap()),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(secs));
        (tap_handle, gw_handle, rx_handle)
    }

    #[test]
    fn cit_emits_one_packet_per_tick() {
        let (tap, gw, _rx) = run_padded(
            1,
            10.0,
            PaddingSchedule::cit(0.010).unwrap(),
            TimerDiscipline::Absolute,
            10.0,
        );
        // 10 s / 10 ms = 1000 ticks (first at t=10ms).
        assert_eq!(gw.ticks(), 1000);
        // The final tick's packet may still be inside the µs-scale send
        // pipeline when the run ends.
        let seen = tap.count() as u64;
        assert!(
            gw.ticks() - seen <= 1,
            "tap saw {seen} of {} ticks",
            gw.ticks()
        );
    }

    #[test]
    fn padding_mix_matches_rates() {
        let (tap, gw, rx) = run_padded(
            2,
            10.0,
            PaddingSchedule::cit(0.010).unwrap(),
            TimerDiscipline::Absolute,
            20.0,
        );
        // 10 pps payload on a 100 pps padding clock: ~10% payload.
        let payload = gw.payload_sent() as f64;
        let dummy = gw.dummy_sent() as f64;
        assert!((payload / (payload + dummy) - 0.1).abs() < 0.01);
        // Receiver strips all dummies, delivers all payload (one packet
        // may still be in flight at the simulation boundary).
        assert!(gw.payload_sent() - rx.payload_delivered() <= 1);
        assert!(gw.dummy_sent() - rx.dummies_stripped() <= 1);
        assert_eq!(rx.unexpected(), 0);
        let (p, d, c) = tap.kind_counts();
        assert!(gw.payload_sent() - p <= 1);
        assert!(gw.dummy_sent() - d <= 1);
        assert_eq!(c, 0);
    }

    #[test]
    fn absolute_discipline_keeps_piat_mean_at_tau_for_both_rates() {
        // The paper's empirical fact (Fig. 4a): both rate classes share
        // the same PIAT mean. This is what kills the sample-mean feature.
        let mut means = Vec::new();
        for (seed, rate) in [(3u64, 10.0), (4u64, 40.0)] {
            let (tap, _, _) = run_padded(
                seed,
                rate,
                PaddingSchedule::cit(0.010).unwrap(),
                TimerDiscipline::Absolute,
                60.0,
            );
            means.push(sample_mean(&tap.piats_secs()).unwrap());
        }
        for m in &means {
            assert!((m - 0.010).abs() < 2e-7, "mean = {m}");
        }
        assert!((means[0] - means[1]).abs() < 2e-7);
    }

    #[test]
    fn piat_variance_grows_with_payload_rate() {
        // σ_gw,h > σ_gw,l — the CIT leak (r > 1).
        let var_at = |seed, rate| {
            let (tap, _, _) = run_padded(
                seed,
                rate,
                PaddingSchedule::cit(0.010).unwrap(),
                TimerDiscipline::Absolute,
                120.0,
            );
            sample_variance(&tap.piats_secs()).unwrap()
        };
        let v_low = var_at(5, 10.0);
        let v_high = var_at(6, 40.0);
        let r = v_high / v_low;
        assert!(r > 1.15, "r = {r}, expected the paper's r > 1 regime");
        assert!(r < 2.0, "r = {r}, calibration drifted far above the paper");
    }

    #[test]
    fn relative_discipline_leaks_the_mean() {
        // Ablation: with a re-arming timer, blocking delays accumulate
        // into the period, so the PIAT mean moves with the payload rate.
        let mean_at = |seed, rate| {
            let (tap, _, _) = run_padded(
                seed,
                rate,
                PaddingSchedule::cit(0.010).unwrap(),
                TimerDiscipline::Relative,
                120.0,
            );
            sample_mean(&tap.piats_secs()).unwrap()
        };
        let m_low = mean_at(7, 10.0);
        let m_high = mean_at(8, 40.0);
        // Expected gap ≈ (0.4 − 0.1)·µ_blk = 1.8 µs on τ = 10 ms.
        assert!(
            m_high - m_low > 0.5e-6,
            "relative timer should leak mean: low {m_low}, high {m_high}"
        );
    }

    #[test]
    fn vit_piat_variance_is_dominated_by_sigma_t() {
        let sigma_t = 1e-3;
        let (tap, _, _) = run_padded(
            9,
            40.0,
            PaddingSchedule::vit_truncated_normal(0.010, sigma_t).unwrap(),
            TimerDiscipline::Absolute,
            120.0,
        );
        let v = sample_variance(&tap.piats_secs()).unwrap();
        // PIAT variance = σ_T² + 2·Var(δ_gw) ≈ σ_T² (σ_gw is µs-scale).
        assert!(
            (v - sigma_t * sigma_t).abs() / (sigma_t * sigma_t) < 0.1,
            "v = {v:e}, σ_T² = {:e}",
            sigma_t * sigma_t
        );
    }

    #[test]
    fn payload_queue_wait_is_bounded_when_stable() {
        // Payload slower than the padding clock: every payload leaves
        // within a few periods.
        let (_, gw, rx) = run_padded(
            10,
            40.0,
            PaddingSchedule::cit(0.010).unwrap(),
            TimerDiscipline::Absolute,
            30.0,
        );
        let wait = gw.queue_wait_moments();
        assert!(wait.count() > 0);
        assert!(
            wait.max() <= 0.050,
            "payload waited {}s — queue not draining",
            wait.max()
        );
        let e2e = rx.end_to_end_delay_moments();
        assert!(e2e.max() <= 0.060);
    }

    #[test]
    fn bounded_queue_drops_overload() {
        // Payload faster than the padding clock (200 pps vs 100 pps):
        // a bounded queue must shed load and count it.
        let mut b = SimBuilder::new(MasterSeed::new(11));
        let (_rx_handle, rx) = ReceiverGateway::new(None);
        let rx_id = b.add_node(Box::new(rx));
        let (gw_handle, gw) = SenderGateway::new(
            rx_id,
            PaddingSchedule::cit(0.010).unwrap(),
            GatewayJitterModel::calibrated(),
            500,
        );
        let gw_id = b.add_node(Box::new(gw.with_queue_capacity(16)));
        b.add_node(Box::new(DistSource::new(
            gw_id,
            FlowId::PADDED,
            PacketKind::Payload,
            Box::new(Deterministic::new(0.005).unwrap()),
            Box::new(Deterministic::new(500.0).unwrap()),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(10.0));
        assert!(gw_handle.payload_dropped() > 0);
        assert!(gw_handle.max_queue_len() <= 16);
        // Every tick still emits exactly one packet.
        assert_eq!(
            gw_handle.payload_sent() + gw_handle.dummy_sent(),
            gw_handle.ticks()
        );
    }

    #[test]
    fn receiver_counts_unexpected_traffic() {
        let mut b = SimBuilder::new(MasterSeed::new(12));
        let (rx_handle, rx) = ReceiverGateway::new(None);
        let rx_id = b.add_node(Box::new(rx.with_label("gw2-test")));
        b.add_node(Box::new(DistSource::new(
            rx_id,
            FlowId::CROSS,
            PacketKind::Cross,
            Box::new(Deterministic::new(0.01).unwrap()),
            Box::new(Deterministic::new(100.0).unwrap()),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(0.1));
        assert_eq!(rx_handle.unexpected(), 10);
        assert_eq!(rx_handle.payload_delivered(), 0);
    }

    #[test]
    fn all_padded_packets_share_one_size() {
        // Threat-model remark 3: constant packet size. Verify through a
        // sink that observes sizes.
        let mut b = SimBuilder::new(MasterSeed::new(13));
        let (sink_handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let (gw_handle, gw) = SenderGateway::new(
            sink_id,
            PaddingSchedule::cit(0.010).unwrap(),
            GatewayJitterModel::calibrated(),
            500,
        );
        let gw_id = b.add_node(Box::new(gw));
        b.add_node(Box::new(DistSource::new(
            gw_id,
            FlowId::PADDED,
            PacketKind::Payload,
            Box::new(Deterministic::new(0.02).unwrap()),
            Box::new(Deterministic::new(123.0).unwrap()), // odd ingress size
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(5.0));
        // Every packet at the sink has exactly the fixed padded size, and
        // at most one tick's packet can be missing (in flight at the end).
        assert_eq!(sink_handle.bytes(), sink_handle.count() as u64 * 500);
        let ticks = gw_handle.payload_sent() + gw_handle.dummy_sent();
        assert!(ticks - sink_handle.count() as u64 <= 1);
    }

    #[test]
    fn start_phase_shifts_every_emission_exactly() {
        // Zero-base-sigma jitter and no payload → no RNG draws on the
        // tick path, so emission times are exact nominal instants and
        // the phase shift must appear bit-for-bit on every timestamp.
        let run = |phase_ns: u64| {
            let mut b = SimBuilder::new(MasterSeed::new(21));
            let (tap_handle, tap) = Tap::new(None, None);
            let tap_id = b.add_node(Box::new(tap));
            let (_, gw) = SenderGateway::new(
                tap_id,
                PaddingSchedule::cit(0.010).unwrap(),
                GatewayJitterModel::new(0.0, 6e-6).unwrap(),
                500,
            );
            b.add_node(Box::new(
                gw.with_start_phase(SimDuration::from_nanos(phase_ns)),
            ));
            let mut sim = b.build().unwrap();
            sim.run_until(SimTime::from_secs_f64(0.5));
            tap_handle.timestamps()
        };
        let base = run(0);
        let shifted = run(3_000_000); // 3 ms offset
        assert_eq!(base[0].as_nanos(), 10_000_000, "first tick at τ");
        assert_eq!(shifted[0].as_nanos(), 13_000_000, "first tick at φ + τ");
        // The run bound clips one shifted tick (at 503 ms); every pair
        // that exists must differ by exactly the phase.
        assert_eq!(base.len(), 50);
        assert_eq!(shifted.len(), 49);
        for (b_t, s_t) in base.iter().zip(&shifted) {
            assert_eq!(
                s_t.as_nanos(),
                b_t.as_nanos() + 3_000_000,
                "offset shifts the whole grid exactly"
            );
        }
    }

    #[test]
    fn tick_delay_moments_reflect_jitter_model() {
        let (_, gw, _) = run_padded(
            14,
            40.0,
            PaddingSchedule::cit(0.010).unwrap(),
            TimerDiscipline::Absolute,
            60.0,
        );
        let observed = gw.tick_delay_moments();
        let model = GatewayJitterModel::calibrated();
        let want = model.variance_at_rate(40.0, 0.010);
        let got = observed.variance().unwrap();
        assert!(
            ((got - want) / want).abs() < 0.25,
            "tick-delay variance {got:e} vs model {want:e}"
        );
    }
}
