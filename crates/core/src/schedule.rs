//! Padding timer schedules: CIT and VIT.
//!
//! The paper (§3.2, remark 2): *"the only tunable parameter is the time
//! interval between timer interrupts. … A system is said to have a
//! constant interval timer (CIT) if the timer is a periodic one. … A
//! system is said to have a variable interval timer (VIT) whenever the
//! interval between two consecutive timer interrupts is a random variable
//! and satisfies some distribution."*
//!
//! A [`PaddingSchedule`] produces the *designed* interval `T` of eq. 8/9:
//! `T ~ N(τ, σ_T²)` with `σ_T = 0` for CIT. The canonical VIT law is a
//! truncated normal (a real interval must stay positive); uniform and
//! exponential laws are provided for the interval-law ablation, which
//! shows the defence depends on `σ_T`, not on the particular law.
//!
//! Beyond the paper's timer families, two further link-padding defences
//! are modelled (§Defense schedules in DESIGN.md):
//!
//! * **Constant-rate** link padding — a CIT at an operator-chosen rate
//!   rather than the paper's τ; client traffic is absorbed into the
//!   fixed-interval comb ([`PaddingSchedule::constant_rate`]).
//! * **Adaptive padding** — the Idle/Burst/Gap state machine of
//!   Shmatikov–Wang-style countermeasures: bursts of closely spaced
//!   packets separated by longer idle gaps, every gap sampled from a
//!   bounded law ([`AdaptivePadding`]). Stateful, so the gateway holds
//!   it behind [`LinkSchedule`], the enum over stateless interval laws
//!   and stateful machines.

use linkpad_stats::dist::{ContinuousDist, Deterministic, Exponential, TruncatedNormal, Uniform};
use linkpad_stats::StatsError;
use rand_core::RngCore;

/// A padding schedule: the law of the designed timer interval `T`.
#[derive(Debug)]
pub struct PaddingSchedule {
    law: Box<dyn ContinuousDist>,
    kind: ScheduleKind,
}

/// Which family a schedule belongs to (for reporting and benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Constant interval timer: `σ_T = 0`.
    Cit,
    /// Variable interval timer, truncated-normal law (the paper's VIT).
    VitTruncatedNormal,
    /// Variable interval timer, uniform law (ablation).
    VitUniform,
    /// Variable interval timer, exponential law (ablation).
    VitExponential,
    /// Constant-rate link padding: a periodic timer at an
    /// operator-chosen packet rate (σ_T = 0, like CIT, but the period
    /// is `1/rate` rather than the paper's τ).
    ConstantRate,
    /// Adaptive padding: the stateful Idle/Burst/Gap machine (held in a
    /// [`LinkSchedule::Adaptive`], never inside a `PaddingSchedule`).
    AdaptivePadding,
    /// User-supplied law.
    Custom,
}

impl ScheduleKind {
    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleKind::Cit => "CIT",
            ScheduleKind::VitTruncatedNormal => "VIT(trunc-normal)",
            ScheduleKind::VitUniform => "VIT(uniform)",
            ScheduleKind::VitExponential => "VIT(exponential)",
            ScheduleKind::ConstantRate => "constant-rate",
            ScheduleKind::AdaptivePadding => "adaptive-padding",
            ScheduleKind::Custom => "custom",
        }
    }
}

impl PaddingSchedule {
    /// CIT with period `tau_secs` (e.g. `0.010` for the paper's 10 ms).
    pub fn cit(tau_secs: f64) -> Result<Self, StatsError> {
        Ok(Self {
            law: Box::new(Deterministic::new(validate_tau(tau_secs)?)?),
            kind: ScheduleKind::Cit,
        })
    }

    /// The paper's VIT: `T ~ N(τ, σ_T²)` truncated to stay positive.
    pub fn vit_truncated_normal(tau_secs: f64, sigma_t_secs: f64) -> Result<Self, StatsError> {
        let tau = validate_tau(tau_secs)?;
        Ok(Self {
            law: Box::new(TruncatedNormal::vit_law(tau, sigma_t_secs)?),
            kind: ScheduleKind::VitTruncatedNormal,
        })
    }

    /// VIT with a uniform interval law of matching mean and σ_T.
    pub fn vit_uniform(tau_secs: f64, sigma_t_secs: f64) -> Result<Self, StatsError> {
        let tau = validate_tau(tau_secs)?;
        Ok(Self {
            law: Box::new(Uniform::with_mean_sigma(tau, sigma_t_secs)?),
            kind: ScheduleKind::VitUniform,
        })
    }

    /// VIT with exponential intervals of mean τ (σ_T = τ; maximal jitter
    /// for a renewal law with this mean — the Poisson-padding limit).
    pub fn vit_exponential(tau_secs: f64) -> Result<Self, StatsError> {
        let tau = validate_tau(tau_secs)?;
        Ok(Self {
            law: Box::new(Exponential::new(tau)?),
            kind: ScheduleKind::VitExponential,
        })
    }

    /// Constant-rate link padding: one packet every `1/rate_pps`
    /// seconds, exactly. Deterministic (zero RNG draws), so constant-
    /// rate cohorts ride the exact comb path just like CIT.
    pub fn constant_rate(rate_pps: f64) -> Result<Self, StatsError> {
        if !rate_pps.is_finite() {
            return Err(StatsError::NonFinite {
                what: "constant-rate packet rate",
                value: rate_pps,
            });
        }
        if rate_pps <= 0.0 {
            return Err(StatsError::NonPositive {
                what: "constant-rate packet rate",
                value: rate_pps,
            });
        }
        Ok(Self {
            law: Box::new(Deterministic::new(1.0 / rate_pps)?),
            kind: ScheduleKind::ConstantRate,
        })
    }

    /// A custom interval law. The law's mean must be positive.
    pub fn custom(law: Box<dyn ContinuousDist>) -> Result<Self, StatsError> {
        if !law.mean().is_finite() || law.mean() <= 0.0 {
            return Err(StatsError::NonPositive {
                what: "custom schedule mean interval",
                value: law.mean(),
            });
        }
        Ok(Self {
            law,
            kind: ScheduleKind::Custom,
        })
    }

    /// Draw the next designed interval, in seconds. Guaranteed positive
    /// (laws are constructed positive; a defensive floor of 1 µs guards
    /// custom laws).
    pub fn next_interval_secs(&self, rng: &mut dyn RngCore) -> f64 {
        self.law.sample(rng).max(1e-6)
    }

    /// Mean designed interval τ in seconds.
    pub fn tau(&self) -> f64 {
        self.law.mean()
    }

    /// Designed-interval standard deviation σ_T in seconds (0 for CIT).
    pub fn sigma_t(&self) -> f64 {
        self.law.std_dev()
    }

    /// Designed-interval variance σ_T² in seconds² (eq. 9).
    pub fn sigma_t_sq(&self) -> f64 {
        self.law.variance()
    }

    /// Mean padded-packet rate in packets/second (1/τ).
    pub fn padding_rate(&self) -> f64 {
        1.0 / self.tau()
    }

    /// The schedule family.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// Consume the schedule, yielding its bare interval law (used to
    /// drive law-based stochastic cohorts, where the per-member state is
    /// just the next nominal fire time).
    pub fn into_law(self) -> Box<dyn ContinuousDist> {
        self.law
    }
}

/// Adaptive padding: the Idle/Burst/Gap state machine.
///
/// The machine alternates between an **Idle** state (quiet link) and a
/// **Burst** state (a run of closely spaced packets); the *Gap*
/// terminology of the countermeasure literature names the sampled wait
/// inside a burst. Each call to [`AdaptivePadding::next_interval_secs`]
/// yields the wait before the *next* padded emission:
///
/// * in **Idle**: one draw from the bounded *inter-burst* gap law, then
///   one integer draw for the length of the burst being entered
///   (uniform in `1..=max_burst`) — exactly two RNG draws;
/// * in **Burst** with `remaining > 0`: one draw from the bounded
///   *intra-burst* gap law — exactly one RNG draw — and the machine
///   returns to Idle only once the burst count is exhausted (the
///   "Gap never fires before Burst exhausts" invariant).
///
/// The default laws are scaled from the base period τ: intra-burst gaps
/// `U[0.2τ, 0.8τ)`, inter-burst gaps `U[2τ, 6τ)`, `max_burst = 15`
/// (median burst length 8). The disjoint supports make every draw
/// classifiable by value, which is what the property tests lean on.
///
/// A **disabled** machine ([`AdaptivePadding::disabled`]) degenerates to
/// a fixed-τ CIT and makes *zero* RNG draws — the bit-exactness escape
/// hatch. A **reactive** machine ([`AdaptivePadding::reactive`]) lets
/// the gateway force a fresh burst when client traffic arrives
/// ([`AdaptivePadding::notify_client_arrival`]); reactive machines
/// couple the padding clock to per-member client traffic, which the
/// cohort aggregation cannot model — `ScenarioBuilder` rejects reactive
/// cohorts with a typed error.
#[derive(Debug)]
pub struct AdaptivePadding {
    tau: f64,
    intra: Uniform,
    inter: Uniform,
    max_burst: u32,
    enabled: bool,
    reactive: bool,
    state: AdaptiveState,
    pending_trigger: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AdaptiveState {
    Idle,
    Burst { remaining: u32 },
}

impl AdaptivePadding {
    /// Canonical machine for base period τ: intra-burst gaps
    /// `U[0.2τ, 0.8τ)`, inter-burst gaps `U[2τ, 6τ)`, bursts of
    /// `1..=15` packets.
    pub fn new(tau_secs: f64) -> Result<Self, StatsError> {
        let tau = validate_tau(tau_secs)?;
        Self::with_params(tau, (0.2 * tau, 0.8 * tau), (2.0 * tau, 6.0 * tau), 15)
    }

    /// Fully parameterised machine. `intra`/`inter` are `[lo, hi)`
    /// bounds of the uniform gap laws; `max_burst ≥ 1` bounds the
    /// uniform burst-length draw.
    pub fn with_params(
        tau_secs: f64,
        intra: (f64, f64),
        inter: (f64, f64),
        max_burst: u32,
    ) -> Result<Self, StatsError> {
        let tau = validate_tau(tau_secs)?;
        if max_burst == 0 {
            return Err(StatsError::NonPositive {
                what: "adaptive padding max burst length",
                value: 0.0,
            });
        }
        Ok(Self {
            tau,
            intra: Uniform::new(intra.0, intra.1)?,
            inter: Uniform::new(inter.0, inter.1)?,
            max_burst,
            enabled: true,
            reactive: false,
            state: AdaptiveState::Idle,
            pending_trigger: false,
        })
    }

    /// Disabled machine: every interval is exactly τ and **no RNG draws
    /// are made** — indistinguishable from CIT on the wire and on the
    /// RNG stream.
    pub fn disabled(tau_secs: f64) -> Result<Self, StatsError> {
        let mut m = Self::new(tau_secs)?;
        m.enabled = false;
        Ok(m)
    }

    /// Canonical machine that additionally reacts to client traffic:
    /// [`AdaptivePadding::notify_client_arrival`] forces the next draw
    /// (if Idle) to open a fresh burst without waiting out the idle gap.
    pub fn reactive(tau_secs: f64) -> Result<Self, StatsError> {
        let mut m = Self::new(tau_secs)?;
        m.reactive = true;
        Ok(m)
    }

    /// Draw the wait before the next padded emission (see the type-level
    /// docs for the per-state draw discipline). Guaranteed positive.
    pub fn next_interval_secs(&mut self, rng: &mut dyn RngCore) -> f64 {
        if !self.enabled {
            return self.tau;
        }
        if self.pending_trigger {
            self.pending_trigger = false;
            if self.state == AdaptiveState::Idle {
                // Client traffic opens a burst immediately: skip the
                // idle gap, draw only the burst length.
                let len = self.draw_burst_len(rng);
                self.state = AdaptiveState::Burst { remaining: len };
            }
        }
        match self.state {
            AdaptiveState::Idle => {
                let gap = self.inter.sample(rng).max(1e-6);
                let len = self.draw_burst_len(rng);
                self.state = AdaptiveState::Burst { remaining: len };
                gap
            }
            AdaptiveState::Burst { remaining } => {
                let gap = self.intra.sample(rng).max(1e-6);
                self.state = if remaining <= 1 {
                    AdaptiveState::Idle
                } else {
                    AdaptiveState::Burst {
                        remaining: remaining - 1,
                    }
                };
                gap
            }
        }
    }

    fn draw_burst_len(&self, rng: &mut dyn RngCore) -> u32 {
        1 + (rng.next_u64() % u64::from(self.max_burst)) as u32
    }

    /// Signal a client-packet arrival. No-op unless the machine was
    /// built [`reactive`](AdaptivePadding::reactive).
    pub fn notify_client_arrival(&mut self) {
        if self.enabled && self.reactive {
            self.pending_trigger = true;
        }
    }

    /// Return to the initial state (Idle, no pending trigger). The gap
    /// laws are configuration and survive the reset.
    pub fn reset(&mut self) {
        self.state = AdaptiveState::Idle;
        self.pending_trigger = false;
    }

    /// Whether the machine is currently inside a burst.
    pub fn in_burst(&self) -> bool {
        matches!(self.state, AdaptiveState::Burst { .. })
    }

    /// Whether this machine reacts to client traffic (reactive machines
    /// have no stochastic-cohort support).
    pub fn is_reactive(&self) -> bool {
        self.reactive
    }

    /// Mean emission interval of the stationary machine: each cycle is
    /// one inter-burst gap followed by `E[L]` intra-burst gaps, so the
    /// per-emission mean is `(E[inter] + E[L]·E[intra]) / (1 + E[L])`.
    /// A disabled machine's mean is exactly τ.
    pub fn mean_interval_secs(&self) -> f64 {
        if !self.enabled {
            return self.tau;
        }
        let el = (1.0 + f64::from(self.max_burst)) / 2.0;
        (self.inter.mean() + el * self.intra.mean()) / (1.0 + el)
    }

    /// Standard deviation of the stationary interval mixture (weights
    /// `1/(1+E[L])` on the inter law, `E[L]/(1+E[L])` on the intra law).
    pub fn sigma_t(&self) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let el = (1.0 + f64::from(self.max_burst)) / 2.0;
        let w_inter = 1.0 / (1.0 + el);
        let w_intra = el / (1.0 + el);
        let m = self.mean_interval_secs();
        let ex2 = w_inter * (self.inter.variance() + self.inter.mean().powi(2))
            + w_intra * (self.intra.variance() + self.intra.mean().powi(2));
        (ex2 - m * m).max(0.0).sqrt()
    }
}

/// A link-padding schedule as held by the sender gateway: either a
/// stateless interval *law* (CIT/VIT/constant-rate) or a stateful
/// *machine* (adaptive padding). Constructed from either via `From`.
#[derive(Debug)]
pub enum LinkSchedule {
    /// Stateless interval law: each interval is an independent draw.
    Law(PaddingSchedule),
    /// Stateful Idle/Burst/Gap machine.
    Adaptive(AdaptivePadding),
}

impl LinkSchedule {
    /// Draw the next designed interval, in seconds.
    pub fn next_interval_secs(&mut self, rng: &mut dyn RngCore) -> f64 {
        match self {
            LinkSchedule::Law(s) => s.next_interval_secs(rng),
            LinkSchedule::Adaptive(m) => m.next_interval_secs(rng),
        }
    }

    /// Return any machine state to its initial value (laws are
    /// stateless; the adaptive machine re-enters Idle).
    pub fn reset(&mut self) {
        if let LinkSchedule::Adaptive(m) = self {
            m.reset();
        }
    }

    /// Forward a client-packet arrival to a reactive adaptive machine
    /// (no-op for laws and non-reactive machines).
    pub fn notify_client_arrival(&mut self) {
        if let LinkSchedule::Adaptive(m) = self {
            m.notify_client_arrival();
        }
    }

    /// Mean designed interval in seconds (τ for the paper's families).
    pub fn mean_interval_secs(&self) -> f64 {
        match self {
            LinkSchedule::Law(s) => s.tau(),
            LinkSchedule::Adaptive(m) => m.mean_interval_secs(),
        }
    }

    /// Designed-interval standard deviation in seconds.
    pub fn sigma_t(&self) -> f64 {
        match self {
            LinkSchedule::Law(s) => s.sigma_t(),
            LinkSchedule::Adaptive(m) => m.sigma_t(),
        }
    }

    /// Mean padded-packet rate in packets/second.
    pub fn padding_rate(&self) -> f64 {
        1.0 / self.mean_interval_secs()
    }

    /// The schedule family.
    pub fn kind(&self) -> ScheduleKind {
        match self {
            LinkSchedule::Law(s) => s.kind(),
            LinkSchedule::Adaptive(_) => ScheduleKind::AdaptivePadding,
        }
    }

    /// The underlying law, when the schedule is stateless.
    pub fn as_law(&self) -> Option<&PaddingSchedule> {
        match self {
            LinkSchedule::Law(s) => Some(s),
            LinkSchedule::Adaptive(_) => None,
        }
    }
}

impl From<PaddingSchedule> for LinkSchedule {
    fn from(s: PaddingSchedule) -> Self {
        LinkSchedule::Law(s)
    }
}

impl From<AdaptivePadding> for LinkSchedule {
    fn from(m: AdaptivePadding) -> Self {
        LinkSchedule::Adaptive(m)
    }
}

/// Per-member adaptive machines for a stochastic cohort: member `m`
/// owns its own Idle/Burst/Gap state, all driven off the cohort node's
/// single RNG stream in the deterministic pop order of the cohort heap.
#[derive(Debug)]
pub struct AdaptiveCohortSchedule {
    tau: f64,
    members: Vec<AdaptivePadding>,
}

impl AdaptiveCohortSchedule {
    /// One canonical (non-reactive) machine per member.
    pub fn new(members: u32, tau_secs: f64) -> Result<Self, StatsError> {
        let tau = validate_tau(tau_secs)?;
        let mut v = Vec::with_capacity(members as usize);
        for _ in 0..members {
            v.push(AdaptivePadding::new(tau)?);
        }
        Ok(Self { tau, members: v })
    }
}

impl linkpad_sim::cohort::MemberSchedule for AdaptiveCohortSchedule {
    fn next_interval_secs(&mut self, member: u32, rng: &mut dyn RngCore) -> f64 {
        match self.members.get_mut(member as usize) {
            Some(m) => m.next_interval_secs(rng),
            // Out-of-range members (never constructed by the cohort
            // builder) fall back to the base period.
            None => self.tau,
        }
    }

    fn reset(&mut self) {
        for m in &mut self.members {
            m.reset();
        }
    }
}

fn validate_tau(tau: f64) -> Result<f64, StatsError> {
    if !tau.is_finite() {
        return Err(StatsError::NonFinite {
            what: "schedule tau",
            value: tau,
        });
    }
    if tau <= 0.0 {
        return Err(StatsError::NonPositive {
            what: "schedule tau",
            value: tau,
        });
    }
    Ok(tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_stats::moments::RunningMoments;
    use linkpad_stats::rng::MasterSeed;

    #[test]
    fn cit_intervals_are_exactly_tau() {
        let s = PaddingSchedule::cit(0.010).unwrap();
        let mut rng = MasterSeed::new(1).stream(0);
        for _ in 0..100 {
            assert_eq!(s.next_interval_secs(&mut rng), 0.010);
        }
        assert_eq!(s.tau(), 0.010);
        assert_eq!(s.sigma_t(), 0.0);
        assert_eq!(s.kind(), ScheduleKind::Cit);
        assert!((s.padding_rate() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn vit_truncated_normal_hits_requested_moments() {
        let s = PaddingSchedule::vit_truncated_normal(0.010, 0.001).unwrap();
        let mut rng = MasterSeed::new(2).stream(0);
        let mut m = RunningMoments::new();
        for _ in 0..100_000 {
            m.push(s.next_interval_secs(&mut rng));
        }
        assert!((m.mean().unwrap() - 0.010).abs() < 5e-5);
        assert!((m.std_dev().unwrap() - 0.001).abs() < 5e-5);
        assert_eq!(s.kind().name(), "VIT(trunc-normal)");
    }

    #[test]
    fn vit_intervals_are_always_positive() {
        // Large σ_T relative to τ — truncation must keep intervals > 0.
        let s = PaddingSchedule::vit_truncated_normal(0.010, 0.005).unwrap();
        let mut rng = MasterSeed::new(3).stream(0);
        for _ in 0..50_000 {
            assert!(s.next_interval_secs(&mut rng) > 0.0);
        }
    }

    #[test]
    fn vit_uniform_and_exponential_report_sigma() {
        let u = PaddingSchedule::vit_uniform(0.010, 0.002).unwrap();
        assert!((u.sigma_t() - 0.002).abs() < 1e-9);
        assert_eq!(u.kind(), ScheduleKind::VitUniform);
        let e = PaddingSchedule::vit_exponential(0.010).unwrap();
        assert!((e.sigma_t() - 0.010).abs() < 1e-12);
        assert_eq!(e.kind(), ScheduleKind::VitExponential);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(PaddingSchedule::cit(0.0).is_err());
        assert!(PaddingSchedule::cit(-1.0).is_err());
        assert!(PaddingSchedule::cit(f64::NAN).is_err());
        assert!(PaddingSchedule::vit_truncated_normal(0.010, 0.0).is_err());
        assert!(PaddingSchedule::vit_uniform(0.010, 0.010).is_err()); // would cross zero
    }

    #[test]
    fn custom_law_is_accepted_and_floored() {
        let law = Box::new(linkpad_stats::dist::Deterministic::new(0.003).unwrap());
        let s = PaddingSchedule::custom(law).unwrap();
        assert_eq!(s.kind(), ScheduleKind::Custom);
        let bad = Box::new(linkpad_stats::dist::Deterministic::new(-0.5).unwrap());
        assert!(PaddingSchedule::custom(bad).is_err());
    }

    #[test]
    fn constant_rate_is_an_exact_comb() {
        let s = PaddingSchedule::constant_rate(125.0).unwrap();
        let mut rng = MasterSeed::new(9).stream(0);
        for _ in 0..100 {
            assert_eq!(s.next_interval_secs(&mut rng), 0.008);
        }
        assert_eq!(s.kind(), ScheduleKind::ConstantRate);
        assert_eq!(s.sigma_t(), 0.0);
        assert!(PaddingSchedule::constant_rate(0.0).is_err());
        assert!(PaddingSchedule::constant_rate(f64::INFINITY).is_err());
    }
}

/// Property tests for the [`AdaptivePadding`] state machine. The
/// canonical laws have disjoint supports (intra `[0.2τ, 0.8τ)`, inter
/// `[2τ, 6τ)`), so every sampled gap is classifiable by value alone and
/// the burst structure can be read straight off the interval sequence.
#[cfg(test)]
mod adaptive_padding_props {
    use super::*;
    use linkpad_stats::rng::MasterSeed;

    const TAU: f64 = 0.010;

    /// RNG wrapper that counts every draw the machine makes.
    struct CountingRng<R: RngCore> {
        inner: R,
        draws: u64,
    }

    impl<R: RngCore> RngCore for CountingRng<R> {
        fn next_u32(&mut self) -> u32 {
            self.draws += 1;
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            self.inner.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.draws += 1;
            self.inner.fill_bytes(dest)
        }
    }

    fn is_intra(gap: f64) -> bool {
        (0.2 * TAU..0.8 * TAU).contains(&gap)
    }

    fn is_inter(gap: f64) -> bool {
        (2.0 * TAU..6.0 * TAU).contains(&gap)
    }

    #[test]
    fn every_gap_respects_its_laws_bounds() {
        for seed in 0..32 {
            let mut m = AdaptivePadding::new(TAU).unwrap();
            let mut rng = MasterSeed::new(seed).stream(0);
            for _ in 0..2_000 {
                let was_idle = !m.in_burst();
                let gap = m.next_interval_secs(&mut rng);
                if was_idle {
                    assert!(is_inter(gap), "idle gap {gap} outside [2τ, 6τ)");
                } else {
                    assert!(is_intra(gap), "burst gap {gap} outside [0.2τ, 0.8τ)");
                }
            }
        }
    }

    #[test]
    fn gap_never_fires_before_burst_exhausts() {
        // Once a burst opens, intra draws run until the drawn length is
        // exhausted: no two consecutive inter-burst gaps, and every
        // burst run has length in 1..=max_burst.
        for seed in 0..32 {
            let mut m = AdaptivePadding::new(TAU).unwrap();
            let mut rng = MasterSeed::new(1000 + seed).stream(0);
            let gaps: Vec<f64> = (0..4_000).map(|_| m.next_interval_secs(&mut rng)).collect();
            let mut run = 0u32;
            let mut prev_was_inter = false;
            for &g in &gaps {
                if is_inter(g) {
                    assert!(
                        !prev_was_inter,
                        "two consecutive idle gaps: a Gap fired before the burst exhausted"
                    );
                    if run > 0 {
                        assert!((1..=15).contains(&run), "burst length {run} out of range");
                    }
                    run = 0;
                    prev_was_inter = true;
                } else {
                    assert!(is_intra(g), "gap {g} in neither law's support");
                    run += 1;
                    assert!(run <= 15, "burst overran max_burst");
                    prev_was_inter = false;
                }
            }
        }
    }

    #[test]
    fn burst_lengths_cover_the_configured_range() {
        // Over a long run, the uniform burst-length draw must actually
        // reach both ends of 1..=max_burst.
        let mut m = AdaptivePadding::new(TAU).unwrap();
        let mut rng = MasterSeed::new(7).stream(0);
        let mut lens = std::collections::BTreeSet::new();
        let mut run = 0u32;
        for _ in 0..60_000 {
            let g = m.next_interval_secs(&mut rng);
            if is_inter(g) {
                if run > 0 {
                    lens.insert(run);
                }
                run = 0;
            } else {
                run += 1;
            }
        }
        assert!(lens.contains(&1), "shortest burst never drawn");
        assert!(lens.contains(&15), "longest burst never drawn");
    }

    #[test]
    fn disabled_machine_makes_zero_rng_draws() {
        let mut m = AdaptivePadding::disabled(TAU).unwrap();
        let mut rng = CountingRng {
            inner: MasterSeed::new(4).stream(0),
            draws: 0,
        };
        for _ in 0..10_000 {
            assert_eq!(m.next_interval_secs(&mut rng), TAU);
        }
        assert_eq!(rng.draws, 0, "disabled machine touched the RNG");
        assert_eq!(m.sigma_t(), 0.0);
        assert_eq!(m.mean_interval_secs(), TAU);
    }

    #[test]
    fn reactive_trigger_opens_a_burst_without_an_idle_gap() {
        let mut m = AdaptivePadding::reactive(TAU).unwrap();
        let mut rng = MasterSeed::new(5).stream(0);
        assert!(!m.in_burst());
        m.notify_client_arrival();
        let gap = m.next_interval_secs(&mut rng);
        assert!(is_intra(gap), "triggered draw {gap} was not a burst gap");
        assert!(m.is_reactive());
        // Non-reactive machines ignore the signal entirely.
        let mut plain = AdaptivePadding::new(TAU).unwrap();
        plain.notify_client_arrival();
        let gap = plain.next_interval_secs(&mut rng);
        assert!(is_inter(gap), "non-reactive machine consumed a trigger");
    }

    #[test]
    fn reset_replays_the_same_interval_sequence() {
        let mut m = AdaptivePadding::new(TAU).unwrap();
        let a: Vec<f64> = {
            let mut rng = MasterSeed::new(6).stream(0);
            (0..500).map(|_| m.next_interval_secs(&mut rng)).collect()
        };
        m.reset();
        let b: Vec<f64> = {
            let mut rng = MasterSeed::new(6).stream(0);
            (0..500).map(|_| m.next_interval_secs(&mut rng)).collect()
        };
        assert_eq!(a, b, "reset did not restore the initial machine state");
    }

    #[test]
    fn stationary_mean_matches_the_analytic_value() {
        let mut m = AdaptivePadding::new(TAU).unwrap();
        let mut rng = MasterSeed::new(8).stream(0);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| m.next_interval_secs(&mut rng)).sum();
        let empirical = sum / f64::from(n);
        let analytic = m.mean_interval_secs();
        assert!(
            (empirical - analytic).abs() / analytic < 0.02,
            "empirical mean {empirical} vs analytic {analytic}"
        );
    }
}
