//! Padding timer schedules: CIT and VIT.
//!
//! The paper (§3.2, remark 2): *"the only tunable parameter is the time
//! interval between timer interrupts. … A system is said to have a
//! constant interval timer (CIT) if the timer is a periodic one. … A
//! system is said to have a variable interval timer (VIT) whenever the
//! interval between two consecutive timer interrupts is a random variable
//! and satisfies some distribution."*
//!
//! A [`PaddingSchedule`] produces the *designed* interval `T` of eq. 8/9:
//! `T ~ N(τ, σ_T²)` with `σ_T = 0` for CIT. The canonical VIT law is a
//! truncated normal (a real interval must stay positive); uniform and
//! exponential laws are provided for the interval-law ablation, which
//! shows the defence depends on `σ_T`, not on the particular law.

use linkpad_stats::dist::{ContinuousDist, Deterministic, Exponential, TruncatedNormal, Uniform};
use linkpad_stats::StatsError;
use rand_core::RngCore;

/// A padding schedule: the law of the designed timer interval `T`.
#[derive(Debug)]
pub struct PaddingSchedule {
    law: Box<dyn ContinuousDist>,
    kind: ScheduleKind,
}

/// Which family a schedule belongs to (for reporting and benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Constant interval timer: `σ_T = 0`.
    Cit,
    /// Variable interval timer, truncated-normal law (the paper's VIT).
    VitTruncatedNormal,
    /// Variable interval timer, uniform law (ablation).
    VitUniform,
    /// Variable interval timer, exponential law (ablation).
    VitExponential,
    /// User-supplied law.
    Custom,
}

impl ScheduleKind {
    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleKind::Cit => "CIT",
            ScheduleKind::VitTruncatedNormal => "VIT(trunc-normal)",
            ScheduleKind::VitUniform => "VIT(uniform)",
            ScheduleKind::VitExponential => "VIT(exponential)",
            ScheduleKind::Custom => "custom",
        }
    }
}

impl PaddingSchedule {
    /// CIT with period `tau_secs` (e.g. `0.010` for the paper's 10 ms).
    pub fn cit(tau_secs: f64) -> Result<Self, StatsError> {
        Ok(Self {
            law: Box::new(Deterministic::new(validate_tau(tau_secs)?)?),
            kind: ScheduleKind::Cit,
        })
    }

    /// The paper's VIT: `T ~ N(τ, σ_T²)` truncated to stay positive.
    pub fn vit_truncated_normal(tau_secs: f64, sigma_t_secs: f64) -> Result<Self, StatsError> {
        let tau = validate_tau(tau_secs)?;
        Ok(Self {
            law: Box::new(TruncatedNormal::vit_law(tau, sigma_t_secs)?),
            kind: ScheduleKind::VitTruncatedNormal,
        })
    }

    /// VIT with a uniform interval law of matching mean and σ_T.
    pub fn vit_uniform(tau_secs: f64, sigma_t_secs: f64) -> Result<Self, StatsError> {
        let tau = validate_tau(tau_secs)?;
        Ok(Self {
            law: Box::new(Uniform::with_mean_sigma(tau, sigma_t_secs)?),
            kind: ScheduleKind::VitUniform,
        })
    }

    /// VIT with exponential intervals of mean τ (σ_T = τ; maximal jitter
    /// for a renewal law with this mean — the Poisson-padding limit).
    pub fn vit_exponential(tau_secs: f64) -> Result<Self, StatsError> {
        let tau = validate_tau(tau_secs)?;
        Ok(Self {
            law: Box::new(Exponential::new(tau)?),
            kind: ScheduleKind::VitExponential,
        })
    }

    /// A custom interval law. The law's mean must be positive.
    pub fn custom(law: Box<dyn ContinuousDist>) -> Result<Self, StatsError> {
        if !law.mean().is_finite() || law.mean() <= 0.0 {
            return Err(StatsError::NonPositive {
                what: "custom schedule mean interval",
                value: law.mean(),
            });
        }
        Ok(Self {
            law,
            kind: ScheduleKind::Custom,
        })
    }

    /// Draw the next designed interval, in seconds. Guaranteed positive
    /// (laws are constructed positive; a defensive floor of 1 µs guards
    /// custom laws).
    pub fn next_interval_secs(&self, rng: &mut dyn RngCore) -> f64 {
        self.law.sample(rng).max(1e-6)
    }

    /// Mean designed interval τ in seconds.
    pub fn tau(&self) -> f64 {
        self.law.mean()
    }

    /// Designed-interval standard deviation σ_T in seconds (0 for CIT).
    pub fn sigma_t(&self) -> f64 {
        self.law.std_dev()
    }

    /// Designed-interval variance σ_T² in seconds² (eq. 9).
    pub fn sigma_t_sq(&self) -> f64 {
        self.law.variance()
    }

    /// Mean padded-packet rate in packets/second (1/τ).
    pub fn padding_rate(&self) -> f64 {
        1.0 / self.tau()
    }

    /// The schedule family.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }
}

fn validate_tau(tau: f64) -> Result<f64, StatsError> {
    if !tau.is_finite() {
        return Err(StatsError::NonFinite {
            what: "schedule tau",
            value: tau,
        });
    }
    if tau <= 0.0 {
        return Err(StatsError::NonPositive {
            what: "schedule tau",
            value: tau,
        });
    }
    Ok(tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_stats::moments::RunningMoments;
    use linkpad_stats::rng::MasterSeed;

    #[test]
    fn cit_intervals_are_exactly_tau() {
        let s = PaddingSchedule::cit(0.010).unwrap();
        let mut rng = MasterSeed::new(1).stream(0);
        for _ in 0..100 {
            assert_eq!(s.next_interval_secs(&mut rng), 0.010);
        }
        assert_eq!(s.tau(), 0.010);
        assert_eq!(s.sigma_t(), 0.0);
        assert_eq!(s.kind(), ScheduleKind::Cit);
        assert!((s.padding_rate() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn vit_truncated_normal_hits_requested_moments() {
        let s = PaddingSchedule::vit_truncated_normal(0.010, 0.001).unwrap();
        let mut rng = MasterSeed::new(2).stream(0);
        let mut m = RunningMoments::new();
        for _ in 0..100_000 {
            m.push(s.next_interval_secs(&mut rng));
        }
        assert!((m.mean().unwrap() - 0.010).abs() < 5e-5);
        assert!((m.std_dev().unwrap() - 0.001).abs() < 5e-5);
        assert_eq!(s.kind().name(), "VIT(trunc-normal)");
    }

    #[test]
    fn vit_intervals_are_always_positive() {
        // Large σ_T relative to τ — truncation must keep intervals > 0.
        let s = PaddingSchedule::vit_truncated_normal(0.010, 0.005).unwrap();
        let mut rng = MasterSeed::new(3).stream(0);
        for _ in 0..50_000 {
            assert!(s.next_interval_secs(&mut rng) > 0.0);
        }
    }

    #[test]
    fn vit_uniform_and_exponential_report_sigma() {
        let u = PaddingSchedule::vit_uniform(0.010, 0.002).unwrap();
        assert!((u.sigma_t() - 0.002).abs() < 1e-9);
        assert_eq!(u.kind(), ScheduleKind::VitUniform);
        let e = PaddingSchedule::vit_exponential(0.010).unwrap();
        assert!((e.sigma_t() - 0.010).abs() < 1e-12);
        assert_eq!(e.kind(), ScheduleKind::VitExponential);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(PaddingSchedule::cit(0.0).is_err());
        assert!(PaddingSchedule::cit(-1.0).is_err());
        assert!(PaddingSchedule::cit(f64::NAN).is_err());
        assert!(PaddingSchedule::vit_truncated_normal(0.010, 0.0).is_err());
        assert!(PaddingSchedule::vit_uniform(0.010, 0.010).is_err()); // would cross zero
    }

    #[test]
    fn custom_law_is_accepted_and_floored() {
        let law = Box::new(linkpad_stats::dist::Deterministic::new(0.003).unwrap());
        let s = PaddingSchedule::custom(law).unwrap();
        assert_eq!(s.kind(), ScheduleKind::Custom);
        let bad = Box::new(linkpad_stats::dist::Deterministic::new(-0.5).unwrap());
        assert!(PaddingSchedule::custom(bad).is_err());
    }
}
