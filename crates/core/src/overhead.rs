//! Padding overhead and QoS accounting.
//!
//! Link padding buys secrecy with bandwidth and latency: the padded link
//! always carries `1/τ` packets per second regardless of how little
//! payload there is, and payload waits for the next timer slot. The
//! paper's §2 (NetCamo) and §6 flag this coupling; [`OverheadReport`]
//! quantifies it for a finished run so design-guideline code (in
//! `linkpad-analytic`) can trade detection rate against cost.

use crate::gateway::{GatewayHandle, ReceiverHandle};

/// Cost summary of a padding run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Packets transmitted on the padded link.
    pub packets_sent: u64,
    /// Payload packets among them.
    pub payload_packets: u64,
    /// Dummy packets among them.
    pub dummy_packets: u64,
    /// Fraction of transmissions that were dummies (0..1).
    pub dummy_fraction: f64,
    /// Bandwidth expansion: bytes sent per payload byte (≥ 1; ∞ when no
    /// payload moved at all).
    pub bandwidth_expansion: f64,
    /// Mean payload queueing delay inside GW1, seconds.
    pub mean_queue_delay: f64,
    /// Worst payload queueing delay inside GW1, seconds.
    pub max_queue_delay: f64,
    /// Mean end-to-end payload delay (GW1 enqueue → GW2 delivery), if a
    /// receiver handle was provided.
    pub mean_end_to_end_delay: Option<f64>,
    /// Payload packets dropped at a bounded gateway queue.
    pub payload_dropped: u64,
}

impl OverheadReport {
    /// Build a report from gateway (and optionally receiver) handles
    /// after a run.
    pub fn from_handles(gw: &GatewayHandle, rx: Option<&ReceiverHandle>) -> Self {
        let payload = gw.payload_sent();
        let dummy = gw.dummy_sent();
        let total = payload + dummy;
        let wait = gw.queue_wait_moments();
        let dummy_fraction = if total > 0 {
            dummy as f64 / total as f64
        } else {
            0.0
        };
        let bandwidth_expansion = if payload > 0 {
            total as f64 / payload as f64
        } else if total > 0 {
            f64::INFINITY
        } else {
            1.0
        };
        OverheadReport {
            packets_sent: total,
            payload_packets: payload,
            dummy_packets: dummy,
            dummy_fraction,
            bandwidth_expansion,
            mean_queue_delay: wait.mean().unwrap_or(0.0),
            max_queue_delay: if wait.count() > 0 { wait.max() } else { 0.0 },
            mean_end_to_end_delay: rx.and_then(|r| r.end_to_end_delay_moments().mean()),
            payload_dropped: gw.payload_dropped(),
        }
    }

    /// Predicted steady-state dummy fraction for a payload rate `omega`
    /// (pps) on a padding clock of mean period `tau` (s): `1 − ω·τ`,
    /// clamped to `[0, 1]`. Useful before running anything.
    pub fn predicted_dummy_fraction(omega_pps: f64, tau: f64) -> f64 {
        (1.0 - omega_pps * tau).clamp(0.0, 1.0)
    }

    /// Predicted worst-case queueing delay for CBR payload under a CIT
    /// clock when stable (ω·τ < 1): one full period (the packet just
    /// missed a tick).
    pub fn predicted_max_queue_delay(tau: f64) -> f64 {
        tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::SenderGateway;
    use crate::jitter::GatewayJitterModel;
    use crate::schedule::PaddingSchedule;
    use linkpad_sim::engine::SimBuilder;
    use linkpad_sim::packet::{FlowId, PacketKind};
    use linkpad_sim::sink::Sink;
    use linkpad_sim::source::DistSource;
    use linkpad_sim::time::SimTime;
    use linkpad_stats::dist::Deterministic;
    use linkpad_stats::rng::MasterSeed;

    fn run(rate_pps: f64, secs: f64) -> OverheadReport {
        let mut b = SimBuilder::new(MasterSeed::new(5));
        let (_h, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let (gw_handle, gw) = SenderGateway::new(
            sink_id,
            PaddingSchedule::cit(0.010).unwrap(),
            GatewayJitterModel::calibrated(),
            500,
        );
        let gw_id = b.add_node(Box::new(gw));
        b.add_node(Box::new(DistSource::new(
            gw_id,
            FlowId::PADDED,
            PacketKind::Payload,
            Box::new(Deterministic::new(1.0 / rate_pps).unwrap()),
            Box::new(Deterministic::new(500.0).unwrap()),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(secs));
        OverheadReport::from_handles(&gw_handle, None)
    }

    #[test]
    fn low_rate_pays_high_overhead() {
        let r = run(10.0, 30.0);
        assert!(
            (r.dummy_fraction - 0.9).abs() < 0.02,
            "{}",
            r.dummy_fraction
        );
        assert!((r.bandwidth_expansion - 10.0).abs() < 1.0);
        assert_eq!(r.packets_sent, r.payload_packets + r.dummy_packets);
        assert_eq!(r.payload_dropped, 0);
    }

    #[test]
    fn high_rate_pays_less_overhead() {
        let r = run(40.0, 30.0);
        assert!((r.dummy_fraction - 0.6).abs() < 0.02);
        assert!((r.bandwidth_expansion - 2.5).abs() < 0.2);
    }

    #[test]
    fn queue_delay_within_predicted_bound() {
        let r = run(40.0, 30.0);
        // CBR payload under a stable CIT clock waits at most ~τ (plus
        // µs-scale jitter).
        assert!(r.max_queue_delay <= OverheadReport::predicted_max_queue_delay(0.010) + 1e-3);
        assert!(r.mean_queue_delay > 0.0);
    }

    #[test]
    fn predictions_match_closed_form() {
        assert!((OverheadReport::predicted_dummy_fraction(10.0, 0.010) - 0.9).abs() < 1e-12);
        assert!((OverheadReport::predicted_dummy_fraction(40.0, 0.010) - 0.6).abs() < 1e-12);
        assert_eq!(OverheadReport::predicted_dummy_fraction(200.0, 0.010), 0.0);
        assert_eq!(OverheadReport::predicted_dummy_fraction(0.0, 0.010), 1.0);
    }

    #[test]
    fn empty_run_is_well_defined() {
        // A gateway that never ticked: no division by zero.
        let mut b = SimBuilder::new(MasterSeed::new(6));
        let (_h, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let (gw_handle, _gw) = SenderGateway::new(
            sink_id,
            PaddingSchedule::cit(0.010).unwrap(),
            GatewayJitterModel::calibrated(),
            500,
        );
        let r = OverheadReport::from_handles(&gw_handle, None);
        assert_eq!(r.packets_sent, 0);
        assert_eq!(r.dummy_fraction, 0.0);
        assert_eq!(r.bandwidth_expansion, 1.0);
        assert_eq!(r.mean_queue_delay, 0.0);
        assert_eq!(r.max_queue_delay, 0.0);
        assert!(r.mean_end_to_end_delay.is_none());
    }
}
