//! The gateway disturbance model δ_gw — *why CIT padding leaks*.
//!
//! Paper §4.1.2: δ_gw "is caused by a number of factors, which may impact
//! the accuracy of the timer's interrupt: (1) the context switching from
//! other running processes … may take a random time. (2) a timer
//! interrupt may be temporarily blocked due to other activities. For
//! example, if a payload packet … is arriving at the network interface
//! card of the gateway, the network interface card would generate an
//! interrupt request, which can block all the processes including the
//! (scheduled) timer interrupt. Thus, the timer's interrupts may be subtly
//! but randomly delayed by incoming payload packets."
//!
//! We model exactly that structure:
//!
//! * a **baseline** zero-mean normal jitter (context switching, scheduler
//!   noise) with σ_base, present on every tick;
//! * an **interrupt-blocking** delay: each payload arrival during the
//!   current timer period adds an independent `Exp(µ_blk)` delay to the
//!   tick.
//!
//! Because a higher payload rate means more arrivals per period, the
//! variance of the total tick delay *grows with the payload rate* — this
//! is what makes `σ_gw,h > σ_gw,l` (eq. 13/15) and `r > 1` (eq. 16), and
//! it emerges organically from the mechanism rather than being painted on.
//!
//! [`GatewayJitterModel::variance_for_arrival_prob`] gives the closed-form
//! per-tick delay variance, which the analytical crate uses to predict `r`
//! for a configuration before simulating it.

use linkpad_stats::dist::{ContinuousDist, Exponential};
use linkpad_stats::normal::Normal;
use linkpad_stats::StatsError;
use rand_core::RngCore;

/// Parameters of the gateway timer-disturbance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayJitterModel {
    /// Baseline OS jitter standard deviation, seconds (σ_base).
    pub base_sigma: f64,
    /// Mean of the per-payload-arrival interrupt-blocking delay, seconds.
    pub blocking_mean: f64,
}

impl GatewayJitterModel {
    /// Create a model; both parameters must be non-negative and finite,
    /// and at least one must be positive (a perfectly jitter-free gateway
    /// is not a physical configuration and would break KDE training).
    pub fn new(base_sigma: f64, blocking_mean: f64) -> Result<Self, StatsError> {
        for (what, v) in [("base_sigma", base_sigma), ("blocking_mean", blocking_mean)] {
            if !v.is_finite() {
                return Err(StatsError::NonFinite { what, value: v });
            }
            if v < 0.0 {
                return Err(StatsError::NonPositive { what, value: v });
            }
        }
        if base_sigma == 0.0 && blocking_mean == 0.0 {
            return Err(StatsError::NonPositive {
                what: "total gateway jitter",
                value: 0.0,
            });
        }
        Ok(Self {
            base_sigma,
            blocking_mean,
        })
    }

    /// The calibrated defaults (see `crate::calibration`)
    /// (σ_base = 6 µs, µ_blk = 6 µs) — these land the simulated PIAT
    /// distributions in the regimes of the paper's Fig. 4(a).
    pub fn calibrated() -> Self {
        Self {
            base_sigma: 6e-6,
            blocking_mean: 6e-6,
        }
    }

    /// Sample the tick delay given how many payload packets arrived at
    /// the NIC during the current timer period.
    ///
    /// Returned value may be negative (baseline jitter is zero-mean);
    /// the gateway adds it to a constant interrupt-pipeline offset that
    /// keeps physical send times causal.
    pub fn sample_tick_delay(&self, payload_arrivals: u32, rng: &mut dyn RngCore) -> f64 {
        let mut delay = if self.base_sigma > 0.0 {
            // Constructed infallibly: base_sigma validated > 0.
            Normal::new(0.0, self.base_sigma)
                .expect("validated sigma")
                .sample(rng)
        } else {
            0.0
        };
        if self.blocking_mean > 0.0 && payload_arrivals > 0 {
            let blk = Exponential::new(self.blocking_mean).expect("validated mean");
            for _ in 0..payload_arrivals {
                delay += blk.sample(rng);
            }
        }
        delay
    }

    /// Closed-form variance of the per-tick delay when the number of
    /// payload arrivals per period is Bernoulli/Binomial-like with mean
    /// `p` arrivals per period (`p = payload_rate × τ`, the regime of all
    /// the paper's experiments where payload is slower than the padding
    /// clock).
    ///
    /// `Var(δ) = σ_base² + p·(2µ_blk²) − (p·µ_blk)²` for `p ≤ 1`
    /// (Bernoulli thinning), extended continuously with compound-Poisson
    /// `Var = σ_base² + p·2µ_blk²` for `p > 1`.
    pub fn variance_for_arrival_prob(&self, p: f64) -> f64 {
        let p = p.max(0.0);
        let m = self.blocking_mean;
        let base = self.base_sigma * self.base_sigma;
        if p <= 1.0 {
            base + p * 2.0 * m * m - (p * m) * (p * m)
        } else {
            base + p * 2.0 * m * m
        }
    }

    /// Convenience: variance at a payload rate (packets/s) for a timer
    /// period `tau` seconds: `p = rate·τ`.
    pub fn variance_at_rate(&self, payload_rate: f64, tau: f64) -> f64 {
        self.variance_for_arrival_prob(payload_rate * tau)
    }

    /// The constant "interrupt pipeline" offset added to every tick so
    /// that sampled delays (which may be negative) remain causal:
    /// 6 σ_base covers the baseline normal's left tail.
    pub fn pipeline_offset(&self) -> f64 {
        6.0 * self.base_sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_stats::moments::RunningMoments;
    use linkpad_stats::rng::MasterSeed;

    #[test]
    fn construction_validates() {
        assert!(GatewayJitterModel::new(-1e-6, 1e-6).is_err());
        assert!(GatewayJitterModel::new(1e-6, -1e-6).is_err());
        assert!(GatewayJitterModel::new(f64::NAN, 1e-6).is_err());
        assert!(GatewayJitterModel::new(0.0, 0.0).is_err());
        assert!(GatewayJitterModel::new(0.0, 1e-6).is_ok());
        assert!(GatewayJitterModel::new(1e-6, 0.0).is_ok());
    }

    #[test]
    fn higher_payload_rate_means_higher_delay_variance() {
        // The core leak mechanism: empirical variance grows with arrivals.
        let m = GatewayJitterModel::calibrated();
        let mut rng = MasterSeed::new(1).stream(0);
        let mut var_for = |arrivals: u32| {
            let mut acc = RunningMoments::new();
            for _ in 0..200_000 {
                acc.push(m.sample_tick_delay(arrivals, &mut rng));
            }
            acc.variance().unwrap()
        };
        let v0 = var_for(0);
        let v1 = var_for(1);
        let v2 = var_for(2);
        assert!(v1 > v0 * 1.5, "v0={v0:e}, v1={v1:e}");
        assert!(v2 > v1, "v1={v1:e}, v2={v2:e}");
    }

    #[test]
    fn empirical_variance_matches_closed_form() {
        let m = GatewayJitterModel::calibrated();
        let mut rng = MasterSeed::new(2).stream(0);
        // Bernoulli arrivals with p = 0.4 (the paper's high rate on a
        // 10 ms timer): mix 40% one-arrival ticks, 60% zero-arrival ticks.
        let mut acc = RunningMoments::new();
        for i in 0..500_000u32 {
            let arrivals = u32::from(i % 5 < 2); // 2 of 5 ticks
            acc.push(m.sample_tick_delay(arrivals, &mut rng));
        }
        let want = m.variance_for_arrival_prob(0.4);
        let got = acc.variance().unwrap();
        assert!(
            ((got - want) / want).abs() < 0.03,
            "got {got:e}, want {want:e}"
        );
    }

    #[test]
    fn calibrated_defaults_produce_papers_r_regime() {
        // r = Var(δ_h)/Var(δ_l) with p_l = 0.1, p_h = 0.4 (10/40 pps on
        // 10 ms): should land in the paper's observed 1.3–1.5 band.
        let m = GatewayJitterModel::calibrated();
        let r = m.variance_at_rate(40.0, 0.010) / m.variance_at_rate(10.0, 0.010);
        assert!(r > 1.25 && r < 1.6, "r = {r}");
    }

    #[test]
    fn variance_formula_is_monotone_in_p() {
        let m = GatewayJitterModel::calibrated();
        let mut prev = 0.0;
        for i in 0..=20 {
            let p = i as f64 * 0.1;
            let v = m.variance_for_arrival_prob(p);
            assert!(v >= prev, "variance must not decrease at p={p}");
            prev = v;
        }
    }

    #[test]
    fn zero_arrivals_is_pure_baseline() {
        let m = GatewayJitterModel::new(5e-6, 7e-6).unwrap();
        assert!((m.variance_for_arrival_prob(0.0) - 25e-12).abs() < 1e-18);
        let mut rng = MasterSeed::new(3).stream(0);
        let mut acc = RunningMoments::new();
        for _ in 0..100_000 {
            acc.push(m.sample_tick_delay(0, &mut rng));
        }
        assert!(acc.mean().unwrap().abs() < 1e-7); // zero-mean
    }

    #[test]
    fn pipeline_offset_clears_negative_tail() {
        let m = GatewayJitterModel::calibrated();
        let mut rng = MasterSeed::new(4).stream(0);
        let off = m.pipeline_offset();
        let mut worst = f64::INFINITY;
        for _ in 0..1_000_000 {
            worst = worst.min(m.sample_tick_delay(0, &mut rng) + off);
        }
        assert!(worst >= 0.0, "offset insufficient: {worst:e}");
    }
}
