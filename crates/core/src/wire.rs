//! Fixed-size wire frames for the real-time testbed.
//!
//! The testbed (`linkpad-testbed`) moves packets between real threads
//! over channels; to keep it honest it ships *encoded frames* of exactly
//! the configured padded size, the way the real gateways ship fixed-size
//! IPSec-encrypted datagrams. The frame header carries the simulation
//! metadata (id, flow, kind, timestamps); the remainder is zero fill, as
//! a stand-in for ciphertext.
//!
//! Encoding uses the `bytes` crate so frames can be sliced and shipped
//! without copies.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use linkpad_sim::packet::{FlowId, Packet, PacketKind};
use linkpad_sim::time::SimTime;

/// Header length of the frame format.
pub const HEADER_LEN: usize = 8 + 4 + 1 + 4 + 8 + 8;

/// Errors from frame decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than a frame header.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The kind byte was not a known [`PacketKind`].
    BadKind(u8),
    /// The embedded size field disagrees with the frame length.
    SizeMismatch {
        /// Size claimed in the header.
        claimed: u32,
        /// Actual frame length.
        actual: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "frame truncated: need {needed} bytes, got {got}")
            }
            WireError::BadKind(k) => write!(f, "unknown packet kind byte {k}"),
            WireError::SizeMismatch { claimed, actual } => {
                write!(f, "size field {claimed} != frame length {actual}")
            }
        }
    }
}
impl std::error::Error for WireError {}

fn kind_to_byte(kind: PacketKind) -> u8 {
    match kind {
        PacketKind::Payload => 0,
        PacketKind::Dummy => 1,
        PacketKind::Cross => 2,
    }
}

fn kind_from_byte(b: u8) -> Result<PacketKind, WireError> {
    match b {
        0 => Ok(PacketKind::Payload),
        1 => Ok(PacketKind::Dummy),
        2 => Ok(PacketKind::Cross),
        other => Err(WireError::BadKind(other)),
    }
}

/// Encode a packet as a frame of exactly `packet.size_bytes` bytes
/// (padded with zeros beyond the header). Frames smaller than the header
/// are bumped to the header size — the gateway configures sizes well
/// above it.
pub fn encode(packet: &Packet) -> Bytes {
    let total = (packet.size_bytes as usize).max(HEADER_LEN);
    let mut buf = BytesMut::with_capacity(total);
    buf.put_u64(packet.id);
    buf.put_u32(packet.flow.0);
    buf.put_u8(kind_to_byte(packet.kind));
    buf.put_u32(packet.size_bytes);
    buf.put_u64(packet.created.as_nanos());
    buf.put_u64(packet.enqueued.as_nanos());
    buf.resize(total, 0);
    buf.freeze()
}

/// Decode a frame back into a packet.
pub fn decode(frame: &Bytes) -> Result<Packet, WireError> {
    if frame.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: frame.len(),
        });
    }
    let mut buf = frame.clone();
    let id = buf.get_u64();
    let flow = FlowId(buf.get_u32());
    let kind = kind_from_byte(buf.get_u8())?;
    let size_bytes = buf.get_u32();
    let expected = (size_bytes as usize).max(HEADER_LEN);
    if expected != frame.len() {
        return Err(WireError::SizeMismatch {
            claimed: size_bytes,
            actual: frame.len(),
        });
    }
    let created = SimTime::from_nanos(buf.get_u64());
    let enqueued = SimTime::from_nanos(buf.get_u64());
    let mut pkt = Packet::new(id, flow, kind, size_bytes, created);
    pkt.enqueued = enqueued;
    Ok(pkt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet() -> Packet {
        let mut p = Packet::new(
            0xDEAD_BEEF_1234_5678,
            FlowId::PADDED,
            PacketKind::Dummy,
            500,
            SimTime::from_nanos(42),
        );
        p.enqueued = SimTime::from_nanos(40);
        p
    }

    #[test]
    fn round_trip_preserves_all_fields() {
        let p = sample_packet();
        let frame = encode(&p);
        assert_eq!(frame.len(), 500);
        let q = decode(&frame).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn frames_have_constant_size_regardless_of_kind() {
        let mut p = sample_packet();
        let dummy_frame = encode(&p);
        p.kind = PacketKind::Payload;
        let payload_frame = encode(&p);
        // The observable frame length must not reveal the kind.
        assert_eq!(dummy_frame.len(), payload_frame.len());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let p = sample_packet();
        let frame = encode(&p);
        let short = frame.slice(0..HEADER_LEN - 1);
        assert!(matches!(decode(&short), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn bad_kind_byte_is_rejected() {
        let p = sample_packet();
        let frame = encode(&p);
        let mut raw = BytesMut::from(&frame[..]);
        raw[12] = 99; // the kind byte (8 id + 4 flow)
        let bad = raw.freeze();
        assert_eq!(decode(&bad), Err(WireError::BadKind(99)));
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let p = sample_packet();
        let frame = encode(&p);
        let chopped = frame.slice(0..400);
        assert!(matches!(
            decode(&chopped),
            Err(WireError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn tiny_sizes_are_bumped_to_header_len() {
        let mut p = sample_packet();
        p.size_bytes = 4;
        let frame = encode(&p);
        assert_eq!(frame.len(), HEADER_LEN);
        let q = decode(&frame).unwrap();
        assert_eq!(q.size_bytes, 4);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = WireError::Truncated { needed: 33, got: 5 };
        assert!(e.to_string().contains("33"));
        assert!(WireError::BadKind(7).to_string().contains('7'));
    }
}
