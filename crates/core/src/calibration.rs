//! The calibrated default constants of the reproduction.
//!
//! The paper's experiments fix: timer mean interval 10 ms
//! (`E(T) = 10 ms`), payload rates 10 pps and 40 pps with equal priors,
//! fixed packet size, TimeSys Linux gateways whose timer jitter is
//! microsecond-scale (Fig. 4a spans ±20 µs around 10 ms). The constants
//! here place the simulated system in those regimes; this module
//! documents the derivation. Change them through the builders, not by
//! editing — every bench prints the configuration it ran with.

use crate::gateway::TimerDiscipline;
use crate::jitter::GatewayJitterModel;
use crate::schedule::PaddingSchedule;
use linkpad_stats::StatsError;

/// The defaults every scenario starts from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratedDefaults {
    /// Mean padding timer interval τ (seconds). Paper: 10 ms.
    pub tau: f64,
    /// Low payload rate ω_l (packets/s). Paper: 10 pps.
    pub rate_low: f64,
    /// High payload rate ω_h (packets/s). Paper: 40 pps.
    pub rate_high: f64,
    /// Constant padded packet size (bytes).
    pub packet_size: u32,
    /// Shared-hop (lab router egress) link capacity, bits/s. The Fig. 6
    /// decay shape calibrates against this: 400 Mb/s puts the M/G/1
    /// queueing-delay variance of trimodal cross traffic at utilization
    /// 0.4 near 270 µs² — the regime where entropy detection sits at
    /// ~0.7 as in the paper.
    pub link_bps: f64,
    /// Gateway jitter model parameters.
    pub jitter: GatewayJitterModel,
    /// Timer discipline.
    pub discipline: TimerDiscipline,
}

impl Default for CalibratedDefaults {
    fn default() -> Self {
        Self {
            tau: 0.010,
            rate_low: 10.0,
            rate_high: 40.0,
            packet_size: 500,
            link_bps: 400e6,
            jitter: GatewayJitterModel::calibrated(),
            discipline: TimerDiscipline::Absolute,
        }
    }
}

impl CalibratedDefaults {
    /// The paper's configuration (alias of `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// CIT schedule at the calibrated τ.
    pub fn cit_schedule(&self) -> Result<PaddingSchedule, StatsError> {
        PaddingSchedule::cit(self.tau)
    }

    /// VIT schedule at the calibrated τ with the given σ_T (seconds).
    pub fn vit_schedule(&self, sigma_t: f64) -> Result<PaddingSchedule, StatsError> {
        PaddingSchedule::vit_truncated_normal(self.tau, sigma_t)
    }

    /// Predicted per-tick δ_gw variance at a payload rate (the analytic
    /// `σ_gw²` of eq. 13/15 for this configuration).
    pub fn sigma_gw_sq(&self, payload_rate: f64) -> f64 {
        self.jitter.variance_at_rate(payload_rate, self.tau)
    }

    /// Predicted variance ratio `r` (eq. 16) at a tap adjacent to GW1
    /// (σ_net = 0) for a given σ_T. With the Absolute timer discipline
    /// PIAT variance is `σ_T² + 2·Var(δ_gw)`, so
    /// `r = (σ_T² + 2σ_gw,h²)/(σ_T² + 2σ_gw,l²)`.
    pub fn predicted_r(&self, sigma_t: f64) -> f64 {
        let st2 = sigma_t * sigma_t;
        (st2 + 2.0 * self.sigma_gw_sq(self.rate_high))
            / (st2 + 2.0 * self.sigma_gw_sq(self.rate_low))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let d = CalibratedDefaults::paper();
        assert_eq!(d.tau, 0.010);
        assert_eq!(d.rate_low, 10.0);
        assert_eq!(d.rate_high, 40.0);
        assert_eq!(d.discipline, TimerDiscipline::Absolute);
    }

    #[test]
    fn cit_r_lands_in_the_papers_band() {
        let d = CalibratedDefaults::paper();
        let r = d.predicted_r(0.0);
        assert!(r > 1.25 && r < 1.6, "r = {r}");
    }

    #[test]
    fn vit_drives_r_toward_one() {
        let d = CalibratedDefaults::paper();
        let r_cit = d.predicted_r(0.0);
        let r_small = d.predicted_r(100e-6); // σ_T = 100 µs
        let r_big = d.predicted_r(1e-3); // σ_T = 1 ms
        assert!(r_small < r_cit);
        assert!(r_big < r_small);
        assert!(r_big - 1.0 < 1e-3, "r(1ms) = {r_big}");
    }

    #[test]
    fn schedules_build() {
        let d = CalibratedDefaults::paper();
        assert!(d.cit_schedule().is_ok());
        assert!(d.vit_schedule(1e-3).is_ok());
        assert!(d.vit_schedule(0.0).is_err());
    }

    #[test]
    fn sigma_gw_increases_with_rate() {
        let d = CalibratedDefaults::paper();
        assert!(d.sigma_gw_sq(40.0) > d.sigma_gw_sq(10.0));
    }
}
