//! # linkpad-core
//!
//! The link-padding countermeasure of Fu et al. (ICPP 2003) — the paper's
//! primary subject — as a reusable library:
//!
//! * [`schedule`] — padding timer schedules: **CIT** (constant interval
//!   timer, the classic approach) and **VIT** (variable interval timer,
//!   the paper's proposed defence), with pluggable interval laws.
//! * [`jitter`] — the gateway disturbance model `δ_gw` (paper eq. 11):
//!   baseline OS timer jitter plus *payload-correlated* interrupt-blocking
//!   delay. This is the mechanism the paper identifies as the reason CIT
//!   padding leaks: "the timer's interrupts may be subtly but randomly
//!   delayed by incoming payload packets", so `σ_gw,h > σ_gw,l`.
//! * [`gateway`] — the sender gateway GW1 (payload queue + padding timer +
//!   dummy filling, §3.2) and receiver gateway GW2 (dummy stripping) as
//!   `linkpad-sim` nodes, with QoS instrumentation.
//! * [`overhead`] — bandwidth-overhead and payload-delay accounting (the
//!   QoS coupling the paper's NetCamo discussion raises).
//! * [`wire`] — a fixed-size encrypted-frame encoding used by the
//!   real-time testbed (`linkpad-testbed`) to ship packets over real
//!   channels.
//! * [`calibration`] — the documented default constants that place the
//!   simulated system in the paper's measured regimes (10 ms timer,
//!   µs-scale gateway jitter, 10/40 pps payload rates).
//!
//! The threat-model invariant is enforced structurally: padded packets
//! all have the same size, and the adversary-facing APIs observe nothing
//! but timestamps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod gateway;
pub mod jitter;
pub mod overhead;
pub mod schedule;
pub mod wire;

pub use calibration::CalibratedDefaults;
pub use gateway::{GatewayHandle, ReceiverGateway, ReceiverHandle, SenderGateway, TimerDiscipline};
pub use jitter::GatewayJitterModel;
pub use overhead::OverheadReport;
pub use schedule::{AdaptiveCohortSchedule, AdaptivePadding, LinkSchedule, PaddingSchedule};
