//! # linkpad-adversary
//!
//! The statistical traffic-analysis adversary of Fu et al. (ICPP 2003),
//! §3.3: a passive observer who taps the unprotected network, collects
//! packet inter-arrival times (PIATs), summarizes each sample with a
//! feature statistic, and classifies the hidden payload rate with a Bayes
//! rule over Gaussian-KDE-estimated class-conditional densities.
//!
//! * [`feature`] — the feature statistics: sample mean (eq. 17), sample
//!   variance (eq. 19), histogram sample entropy (eq. 24/25), plus a
//!   robust MAD feature for the outlier ablation.
//! * [`classifier`] — off-line training (KDE per class, eq. 1–2) and
//!   run-time classification; two-class decision threshold extraction
//!   (the `d` of Fig. 2 / eq. 3–4).
//! * [`pipeline`] — the end-to-end experiment: slice PIAT streams into
//!   samples of size *n*, train, test, and report a detection rate with
//!   a Wilson confidence interval (eq. 6–7).
//! * [`aggregate`] — the aggregate-link adversary: flow-count
//!   estimation and rate-signature correlation over *window-level*
//!   trunk statistics (counts, byte rates, PIAT moments per window)
//!   instead of per-flow PIATs.
//!
//! **Information barrier.** Nothing in this crate accepts packet kinds,
//! payload contents, or gateway state: the adversary sees `&[f64]` PIATs
//! and nothing else, exactly as the threat model prescribes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod classifier;
pub mod feature;
pub mod pipeline;

pub use aggregate::{estimate_flow_count, FlowCountEstimate};
pub use classifier::KdeBayes;
pub use feature::{Feature, MedianAbsDev, SampleEntropy, SampleMean, SampleVariance};
pub use pipeline::{DetectionReport, DetectionStudy};
