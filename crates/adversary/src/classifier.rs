//! Bayes classification over KDE-estimated feature densities.
//!
//! Off-line training (paper §3.3): for each payload rate ωᵢ the adversary
//! reconstructs the padding system, collects feature samples, and fits a
//! Gaussian kernel density estimate `f̂(s|ωᵢ)`. Run-time classification
//! applies the Bayes rule (eq. 1–2):
//!
//! ```text
//! decide ωᵢ  where  i = argmaxᵢ  f̂(s|ωᵢ)·P(ωᵢ)
//! ```
//!
//! For the two-class case, [`KdeBayes::two_class_threshold`] recovers the
//! decision threshold `d` of eq. 3–4 (the crossing of the two posterior
//! curves in Fig. 2).

use linkpad_stats::kde::GaussianKde;
use linkpad_stats::{Result, StatsError};

/// A trained Bayes classifier: one KDE per class plus priors.
#[derive(Debug, Clone)]
pub struct KdeBayes {
    classes: Vec<GaussianKde>,
    ln_priors: Vec<f64>,
}

impl KdeBayes {
    /// Train from per-class feature samples with equal priors.
    pub fn train(features_per_class: &[Vec<f64>]) -> Result<Self> {
        let m = features_per_class.len();
        let priors = vec![1.0 / m as f64; m];
        Self::train_with_priors(features_per_class, &priors)
    }

    /// Train with explicit priors `P(ωᵢ)` (must be positive and sum to 1
    /// within tolerance).
    pub fn train_with_priors(features_per_class: &[Vec<f64>], priors: &[f64]) -> Result<Self> {
        if features_per_class.len() < 2 {
            return Err(StatsError::InsufficientData {
                what: "bayes classifier classes",
                needed: 2,
                got: features_per_class.len(),
            });
        }
        if priors.len() != features_per_class.len() {
            return Err(StatsError::InsufficientData {
                what: "bayes classifier priors",
                needed: features_per_class.len(),
                got: priors.len(),
            });
        }
        let total: f64 = priors.iter().sum();
        if priors.iter().any(|&p| p.is_nan() || p <= 0.0) || (total - 1.0).abs() > 1e-6 {
            return Err(StatsError::InvalidProbability {
                what: "bayes priors",
                value: total,
            });
        }
        let mut classes = Vec::with_capacity(features_per_class.len());
        for feats in features_per_class {
            classes.push(GaussianKde::fit(feats)?);
        }
        Ok(Self {
            classes,
            ln_priors: priors.iter().map(|p| p.ln()).collect(),
        })
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Estimated class-conditional density `f̂(s|ωᵢ)`.
    pub fn class_pdf(&self, class: usize, s: f64) -> f64 {
        self.classes[class].pdf(s)
    }

    /// Log-posterior (up to the shared evidence constant):
    /// `ln f̂(s|ωᵢ) + ln P(ωᵢ)`.
    pub fn ln_score(&self, class: usize, s: f64) -> f64 {
        self.classes[class].ln_pdf(s) + self.ln_priors[class]
    }

    /// Classify one feature value (eq. 1–2). Ties resolve to the lower
    /// class index, deterministically.
    pub fn classify(&self, s: f64) -> usize {
        let mut best = 0;
        let mut best_score = self.ln_score(0, s);
        for i in 1..self.classes.len() {
            let score = self.ln_score(i, s);
            if score > best_score {
                best = i;
                best_score = score;
            }
        }
        best
    }

    /// For a two-class classifier, the decision threshold `d` (eq. 3):
    /// the feature value where the two weighted densities cross, located
    /// between the two class means. Returns `None` for m > 2 or if no
    /// sign change is bracketed (one class dominates everywhere).
    pub fn two_class_threshold(&self) -> Option<f64> {
        if self.classes.len() != 2 {
            return None;
        }
        // Search between the medians-ish of the two training supports.
        let (lo0, hi0) = self.classes[0].support_hint();
        let (lo1, hi1) = self.classes[1].support_hint();
        let lo = lo0.min(lo1);
        let hi = hi0.max(hi1);
        let g = |s: f64| self.ln_score(0, s) - self.ln_score(1, s);
        // Grid scan for a sign change, then bisect.
        const GRID: usize = 512;
        let mut prev_s = lo;
        let mut prev_g = g(lo);
        for i in 1..=GRID {
            let s = lo + (hi - lo) * i as f64 / GRID as f64;
            let cur = g(s);
            if prev_g == 0.0 {
                return Some(prev_s);
            }
            if prev_g.signum() != cur.signum() {
                // Bisection refine.
                let (mut a, mut b) = (prev_s, s);
                let (mut ga, _) = (prev_g, cur);
                for _ in 0..80 {
                    let mid = 0.5 * (a + b);
                    let gm = g(mid);
                    if gm == 0.0 {
                        return Some(mid);
                    }
                    if ga.signum() != gm.signum() {
                        b = mid;
                    } else {
                        a = mid;
                        ga = gm;
                    }
                }
                return Some(0.5 * (a + b));
            }
            prev_s = s;
            prev_g = cur;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_stats::normal::Normal;
    use linkpad_stats::rng::MasterSeed;

    fn cloud(mu: f64, sigma: f64, n: usize, seed: u64) -> Vec<f64> {
        let d = Normal::new(mu, sigma).unwrap();
        let mut rng = MasterSeed::new(seed).stream(0);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn well_separated_classes_classify_cleanly() {
        let c = KdeBayes::train(&[cloud(0.0, 1.0, 400, 1), cloud(10.0, 1.0, 400, 2)]).unwrap();
        assert_eq!(c.class_count(), 2);
        assert_eq!(c.classify(-0.5), 0);
        assert_eq!(c.classify(10.3), 1);
        // Inside the reach of each training cloud (the dead zone between
        // clouds is decided by nearest-kernel fallback, whose exact
        // midpoint depends on sampled extremes).
        assert_eq!(c.classify(4.0), 0);
        assert_eq!(c.classify(6.0), 1);
    }

    #[test]
    fn threshold_sits_between_separated_classes() {
        let c = KdeBayes::train(&[cloud(0.0, 1.0, 500, 3), cloud(10.0, 1.0, 500, 4)]).unwrap();
        let d = c.two_class_threshold().expect("threshold exists");
        assert!((d - 5.0).abs() < 0.5, "d = {d}");
        // The threshold is the point of score equality.
        assert!((c.ln_score(0, d) - c.ln_score(1, d)).abs() < 1e-6);
    }

    #[test]
    fn priors_shift_the_decision() {
        let feats = [cloud(0.0, 1.0, 500, 5), cloud(2.0, 1.0, 500, 6)];
        let balanced = KdeBayes::train(&feats).unwrap();
        let skewed = KdeBayes::train_with_priors(&feats, &[0.95, 0.05]).unwrap();
        // At the balanced threshold, the skewed classifier must prefer
        // the high-prior class.
        let d = balanced.two_class_threshold().unwrap();
        assert_eq!(skewed.classify(d), 0);
    }

    #[test]
    fn overlapping_classes_get_near_chance_accuracy() {
        // Same distribution for both classes: accuracy ~50%.
        let c = KdeBayes::train(&[cloud(0.0, 1.0, 400, 7), cloud(0.0, 1.0, 400, 8)]).unwrap();
        let probe = cloud(0.0, 1.0, 2000, 9);
        let as_zero = probe.iter().filter(|&&s| c.classify(s) == 0).count();
        let frac = as_zero as f64 / probe.len() as f64;
        assert!((frac - 0.5).abs() < 0.15, "frac = {frac}");
    }

    #[test]
    fn three_class_classification_works() {
        let c = KdeBayes::train(&[
            cloud(0.0, 0.5, 300, 10),
            cloud(3.0, 0.5, 300, 11),
            cloud(6.0, 0.5, 300, 12),
        ])
        .unwrap();
        assert_eq!(c.classify(0.1), 0);
        assert_eq!(c.classify(3.1), 1);
        assert_eq!(c.classify(6.2), 2);
        assert!(c.two_class_threshold().is_none()); // only defined for m=2
    }

    #[test]
    fn training_validates_input() {
        assert!(KdeBayes::train(&[cloud(0.0, 1.0, 100, 13)]).is_err()); // one class
        assert!(KdeBayes::train(&[vec![1.0], cloud(0.0, 1.0, 100, 14)]).is_err()); // too few
        let feats = [cloud(0.0, 1.0, 100, 15), cloud(1.0, 1.0, 100, 16)];
        assert!(KdeBayes::train_with_priors(&feats, &[0.5]).is_err()); // wrong len
        assert!(KdeBayes::train_with_priors(&feats, &[0.9, 0.3]).is_err()); // sum != 1
        assert!(KdeBayes::train_with_priors(&feats, &[1.0, 0.0]).is_err()); // zero prior
    }

    #[test]
    fn far_tail_queries_stay_deterministic() {
        let c = KdeBayes::train(&[cloud(0.0, 1.0, 200, 17), cloud(5.0, 2.0, 200, 18)]).unwrap();
        // Way outside both supports the scores stay finite, and the class
        // with the wider bandwidth (heavier tails) wins both extremes —
        // its log-density decays quadratically slower.
        assert_eq!(c.classify(1e6), 1);
        assert_eq!(c.classify(-1e6), 1);
        assert!(c.ln_score(0, 1e6).is_finite() && c.ln_score(1, -1e6).is_finite());
    }
}
