//! Feature statistics over PIAT samples.
//!
//! The paper studies three: **sample mean**, **sample variance** and
//! **sample entropy** (§3.3 step 1). Each maps a PIAT sample
//! `{X₁ … Xₙ}` to one scalar the Bayes classifier consumes. The entropy
//! feature uses the Moddemeijer histogram estimator with a *fixed* bin
//! width, so the `ln Δh` term is a class-independent constant and drops
//! out (paper eq. 24 → 25).
//!
//! [`MedianAbsDev`] is an extension feature for the robustness ablation:
//! the paper observes (§5.2) that sample variance is "very sensitive to
//! outliers"; MAD is its robust counterpart and quantifies how much of
//! the variance feature's degradation under congestion is outlier damage.

use linkpad_stats::histogram::HistogramSpec;
use linkpad_stats::moments::{sample_mean, sample_variance};
use linkpad_stats::quantiles::median_abs_deviation;
use linkpad_stats::{Result, StatsError};

/// A scalar statistic over a PIAT sample.
pub trait Feature: Send + Sync {
    /// Compute the statistic. Errors on samples too small to support it.
    fn compute(&self, piats: &[f64]) -> Result<f64>;

    /// Display name (used in bench output and reports).
    fn name(&self) -> &'static str;

    /// Smallest sample size this feature is defined for.
    fn min_sample_size(&self) -> usize {
        1
    }
}

/// Sample mean `X̄` (paper eq. 17).
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleMean;

impl Feature for SampleMean {
    fn compute(&self, piats: &[f64]) -> Result<f64> {
        sample_mean(piats)
    }
    fn name(&self) -> &'static str {
        "sample-mean"
    }
}

/// Unbiased sample variance `Y` (paper eq. 19).
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleVariance;

impl Feature for SampleVariance {
    fn compute(&self, piats: &[f64]) -> Result<f64> {
        sample_variance(piats)
    }
    fn name(&self) -> &'static str {
        "sample-variance"
    }
    fn min_sample_size(&self) -> usize {
        2
    }
}

/// Histogram sample entropy (paper eq. 25) with a fixed binning.
#[derive(Debug, Clone, Copy)]
pub struct SampleEntropy {
    spec: HistogramSpec,
}

impl SampleEntropy {
    /// Entropy feature with an explicit binning.
    pub fn new(spec: HistogramSpec) -> Self {
        Self { spec }
    }

    /// The binning used in all experiments of this workspace: origin 0,
    /// bin width `bin_width` seconds. The paper requires only that the
    /// bin size be held constant across the experiment; 2 µs resolves
    /// the µs-scale gateway jitter of the calibrated system without
    /// starving bins at n = 100.
    pub fn with_bin_width(bin_width: f64) -> Result<Self> {
        Ok(Self {
            spec: HistogramSpec::new(0.0, bin_width)?,
        })
    }

    /// The calibrated default (2 µs bins).
    pub fn calibrated() -> Self {
        Self::with_bin_width(2e-6).expect("constant is valid")
    }

    /// The binning spec.
    pub fn spec(&self) -> HistogramSpec {
        self.spec
    }
}

impl Feature for SampleEntropy {
    fn compute(&self, piats: &[f64]) -> Result<f64> {
        if piats.is_empty() {
            return Err(StatsError::InsufficientData {
                what: "sample entropy",
                needed: 1,
                got: 0,
            });
        }
        self.spec.histogram(piats).entropy()
    }
    fn name(&self) -> &'static str {
        "sample-entropy"
    }
}

/// Median absolute deviation — robust scale feature (extension).
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianAbsDev;

impl Feature for MedianAbsDev {
    fn compute(&self, piats: &[f64]) -> Result<f64> {
        median_abs_deviation(piats)
    }
    fn name(&self) -> &'static str {
        "median-abs-dev"
    }
    fn min_sample_size(&self) -> usize {
        2
    }
}

/// The paper's three features boxed up for sweeps, in presentation order.
pub fn paper_features() -> Vec<Box<dyn Feature>> {
    vec![
        Box::new(SampleMean),
        Box::new(SampleVariance),
        Box::new(SampleEntropy::calibrated()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_stats::normal::Normal;
    use linkpad_stats::rng::MasterSeed;

    fn sample(mu: f64, sigma: f64, n: usize, seed: u64) -> Vec<f64> {
        let d = Normal::new(mu, sigma).unwrap();
        let mut rng = MasterSeed::new(seed).stream(0);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn mean_feature_recovers_tau() {
        let xs = sample(0.010, 6e-6, 1000, 1);
        let m = SampleMean.compute(&xs).unwrap();
        assert!((m - 0.010).abs() < 1e-6);
        assert_eq!(SampleMean.name(), "sample-mean");
    }

    #[test]
    fn variance_feature_separates_classes() {
        let lo = sample(0.010, 6e-6, 2000, 2);
        let hi = sample(0.010, 8e-6, 2000, 3);
        let v_lo = SampleVariance.compute(&lo).unwrap();
        let v_hi = SampleVariance.compute(&hi).unwrap();
        assert!(v_hi > v_lo);
        assert_eq!(SampleVariance.min_sample_size(), 2);
    }

    #[test]
    fn entropy_feature_separates_classes() {
        let ent = SampleEntropy::calibrated();
        let lo = sample(0.010, 6e-6, 2000, 4);
        let hi = sample(0.010, 8e-6, 2000, 5);
        assert!(ent.compute(&hi).unwrap() > ent.compute(&lo).unwrap());
        assert_eq!(ent.name(), "sample-entropy");
    }

    #[test]
    fn entropy_uses_fixed_binning() {
        let ent = SampleEntropy::with_bin_width(1e-6).unwrap();
        assert_eq!(ent.spec().bin_width(), 1e-6);
        assert!(SampleEntropy::with_bin_width(0.0).is_err());
        assert!(SampleEntropy::with_bin_width(-1.0).is_err());
    }

    #[test]
    fn features_error_on_empty_input() {
        assert!(SampleMean.compute(&[]).is_err());
        assert!(SampleVariance.compute(&[]).is_err());
        assert!(SampleVariance.compute(&[1.0]).is_err());
        assert!(SampleEntropy::calibrated().compute(&[]).is_err());
        assert!(MedianAbsDev.compute(&[]).is_err());
    }

    #[test]
    fn mad_ignores_outliers_variance_does_not() {
        let mut xs = sample(0.010, 6e-6, 1000, 6);
        let v0 = SampleVariance.compute(&xs).unwrap();
        let m0 = MedianAbsDev.compute(&xs).unwrap();
        xs.push(1.0); // one second-long stall
        let v1 = SampleVariance.compute(&xs).unwrap();
        let m1 = MedianAbsDev.compute(&xs).unwrap();
        assert!(v1 / v0 > 100.0);
        assert!((m1 - m0).abs() / m0 < 0.05);
    }

    #[test]
    fn paper_features_come_in_canonical_order() {
        let fs = paper_features();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0].name(), "sample-mean");
        assert_eq!(fs[1].name(), "sample-variance");
        assert_eq!(fs[2].name(), "sample-entropy");
    }
}
