//! The end-to-end detection experiment.
//!
//! This is the paper's §3.3 measurement loop: slice each class's PIAT
//! stream into disjoint samples of size *n*, compute the feature on each
//! sample, fit the per-class KDEs from training samples, classify held-out
//! test samples, and report the **detection rate** — the probability of
//! correct identification (eq. 6–7), the paper's security metric.

use crate::classifier::KdeBayes;
use crate::feature::Feature;
use linkpad_stats::special::std_normal_quantile;
use linkpad_stats::{Result, StatsError};

/// Slice a PIAT stream into disjoint samples of `n` and compute the
/// feature on each. Trailing PIATs that do not fill a sample are dropped;
/// use [`features_from_piats_counted`] when the caller needs to account
/// for that waste.
pub fn features_from_piats(feature: &dyn Feature, piats: &[f64], n: usize) -> Result<Vec<f64>> {
    features_from_piats_counted(feature, piats, n).map(|(feats, _)| feats)
}

/// [`features_from_piats`], also returning how many trailing PIATs were
/// dropped because they did not fill a sample of `n`. Sweep harnesses
/// surface the total through [`DetectionReport::dropped_piats`] so
/// badly-aligned sample sizes show up as visible sample waste instead of
/// silently shrinking the study.
pub fn features_from_piats_counted(
    feature: &dyn Feature,
    piats: &[f64],
    n: usize,
) -> Result<(Vec<f64>, usize)> {
    if n < feature.min_sample_size().max(1) {
        return Err(StatsError::InsufficientData {
            what: "feature sample size",
            needed: feature.min_sample_size().max(1),
            got: n,
        });
    }
    let mut out = Vec::with_capacity(piats.len() / n);
    for chunk in piats.chunks_exact(n) {
        out.push(feature.compute(chunk)?);
    }
    if out.is_empty() {
        return Err(StatsError::InsufficientData {
            what: "piat stream (no full sample)",
            needed: n,
            got: piats.len(),
        });
    }
    Ok((out, piats.len() % n))
}

/// Result of one detection experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReport {
    /// Correct classifications.
    pub correct: u64,
    /// Total classifications attempted.
    pub total: u64,
    /// Per-class `(correct, total)`.
    pub per_class: Vec<(u64, u64)>,
    /// The two-class Bayes threshold `d`, when defined.
    pub threshold: Option<f64>,
    /// PIATs the study *collected but never used*: stream tails beyond
    /// the train+test budget plus partial trailing sample chunks, summed
    /// over classes. Zero when the sweep's collection is sized exactly;
    /// a large value means the sweep config wastes sample budget.
    pub dropped_piats: u64,
}

impl DetectionReport {
    /// The detection rate `v` (eq. 7): fraction of correct
    /// identifications over equal-prior test sets.
    pub fn detection_rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// Wilson score interval for the detection rate at confidence
    /// `1 − alpha` (e.g. `alpha = 0.05` for 95%).
    pub fn wilson_interval(&self, alpha: f64) -> (f64, f64) {
        if self.total == 0 {
            return (0.0, 1.0);
        }
        let z = std_normal_quantile(1.0 - alpha / 2.0);
        let n = self.total as f64;
        let p = self.detection_rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Detection rate for a single class (recall of that class).
    pub fn class_rate(&self, class: usize) -> f64 {
        let (c, t) = self.per_class[class];
        if t == 0 {
            0.0
        } else {
            c as f64 / t as f64
        }
    }
}

/// Configuration of a detection experiment.
#[derive(Debug, Clone, Copy)]
pub struct DetectionStudy {
    /// Sample size n: PIATs per classified sample.
    pub sample_size: usize,
    /// Training samples per class.
    pub train_samples: usize,
    /// Test samples per class.
    pub test_samples: usize,
}

impl DetectionStudy {
    /// A study with the workspace's standard budget: 300 training and
    /// 200 test samples per class — enough that the binomial error on the
    /// detection rate is ~±2.5% at 95% confidence.
    pub fn standard(sample_size: usize) -> Self {
        Self {
            sample_size,
            train_samples: 300,
            test_samples: 200,
        }
    }

    /// PIATs needed per class for this study.
    pub fn piats_needed(&self) -> usize {
        (self.train_samples + self.test_samples) * self.sample_size
    }

    /// Run the study for one feature over per-class PIAT streams
    /// (index = class). Streams must hold at least
    /// [`DetectionStudy::piats_needed`] values each.
    pub fn run(
        &self,
        feature: &dyn Feature,
        piats_per_class: &[Vec<f64>],
    ) -> Result<DetectionReport> {
        if self.train_samples < 2 || self.test_samples < 1 {
            return Err(StatsError::InsufficientData {
                what: "study sample budget",
                needed: 2,
                got: self.train_samples.min(self.test_samples),
            });
        }
        let mut train_features = Vec::with_capacity(piats_per_class.len());
        let mut test_features = Vec::with_capacity(piats_per_class.len());
        let mut dropped = 0u64;
        for stream in piats_per_class {
            let needed = self.piats_needed();
            if stream.len() < needed {
                return Err(StatsError::InsufficientData {
                    what: "piat stream for study",
                    needed,
                    got: stream.len(),
                });
            }
            // Anything past the budget is collected-but-unused sample
            // waste; the train/test splits are exact multiples of n, so
            // chunking inside them never drops more.
            dropped += (stream.len() - needed) as u64;
            let split = self.train_samples * self.sample_size;
            let (train, d_train) =
                features_from_piats_counted(feature, &stream[..split], self.sample_size)?;
            let (test, d_test) =
                features_from_piats_counted(feature, &stream[split..needed], self.sample_size)?;
            dropped += (d_train + d_test) as u64;
            train_features.push(train);
            test_features.push(test);
        }
        let classifier = KdeBayes::train(&train_features)?;
        let mut report = evaluate(&classifier, &test_features);
        report.dropped_piats = dropped;
        Ok(report)
    }
}

/// Score a trained classifier against per-class test features.
pub fn evaluate(classifier: &KdeBayes, test_features_per_class: &[Vec<f64>]) -> DetectionReport {
    let mut per_class = Vec::with_capacity(test_features_per_class.len());
    let mut correct = 0u64;
    let mut total = 0u64;
    for (class, feats) in test_features_per_class.iter().enumerate() {
        let mut class_correct = 0u64;
        for &s in feats {
            if classifier.classify(s) == class {
                class_correct += 1;
            }
        }
        correct += class_correct;
        total += feats.len() as u64;
        per_class.push((class_correct, feats.len() as u64));
    }
    DetectionReport {
        correct,
        total,
        per_class,
        threshold: classifier.two_class_threshold(),
        dropped_piats: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SampleEntropy, SampleMean, SampleVariance};
    use linkpad_stats::normal::Normal;
    use linkpad_stats::rng::MasterSeed;

    /// Synthetic PIAT stream: N(τ, σ²), the paper's model at a tap next
    /// to GW1.
    fn piats(sigma: f64, count: usize, seed: u64) -> Vec<f64> {
        let d = Normal::new(0.010, sigma).unwrap();
        let mut rng = MasterSeed::new(seed).stream(0);
        (0..count).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn features_from_piats_chunks_disjointly() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let feats = features_from_piats(&SampleMean, &xs, 5).unwrap();
        assert_eq!(feats, vec![2.0, 7.0]);
        // 3-chunks: drops the trailing partial chunk.
        let feats = features_from_piats(&SampleMean, &xs, 3).unwrap();
        assert_eq!(feats.len(), 3);
    }

    #[test]
    fn features_from_piats_counts_the_dropped_tail() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let (feats, dropped) = features_from_piats_counted(&SampleMean, &xs, 3).unwrap();
        assert_eq!(feats.len(), 3);
        assert_eq!(dropped, 1);
        let (_, none) = features_from_piats_counted(&SampleMean, &xs, 5).unwrap();
        assert_eq!(none, 0);
    }

    #[test]
    fn study_surfaces_sample_waste() {
        let study = DetectionStudy {
            sample_size: 200,
            train_samples: 20,
            test_samples: 10,
        };
        // Exactly-sized streams waste nothing.
        let lo = piats(6e-6, study.piats_needed(), 20);
        let hi = piats(9e-6, study.piats_needed(), 21);
        let report = study
            .run(&SampleVariance, &[lo.clone(), hi.clone()])
            .unwrap();
        assert_eq!(report.dropped_piats, 0);
        // Over-collected streams surface the unused tail, per class.
        let mut lo_fat = lo;
        lo_fat.extend(piats(6e-6, 137, 22));
        let mut hi_fat = hi;
        hi_fat.extend(piats(9e-6, 63, 23));
        let report = study.run(&SampleVariance, &[lo_fat, hi_fat]).unwrap();
        assert_eq!(report.dropped_piats, 137 + 63);
    }

    #[test]
    fn features_from_piats_validates() {
        assert!(features_from_piats(&SampleVariance, &[1.0, 2.0], 1).is_err()); // n < min
        assert!(features_from_piats(&SampleMean, &[1.0], 5).is_err()); // no full chunk
    }

    #[test]
    fn variance_feature_detects_wider_class() {
        // σ_h/σ_l chosen so r ≈ 1.8 — easily detectable at n = 400.
        let study = DetectionStudy {
            sample_size: 400,
            train_samples: 60,
            test_samples: 60,
        };
        let lo = piats(6e-6, study.piats_needed(), 1);
        let hi = piats(8e-6, study.piats_needed(), 2);
        let report = study.run(&SampleVariance, &[lo, hi]).unwrap();
        assert!(
            report.detection_rate() > 0.9,
            "rate = {}",
            report.detection_rate()
        );
        assert!(report.threshold.is_some());
    }

    #[test]
    fn entropy_feature_detects_wider_class() {
        let study = DetectionStudy {
            sample_size: 400,
            train_samples: 60,
            test_samples: 60,
        };
        let lo = piats(6e-6, study.piats_needed(), 3);
        let hi = piats(8e-6, study.piats_needed(), 4);
        let report = study.run(&SampleEntropy::calibrated(), &[lo, hi]).unwrap();
        assert!(
            report.detection_rate() > 0.85,
            "rate = {}",
            report.detection_rate()
        );
    }

    #[test]
    fn mean_feature_is_blind_when_means_match() {
        let study = DetectionStudy {
            sample_size: 400,
            train_samples: 60,
            test_samples: 60,
        };
        let lo = piats(6e-6, study.piats_needed(), 5);
        let hi = piats(8e-6, study.piats_needed(), 6);
        let report = study.run(&SampleMean, &[lo, hi]).unwrap();
        let rate = report.detection_rate();
        assert!(rate < 0.62, "sample mean should hover near chance: {rate}");
    }

    #[test]
    fn per_class_rates_partition_total() {
        let study = DetectionStudy {
            sample_size: 200,
            train_samples: 40,
            test_samples: 30,
        };
        let lo = piats(6e-6, study.piats_needed(), 7);
        let hi = piats(9e-6, study.piats_needed(), 8);
        let report = study.run(&SampleVariance, &[lo, hi]).unwrap();
        let sum: u64 = report.per_class.iter().map(|&(c, _)| c).sum();
        assert_eq!(sum, report.correct);
        let tot: u64 = report.per_class.iter().map(|&(_, t)| t).sum();
        assert_eq!(tot, report.total);
        assert_eq!(report.total, 60);
    }

    #[test]
    fn wilson_interval_brackets_the_rate() {
        let report = DetectionReport {
            correct: 80,
            total: 100,
            per_class: vec![(40, 50), (40, 50)],
            threshold: None,
            dropped_piats: 0,
        };
        let (lo, hi) = report.wilson_interval(0.05);
        assert!(lo < 0.8 && 0.8 < hi);
        assert!(lo > 0.70 && hi < 0.89, "({lo}, {hi})");
        // Degenerate case.
        let empty = DetectionReport {
            correct: 0,
            total: 0,
            per_class: vec![],
            threshold: None,
            dropped_piats: 0,
        };
        assert_eq!(empty.wilson_interval(0.05), (0.0, 1.0));
        assert_eq!(empty.detection_rate(), 0.0);
    }

    #[test]
    fn insufficient_stream_is_an_error() {
        let study = DetectionStudy::standard(100);
        let too_short = piats(6e-6, 100, 9);
        let ok = piats(8e-6, study.piats_needed(), 10);
        assert!(study.run(&SampleVariance, &[too_short, ok]).is_err());
    }

    #[test]
    fn standard_study_budget() {
        let s = DetectionStudy::standard(1000);
        assert_eq!(s.piats_needed(), 500 * 1000);
        assert_eq!(s.train_samples, 300);
        assert_eq!(s.test_samples, 200);
    }
}
