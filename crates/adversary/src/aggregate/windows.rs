//! Window-series tools: rate-signature correlation over trunk windows.
//!
//! A rate-switching target flow modulates the aggregate's window-level
//! statistics with a square wave at the switching period (the paper's
//! hidden rate state, made time-varying). These helpers let the
//! adversary test a *candidate* signature against an observed window
//! series — Pearson correlation against a ±1 square wave swept over
//! phase — before handing the per-segment classification to the
//! KDE-Bayes machinery.
//!
//! Window series may contain `NaN` entries (empty windows have no PIAT
//! moments); the correlation treats them as missing and skips those
//! windows pairwise.

use linkpad_stats::{Result, StatsError};

/// Pearson correlation of two equally-long series, skipping index pairs
/// where either value is non-finite. Errors if fewer than two finite
/// pairs remain or either series is constant over them.
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return Err(StatsError::InsufficientData {
            what: "correlation series",
            needed: 2,
            got: a.len().min(b.len()),
        });
    }
    let (mut n, mut sa, mut sb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            n += 1.0;
            sa += x;
            sb += y;
        }
    }
    if n < 2.0 {
        return Err(StatsError::InsufficientData {
            what: "finite correlation pairs",
            needed: 2,
            got: n as usize,
        });
    }
    let (ma, mb) = (sa / n, sb / n);
    let (mut num, mut va, mut vb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            num += (x - ma) * (y - mb);
            va += (x - ma) * (x - ma);
            vb += (y - mb) * (y - mb);
        }
    }
    if va <= 0.0 || vb <= 0.0 {
        return Err(StatsError::NonPositive {
            what: "correlation variance",
            value: va.min(vb),
        });
    }
    Ok(num / (va * vb).sqrt())
}

/// Mask a window series by its coverage: entries whose coverage is
/// below `min_coverage` become `NaN` — the "missing" marker every
/// correlation helper in this module already skips pairwise. This is
/// the gap-aware hook for rate detection: feed
/// `mask_low_coverage(&piat_variances, &coverages, 0.5)` to
/// [`pearson`]/[`best_phase`] and gapped windows drop out of the lock
/// instead of feeding it fabricated statistics. Series shorter than
/// the mask (or vice versa) are truncated to the common prefix.
pub fn mask_low_coverage(series: &[f64], coverages: &[f64], min_coverage: f64) -> Vec<f64> {
    series
        .iter()
        .zip(coverages)
        .map(|(&x, &c)| {
            if c.is_finite() && c >= min_coverage {
                x
            } else {
                f64::NAN
            }
        })
        .collect()
}

/// A ±1 square-wave signature of a two-rate switching schedule, sampled
/// per window: −1 over the first half of each period (the low-rate
/// dwell; switching sources start low), +1 over the second half.
/// `period_windows` is the full low+high period in window units;
/// `phase_windows` shifts the wave right.
pub fn square_signature(period_windows: f64, phase_windows: f64, len: usize) -> Vec<f64> {
    assert!(
        period_windows.is_finite() && period_windows > 0.0,
        "signature period must be positive"
    );
    (0..len)
        .map(|i| {
            let pos = ((i as f64 - phase_windows) / period_windows).rem_euclid(1.0);
            if pos < 0.5 {
                -1.0
            } else {
                1.0
            }
        })
        .collect()
}

/// Correlate `series` against the square signature at `period_windows`,
/// scanning `steps` evenly-spaced phases over one period. Returns the
/// best `(phase_windows, correlation)` by absolute correlation — the
/// adversary cares about lock strength; the sign tells which dwell is
/// which.
pub fn best_phase(series: &[f64], period_windows: f64, steps: usize) -> Result<(f64, f64)> {
    if steps == 0 {
        return Err(StatsError::InsufficientData {
            what: "phase scan steps",
            needed: 1,
            got: 0,
        });
    }
    let mut best = None;
    for k in 0..steps {
        let phase = period_windows * k as f64 / steps as f64;
        let sig = square_signature(period_windows, phase, series.len());
        if let Ok(r) = pearson(series, &sig) {
            if best.is_none_or(|(_, b): (f64, f64)| r.abs() > b.abs()) {
                best = Some((phase, r));
            }
        }
    }
    best.ok_or(StatsError::InsufficientData {
        what: "correlatable phase",
        needed: 1,
        got: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_identical_series_is_one() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let r = pearson(&xs, &xs).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_skips_nan_pairs() {
        let a = [1.0, f64::NAN, 3.0, 4.0, 5.0];
        let b = [2.0, 7.0, 6.0, f64::NAN, 10.0];
        // Finite pairs: (1,2), (3,6), (5,10) — perfectly linear.
        let r = pearson(&a, &b).unwrap();
        assert!((r - 1.0).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn pearson_validates() {
        assert!(pearson(&[1.0], &[2.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_err()); // length mismatch
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_err()); // constant
        assert!(pearson(&[f64::NAN, 1.0], &[1.0, 2.0]).is_err()); // 1 finite pair
    }

    #[test]
    fn square_signature_alternates_at_the_period() {
        let sig = square_signature(10.0, 0.0, 20);
        assert_eq!(&sig[..5], &[-1.0; 5]);
        assert_eq!(&sig[5..10], &[1.0; 5]);
        assert_eq!(&sig[10..15], &[-1.0; 5]);
        // Phase shifts the wave right (earlier indices wrap into the
        // previous period's high half).
        let shifted = square_signature(10.0, 2.0, 20);
        assert_eq!(&shifted[..2], &[1.0, 1.0]);
        assert_eq!(&shifted[2..7], &[-1.0; 5]);
        assert_eq!(&shifted[7..12], &[1.0; 5]);
    }

    #[test]
    fn best_phase_locks_onto_an_embedded_square_wave() {
        // Noise-free square wave at period 12, phase 3.
        let truth = square_signature(12.0, 3.0, 120);
        let (phase, r) = best_phase(&truth, 12.0, 24).unwrap();
        assert!((r.abs() - 1.0).abs() < 1e-9, "r = {r}");
        assert!((phase - 3.0).abs() < 0.51, "phase = {phase}");
        // A wrong candidate period must lock much more weakly.
        let (_, r_wrong) = best_phase(&truth, 7.3, 24).unwrap();
        assert!(r_wrong.abs() < 0.5, "wrong period locked: {r_wrong}");
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_signature_panics() {
        let _ = square_signature(0.0, 0.0, 4);
    }

    #[test]
    fn coverage_mask_drops_gapped_windows_from_the_lock() {
        // A clean square wave with a quarter of its windows gapped:
        // masking keeps the lock perfect; leaving the gapped windows in
        // (as zeros — what a blind observer records) degrades it.
        let truth = square_signature(12.0, 3.0, 120);
        let coverages: Vec<f64> = (0..120)
            .map(|i| if i % 4 == 0 { 0.2 } else { 1.0 })
            .collect();
        let observed: Vec<f64> = truth
            .iter()
            .zip(&coverages)
            .map(|(&x, &c)| if c < 0.5 { 0.0 } else { x })
            .collect();
        let masked = mask_low_coverage(&observed, &coverages, 0.5);
        assert_eq!(masked.iter().filter(|x| x.is_nan()).count(), 30);
        let (_, r_masked) = best_phase(&masked, 12.0, 24).unwrap();
        assert!(
            (r_masked.abs() - 1.0).abs() < 1e-9,
            "masked lock {r_masked}"
        );
        let (_, r_raw) = best_phase(&observed, 12.0, 24).unwrap();
        assert!(
            r_raw.abs() < 0.95,
            "raw gapped lock should degrade: {r_raw}"
        );
    }
}
