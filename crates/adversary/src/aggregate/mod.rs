//! The **aggregate-link adversary**: traffic analysis of a shared trunk.
//!
//! The paper's §3.3 adversary taps the link between one gateway pair.
//! The realistic big-pipe adversary (throughput fingerprinting, Mittal
//! et al.; messaging-app traffic analysis, Bahramali et al.) taps an
//! *aggregated* trunk carrying many padded flows at once and asks two
//! questions the per-flow pipeline cannot:
//!
//! 1. **How many flows does the trunk carry?** CIT padding makes every
//!    flow's output a near-deterministic `1/τ` stream, so the aggregate
//!    window-count process exposes N through its first two moments —
//!    see [`estimator`].
//! 2. **Which rate class is a target flow running?** Window-level PIAT
//!    statistics of the aggregate carry (a heavily diluted) image of
//!    the target's gateway jitter; [`windows`] provides the signature
//!    correlation tools, and the existing
//!    [`KdeBayes`](crate::classifier::KdeBayes)/[`Feature`](crate::feature::Feature)
//!    machinery classifies window-level feature streams exactly as it
//!    classifies PIAT samples.
//!
//! **Information barrier.** Everything here consumes plain `&[f64]`
//! window series (arrival counts, byte rates, PIAT moments per window)
//! — data legitimately derivable from the timestamps and sizes a wire
//! tap sees. Nothing accepts packet kinds, flow ids or gateway state.
//! The window series themselves come from
//! `linkpad_sim::observer::WindowedObserver` (or any other instrument);
//! this crate deliberately does not depend on the simulator.

pub mod estimator;
pub mod windows;

pub use estimator::{
    counts_from_byte_rates, estimate_flow_count, estimate_flow_count_from_bytes,
    estimate_flow_count_from_bytes_gap_aware, estimate_flow_count_gap_aware, FlowCountEstimate,
    GapAwareEstimate,
};
pub use windows::{best_phase, mask_low_coverage, pearson, square_signature};
