//! Flow-count estimation from the aggregate window-count process.
//!
//! Under CIT padding every flow emits exactly one packet per padding
//! period τ (jitter is µs-scale on a 10 ms period). Superposing N such
//! streams and counting arrivals in windows of width `W` gives, per
//! window,
//!
//! ```text
//!   count ≈ N · W/τ                                   (rate law)
//! ```
//!
//! because each flow contributes `⌊W/τ⌋` or `⌈W/τ⌉` arrivals depending
//! on its phase. The **rate estimator** inverts the first moment:
//! `N̂ = mean(count) / (W/τ)`. With `W` an integer multiple of τ every
//! flow contributes *exactly* `W/τ` per window and the estimate is
//! essentially exact after a handful of windows.
//!
//! The **variance estimator** uses the second moment: a flow with phase
//! φ contributes `⌈W/τ⌉` arrivals to the fraction `f = frac(W/τ)` of
//! windows and `⌊W/τ⌋` to the rest, so across windows each flow's count
//! is a Bernoulli(f) offset with variance `f(1−f)`, and for independent
//! uniform phases the aggregate count variance is
//!
//! ```text
//!   var(count) ≈ N · f(1−f)        →       N̂_var = var(count) / f(1−f)
//! ```
//!
//! The variance route needs a *fractional* window (`f(1−f)` bounded away
//! from 0) and many windows to converge; it is exposed as a cross-check
//! — e.g. against an adversary who mis-calibrated τ, which biases the
//! rate law proportionally but leaves the Bernoulli structure intact.
//!
//! The variance law doubles as a **phase-synchronization diagnostic**.
//! With *synchronized* padding clocks (every gateway ticking on the same
//! τ grid — e.g. gateways deployed together and never restarted) the
//! per-flow Bernoulli offsets are perfectly correlated, so
//! `var(count) ≈ N²·f(1−f)` and the independent-phase estimate reads
//! `≈ N²`: [`FlowCountEstimate::n_hat_var_synchronized`] takes the
//! square root for that regime, and the ratio
//! `n_hat_var / n_hat ∈ [1, N]` measures how synchronized the aggregate
//! is. The workspace's aggregate scenarios *are* synchronized (all
//! gateways arm their first timer at t = 0), which the
//! `fig_aggregate_adversary` experiment demonstrates.
//!
//! The adversary knows τ by reconstructing the padding system off-line,
//! exactly as the paper's §3.3 adversary does.

use linkpad_stats::moments::{sample_mean, sample_variance};
use linkpad_stats::{Result, StatsError};

/// A flow-count estimate from aggregate window counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowCountEstimate {
    /// Rate-law estimate `mean(count)·τ/W` — the primary estimator.
    pub n_hat: f64,
    /// Variance-law cross-check `var(count)/(f(1−f))`; `None` when the
    /// window is too close to a multiple of τ for the Bernoulli term to
    /// carry signal (`f(1−f) < 0.05`).
    pub n_hat_var: Option<f64>,
    /// Mean arrivals per window.
    pub mean_count: f64,
    /// Unbiased variance of arrivals per window.
    pub var_count: f64,
    /// Number of windows the estimate was computed from.
    pub windows: usize,
}

impl FlowCountEstimate {
    /// The rate-law estimate rounded to a whole flow count.
    pub fn rounded(&self) -> u64 {
        self.n_hat.round().max(0.0) as u64
    }

    /// Relative error of the rate-law estimate against a known truth.
    pub fn relative_error(&self, true_flows: usize) -> f64 {
        (self.n_hat - true_flows as f64).abs() / true_flows as f64
    }

    /// The variance-law estimate under the *synchronized-clock* model
    /// (`var ≈ N²·f(1−f)`, so `N̂ = √(var/f(1−f))`). See the module docs;
    /// compare against [`FlowCountEstimate::n_hat`] to judge which phase
    /// regime the aggregate is in.
    pub fn n_hat_var_synchronized(&self) -> Option<f64> {
        self.n_hat_var.map(f64::sqrt)
    }
}

/// Estimate how many CIT-padded flows produced the per-window arrival
/// `counts`, given the window-to-period ratio `window_over_tau = W/τ`.
///
/// Skip boot-transient windows (gateway phase-in) and the trailing
/// partially-filled window before calling; the estimator assumes every
/// count covers a full window at steady state.
pub fn estimate_flow_count(counts: &[f64], window_over_tau: f64) -> Result<FlowCountEstimate> {
    if !(window_over_tau.is_finite() && window_over_tau > 0.0) {
        return Err(StatsError::NonPositive {
            what: "window/tau ratio",
            value: window_over_tau,
        });
    }
    // Two windows give a variance; the caller decides how much
    // averaging its error budget needs.
    let mean_count = sample_mean(counts)?;
    let var_count = sample_variance(counts)?;
    let f = window_over_tau.fract();
    let bernoulli = f * (1.0 - f);
    Ok(FlowCountEstimate {
        n_hat: mean_count / window_over_tau,
        n_hat_var: (bernoulli >= 0.05).then(|| var_count / bernoulli),
        mean_count,
        var_count,
        windows: counts.len(),
    })
}

/// A flow-count estimate computed from a *partially observed* window
/// series, with bookkeeping of how much of the series was usable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapAwareEstimate {
    /// The estimate over the usable (coverage-rescaled) windows.
    pub estimate: FlowCountEstimate,
    /// Windows that passed the coverage threshold and fed the estimate.
    pub used: usize,
    /// Windows skipped for insufficient coverage.
    pub skipped: usize,
    /// Mean coverage of the *used* windows (1.0 when all were fully
    /// observed).
    pub mean_coverage: f64,
}

/// Gap-aware flow-count estimation: [`estimate_flow_count`] for an
/// observer that was not always watching.
///
/// `coverages[i]` is the fraction of window `i` the observer actually
/// observed (from `WindowStats::coverage` in the simulator, or any
/// other validity mask). Windows with coverage below `min_coverage`
/// are **skipped** — their counts are mostly fabricated zeros — and
/// each surviving window's count is **rescaled** by `1/coverage`,
/// which makes the rate law exact in expectation for a stationary
/// arrival process (arrivals lost to a partial gap are proportional to
/// the unobserved fraction). The variance-law cross-check inherits
/// extra variance from the rescaling (`1/c²` amplification plus
/// thinning noise), so under partial coverage treat
/// [`FlowCountEstimate::n_hat_var`] as qualitative only; the rate law
/// is the gap-robust estimator.
///
/// A naive consumer that feeds the raw gapped counts straight into
/// [`estimate_flow_count`] reads low by roughly the mean coverage
/// factor — the collapse `fig_fault_robustness` quantifies.
pub fn estimate_flow_count_gap_aware(
    counts: &[f64],
    coverages: &[f64],
    window_over_tau: f64,
    min_coverage: f64,
) -> Result<GapAwareEstimate> {
    if counts.len() != coverages.len() {
        return Err(StatsError::InsufficientData {
            what: "coverage mask (must match counts length)",
            needed: counts.len(),
            got: coverages.len(),
        });
    }
    if !(min_coverage.is_finite() && min_coverage > 0.0 && min_coverage <= 1.0) {
        return Err(StatsError::InvalidProbability {
            what: "minimum coverage threshold",
            value: min_coverage,
        });
    }
    let mut rescaled = Vec::with_capacity(counts.len());
    let mut coverage_sum = 0.0;
    for (&c, &cov) in counts.iter().zip(coverages) {
        if cov.is_finite() && cov >= min_coverage {
            rescaled.push(c / cov);
            coverage_sum += cov;
        }
    }
    let used = rescaled.len();
    let estimate = estimate_flow_count(&rescaled, window_over_tau)?;
    Ok(GapAwareEstimate {
        estimate,
        used,
        skipped: counts.len() - used,
        mean_coverage: coverage_sum / used as f64,
    })
}

/// Convert a per-window **byte-rate** series (bytes/s over the full
/// window, the shape `ObserverHandle::byte_rates` in the simulator
/// produces) into equivalent per-window packet counts, given the window width and
/// the mean wire bytes per packet of the padding discipline's payload
/// model. The byte channel is the estimator input that survives
/// variable-payload defences: sizes vary per packet, but the *mean*
/// bytes per emission is a property of the (reconstructable) padding
/// system, exactly like τ.
pub fn counts_from_byte_rates(
    byte_rates: &[f64],
    window_secs: f64,
    mean_packet_bytes: f64,
) -> Result<Vec<f64>> {
    if !(window_secs.is_finite() && window_secs > 0.0) {
        return Err(StatsError::NonPositive {
            what: "observer window width",
            value: window_secs,
        });
    }
    if !(mean_packet_bytes.is_finite() && mean_packet_bytes > 0.0) {
        return Err(StatsError::NonPositive {
            what: "mean wire bytes per packet",
            value: mean_packet_bytes,
        });
    }
    Ok(byte_rates
        .iter()
        .map(|&r| r * window_secs / mean_packet_bytes)
        .collect())
}

/// [`estimate_flow_count`] driven by the **byte** channel: per-window
/// byte rates are converted to equivalent packet counts (see
/// [`counts_from_byte_rates`]) and fed through the rate law. Under a
/// variable-payload defence the count channel still works, but the byte
/// channel is what a size-aware adversary actually measures — and per-
/// packet size dispersion inflates the window variance, so treat
/// [`FlowCountEstimate::n_hat_var`] from this route as qualitative.
pub fn estimate_flow_count_from_bytes(
    byte_rates: &[f64],
    window_secs: f64,
    mean_packet_bytes: f64,
    window_over_tau: f64,
) -> Result<FlowCountEstimate> {
    let counts = counts_from_byte_rates(byte_rates, window_secs, mean_packet_bytes)?;
    estimate_flow_count(&counts, window_over_tau)
}

/// Gap-aware byte-channel estimation — the coverage mask propagated to
/// the bytes channel.
///
/// Observer byte rates are computed against the **full** window width
/// even when the observer was blind for part of it, so a gapped window
/// reads low by its coverage factor and a naive consumer underestimates
/// N by roughly the mean coverage — the same latent bias the count
/// channel's [`estimate_flow_count_gap_aware`] already corrects, which
/// the byte channel silently lacked while it had no consumer at all.
/// Windows below `min_coverage` are skipped and surviving byte rates
/// are rescaled by `1/coverage` before the rate law, making the byte
/// route gap-robust in expectation for a stationary arrival process.
pub fn estimate_flow_count_from_bytes_gap_aware(
    byte_rates: &[f64],
    coverages: &[f64],
    window_secs: f64,
    mean_packet_bytes: f64,
    window_over_tau: f64,
    min_coverage: f64,
) -> Result<GapAwareEstimate> {
    let counts = counts_from_byte_rates(byte_rates, window_secs, mean_packet_bytes)?;
    estimate_flow_count_gap_aware(&counts, coverages, window_over_tau, min_coverage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkpad_stats::rng::MasterSeed;

    /// Synthetic aggregate window counts: N ideal CIT flows with
    /// independent uniform phases, window/τ ratio `wot`, M windows.
    fn synthetic_counts(n: usize, wot: f64, m: usize, seed: u64) -> Vec<f64> {
        let mut rng = MasterSeed::new(seed).stream(0);
        let phases: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        (0..m)
            .map(|w| {
                phases
                    .iter()
                    // Arrivals of a period-1 comb at phase φ in
                    // [w·wot, (w+1)·wot): ⌊(w+1)·wot − φ⌋ − ⌊w·wot − φ⌋ (+1 at φ crossings).
                    .map(|&phi| {
                        let hi = ((w + 1) as f64 * wot - phi).floor();
                        let lo = (w as f64 * wot - phi).floor();
                        hi - lo
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn integer_window_rate_estimate_is_exact() {
        // W = 20τ: every flow contributes exactly 20 per window.
        for n in [10usize, 100, 1000] {
            let counts = synthetic_counts(n, 20.0, 25, n as u64);
            let est = estimate_flow_count(&counts, 20.0).unwrap();
            assert!(
                est.relative_error(n) < 0.01,
                "N={n}: n_hat={} err={}",
                est.n_hat,
                est.relative_error(n)
            );
            assert_eq!(est.rounded(), n as u64);
            // Integer ratio → no Bernoulli signal → no variance estimate.
            assert!(est.n_hat_var.is_none());
            assert_eq!(est.windows, 25);
        }
    }

    #[test]
    fn fractional_window_variance_estimate_tracks_n() {
        // W = 10.37τ → f(1−f) ≈ 0.233. A single phase configuration
        // leaves O(1/√N) cross-flow covariance in the window variance,
        // so the honest contract is convergence *in expectation over
        // phase draws*: average the estimator over independent runs.
        for n in [20usize, 200] {
            let mut acc = 0.0;
            let runs = 10;
            for s in 0..runs {
                let counts = synthetic_counts(n, 10.37, 2000, 7 + s + n as u64);
                let est = estimate_flow_count(&counts, 10.37).unwrap();
                assert!(est.relative_error(n) < 0.02, "rate law: {}", est.n_hat);
                acc += est.n_hat_var.expect("fractional window has signal");
            }
            let nv = acc / runs as f64;
            assert!(
                (nv - n as f64).abs() / (n as f64) < 0.3,
                "N={n}: mean n_hat_var={nv}"
            );
        }
    }

    #[test]
    fn synchronized_clocks_square_the_variance_law() {
        // Every flow at the *same* phase: offsets perfectly correlated,
        // var = N²·f(1−f) → the synchronized reading recovers N and the
        // independent-phase reading overshoots to ~N².
        let n = 50usize;
        let wot = 10.37;
        let counts: Vec<f64> = (0..2000)
            .map(|w| {
                let hi = ((w + 1) as f64 * wot - 0.4).floor();
                let lo = (w as f64 * wot - 0.4).floor();
                n as f64 * (hi - lo)
            })
            .collect();
        let est = estimate_flow_count(&counts, wot).unwrap();
        assert!(est.relative_error(n) < 0.02, "rate law: {}", est.n_hat);
        let sync = est.n_hat_var_synchronized().unwrap();
        assert!((sync - n as f64).abs() / (n as f64) < 0.1, "sync: {sync}");
        assert!(
            est.n_hat_var.unwrap() > 10.0 * n as f64,
            "independent reading should overshoot"
        );
    }

    #[test]
    fn estimator_validates_input() {
        assert!(estimate_flow_count(&[10.0], 20.0).is_err()); // needs ≥ 2 windows
        assert!(estimate_flow_count(&[], 20.0).is_err());
        assert!(estimate_flow_count(&[10.0, 10.0], 0.0).is_err());
        assert!(estimate_flow_count(&[10.0, 10.0], f64::NAN).is_err());
        assert!(estimate_flow_count(&[10.0, 10.0], -3.0).is_err());
    }

    #[test]
    fn rounded_clamps_at_zero() {
        let est = estimate_flow_count(&[0.0, 0.0, 0.0], 20.0).unwrap();
        assert_eq!(est.rounded(), 0);
        assert_eq!(est.n_hat, 0.0);
    }

    /// Apply a coverage mask to synthetic counts: a window with
    /// coverage `c` sees `c` of its arrivals (deterministic thinning —
    /// the expectation of the observer's actual behavior).
    fn gapped(counts: &[f64], coverages: &[f64]) -> Vec<f64> {
        counts.iter().zip(coverages).map(|(&x, &c)| x * c).collect()
    }

    #[test]
    fn gap_aware_estimate_recovers_n_where_naive_collapses() {
        let n = 500usize;
        let counts = synthetic_counts(n, 20.0, 40, 99);
        // 25% of windows fully blind, half of the rest at 60% coverage.
        let coverages: Vec<f64> = (0..counts.len())
            .map(|i| match i % 4 {
                0 => 0.0,
                1 => 0.6,
                _ => 1.0,
            })
            .collect();
        let observed = gapped(&counts, &coverages);

        let naive = estimate_flow_count(&observed, 20.0).unwrap();
        assert!(
            naive.relative_error(n) > 0.2,
            "naive must collapse: err {}",
            naive.relative_error(n)
        );

        let aware = estimate_flow_count_gap_aware(&observed, &coverages, 20.0, 0.5).unwrap();
        assert!(
            aware.estimate.relative_error(n) < 0.01,
            "gap-aware err {}",
            aware.estimate.relative_error(n)
        );
        assert_eq!(aware.used + aware.skipped, counts.len());
        assert_eq!(aware.skipped, 10, "the 10 fully-blind windows");
        assert!((aware.mean_coverage - 0.866).abs() < 0.01);
    }

    #[test]
    fn gap_aware_with_full_coverage_matches_plain_estimate() {
        let counts = synthetic_counts(100, 20.0, 25, 3);
        let plain = estimate_flow_count(&counts, 20.0).unwrap();
        let aware =
            estimate_flow_count_gap_aware(&counts, &vec![1.0; counts.len()], 20.0, 0.5).unwrap();
        assert_eq!(aware.estimate, plain, "full coverage is a no-op");
        assert_eq!(aware.skipped, 0);
        assert_eq!(aware.mean_coverage, 1.0);
    }

    #[test]
    fn byte_channel_estimate_matches_the_count_channel() {
        // Variable payloads with mean 497 B: the byte channel divides
        // the size model back out and recovers the same N.
        let n = 200usize;
        let mean_bytes = 497.0;
        let window_secs = 0.2; // W = 20τ at τ = 10 ms
        let counts = synthetic_counts(n, 20.0, 25, 11);
        let byte_rates: Vec<f64> = counts
            .iter()
            .map(|&c| c * mean_bytes / window_secs)
            .collect();
        let est =
            estimate_flow_count_from_bytes(&byte_rates, window_secs, mean_bytes, 20.0).unwrap();
        assert!(est.relative_error(n) < 0.01, "n_hat={}", est.n_hat);
        let plain = estimate_flow_count(&counts, 20.0).unwrap();
        assert!((est.n_hat - plain.n_hat).abs() < 1e-9);
    }

    #[test]
    fn byte_channel_gap_mask_recovers_where_naive_collapses() {
        // Regression for the dead-feature bug: observer byte rates use
        // the full-window denominator even under gaps, so without the
        // coverage mask the byte route reads low by the coverage factor.
        let n = 500usize;
        let mean_bytes = 1000.0;
        let window_secs = 0.2;
        let counts = synthetic_counts(n, 20.0, 40, 99);
        let coverages: Vec<f64> = (0..counts.len())
            .map(|i| match i % 4 {
                0 => 0.0,
                1 => 0.6,
                _ => 1.0,
            })
            .collect();
        // What a gapped observer records: arrivals thinned by coverage,
        // rate still divided by the full window width.
        let byte_rates: Vec<f64> = counts
            .iter()
            .zip(&coverages)
            .map(|(&c, &cov)| c * cov * mean_bytes / window_secs)
            .collect();

        let naive =
            estimate_flow_count_from_bytes(&byte_rates, window_secs, mean_bytes, 20.0).unwrap();
        assert!(
            naive.relative_error(n) > 0.2,
            "naive byte route must collapse: err {}",
            naive.relative_error(n)
        );

        let aware = estimate_flow_count_from_bytes_gap_aware(
            &byte_rates,
            &coverages,
            window_secs,
            mean_bytes,
            20.0,
            0.5,
        )
        .unwrap();
        assert!(
            aware.estimate.relative_error(n) < 0.01,
            "gap-aware byte route err {}",
            aware.estimate.relative_error(n)
        );
        assert_eq!(aware.skipped, 10);
    }

    #[test]
    fn byte_channel_validates_input() {
        let rates = [1000.0, 1000.0];
        assert!(estimate_flow_count_from_bytes(&rates, 0.0, 500.0, 20.0).is_err());
        assert!(estimate_flow_count_from_bytes(&rates, 0.2, 0.0, 20.0).is_err());
        assert!(estimate_flow_count_from_bytes(&rates, 0.2, f64::NAN, 20.0).is_err());
        assert!(
            estimate_flow_count_from_bytes_gap_aware(&rates, &[1.0], 0.2, 500.0, 20.0, 0.5)
                .is_err(),
            "mask length mismatch"
        );
    }

    #[test]
    fn gap_aware_validates_input() {
        let counts = [10.0, 10.0, 10.0];
        // Mask length mismatch.
        assert!(estimate_flow_count_gap_aware(&counts, &[1.0, 1.0], 20.0, 0.5).is_err());
        // Threshold outside (0, 1].
        assert!(estimate_flow_count_gap_aware(&counts, &[1.0; 3], 20.0, 0.0).is_err());
        assert!(estimate_flow_count_gap_aware(&counts, &[1.0; 3], 20.0, 1.5).is_err());
        assert!(estimate_flow_count_gap_aware(&counts, &[1.0; 3], 20.0, f64::NAN).is_err());
        // Everything skipped → the inner estimator's data error.
        assert!(estimate_flow_count_gap_aware(&counts, &[0.1; 3], 20.0, 0.5).is_err());
    }
}
