//! Offline API-compatible shim for the subset of `proptest` this
//! workspace uses (see DESIGN.md, "Offline builds").
//!
//! The [`proptest!`] macro expands each property into a `#[test]` that
//! draws `cases` deterministic pseudo-random inputs (seeded from the test
//! name, so failures are reproducible run-to-run) and evaluates the body.
//! There is no shrinking: a failing case reports the case number and the
//! sampled arguments instead.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-property configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from a test's name, so each property gets a stable stream.
    pub fn for_case(name: &str) -> Self {
        let mut state = 0xA076_1D64_78BD_642Fu64;
        for b in name.bytes() {
            state = (state ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        Self { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn next_usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A value generator. Strategies here sample directly; no shrinking.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Strategy for any value of a type (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Boxed strategies let helper fns return `impl Strategy` compositions.
impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.next_usize_in(self.len.start, self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports property tests need.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert inside a property body; on failure the current case is
/// reported with its case number and arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs,
                rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    }};
}

/// Define property tests. Accepts an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_case(::std::stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    ::std::panic!(
                        "property {} failed at case {case}: {msg}\n  args: {:?}",
                        ::std::stringify!($name),
                        ($(&$arg,)*)
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x), "x = {x}");
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_length(xs in crate::collection::vec(0.0f64..1.0, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn any_u64_draws(seed in any::<u64>()) {
            let _ = seed;
            prop_assert_eq!(1 + 1, 2);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_case("alpha");
        let mut b = crate::TestRng::for_case("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
