//! Offline API-compatible shim for the subset of `crossbeam-channel`
//! this workspace uses: MPMC `bounded`/`unbounded` channels with
//! cloneable senders *and* receivers, `send`/`recv`/`try_recv`/
//! `recv_timeout`, and disconnect semantics (see DESIGN.md, "Offline
//! builds"). Backed by a `Mutex<VecDeque>` + two condvars — adequate for
//! the testbed's three-thread wiring, not a lock-free replacement.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    buf: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}
impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// An unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// A bounded MPMC channel holding at most `cap` messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            buf: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

fn lock<T>(inner: &Inner<T>) -> std::sync::MutexGuard<'_, State<T>> {
    inner.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full. Errors
    /// (returning the message) once every receiver is dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = lock(&self.inner);
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            let full = st.cap.is_some_and(|c| st.buf.len() >= c);
            if !full {
                st.buf.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .inner
                .not_full
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.inner).senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.inner);
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive a message, blocking until one arrives or the channel
    /// disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = lock(&self.inner);
        loop {
            if let Some(v) = st.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .inner
                .not_empty
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = lock(&self.inner);
        match st.buf.pop_front() {
            Some(v) => {
                self.inner.not_full.notify_one();
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Receive, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.inner);
        loop {
            if let Some(v) = st.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .inner
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Iterate over messages until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.inner).receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.inner);
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.inner.not_full.notify_all();
        }
    }
}

/// Borrowing iterator over received messages.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Ok(1));
        assert!(t.join().unwrap().is_ok());
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_with_cloned_ends() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort();
        assert_eq!(got, [1, 2]);
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
