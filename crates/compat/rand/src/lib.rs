//! Offline API-compatible shim for the subset of `rand` 0.9 this
//! workspace uses: the [`Rng`] extension trait with `random` and
//! `random_range` (see DESIGN.md, "Offline builds").

#![forbid(unsafe_code)]

pub use rand_core::RngCore;

/// Types samplable uniformly over their whole domain via [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit mantissa in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-32 for the spans used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's domain.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(5.0..6.0);
            assert!((5.0..6.0).contains(&x));
            let k: u32 = rng.random_range(0..10);
            assert!(k < 10);
            let j: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&j));
        }
    }
}
