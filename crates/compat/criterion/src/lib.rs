//! Offline API-compatible shim for the subset of `criterion` this
//! workspace uses (see DESIGN.md, "Offline builds").
//!
//! Benchmarks really run and really time: each `bench_function` does a
//! warm-up pass, then collects `sample_size` wall-clock samples (scaling
//! iterations per sample so short routines are measured above timer
//! resolution) and prints min/median/mean per iteration. There is no
//! statistical regression machinery — this is a measurement harness, not
//! an analysis suite.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim runs one routine
/// call per setup regardless; the variant only exists for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Measurement statistics for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Fastest observed per-iteration time.
    pub min: Duration,
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Total iterations timed.
    pub iters: u64,
}

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::Warmup {
                budget: self.warm_up,
            },
            per_iter_estimate: Duration::from_micros(1),
            samples: Vec::new(),
            iters: 0,
        };
        f(&mut b);

        let per_sample = self.measurement / self.sample_size as u32;
        b.mode = Mode::Measure {
            samples_wanted: self.sample_size,
            per_sample_budget: per_sample,
        };
        b.samples.clear();
        b.iters = 0;
        f(&mut b);

        let stats = b.finish();
        println!(
            "{id:<44} min {:>12} median {:>12} mean {:>12} ({} iters)",
            fmt_dur(stats.min),
            fmt_dur(stats.median),
            fmt_dur(stats.mean),
            stats.iters
        );
        self
    }
}

enum Mode {
    Warmup {
        budget: Duration,
    },
    Measure {
        samples_wanted: usize,
        per_sample_budget: Duration,
    },
}

/// Passed to the benchmark closure; call [`Bencher::iter`] (or a
/// variant) exactly once per invocation.
pub struct Bencher {
    mode: Mode,
    per_iter_estimate: Duration,
    samples: Vec<Duration>,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Warmup { budget } => {
                let start = Instant::now();
                let mut n = 0u32;
                while start.elapsed() < budget || n < 3 {
                    black_box(routine());
                    n += 1;
                    if n >= 1_000_000 {
                        break;
                    }
                }
                self.per_iter_estimate = (start.elapsed() / n.max(1)).max(Duration::from_nanos(1));
            }
            Mode::Measure {
                samples_wanted,
                per_sample_budget,
            } => {
                // Iterations per sample: fill the per-sample budget, so
                // sub-microsecond routines are timed well above clock
                // resolution.
                let per_iter = self.per_iter_estimate.as_nanos().max(1);
                let k = (per_sample_budget.as_nanos() / per_iter).clamp(1, 10_000_000) as u32;
                for _ in 0..samples_wanted {
                    let start = Instant::now();
                    for _ in 0..k {
                        black_box(routine());
                    }
                    self.samples.push(start.elapsed() / k);
                    self.iters += k as u64;
                }
            }
        }
    }

    /// Time `routine` on fresh input from `setup` each call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Warmup { budget } => {
                let start = Instant::now();
                let mut n = 0u32;
                let mut spent = Duration::ZERO;
                while start.elapsed() < budget || n < 3 {
                    let input = setup();
                    let t = Instant::now();
                    black_box(routine(input));
                    spent += t.elapsed();
                    n += 1;
                    if n >= 1_000_000 {
                        break;
                    }
                }
                self.per_iter_estimate = (spent / n.max(1)).max(Duration::from_nanos(1));
            }
            Mode::Measure { samples_wanted, .. } => {
                // Setup is excluded from timing, so one call per sample
                // is accurate even for fast routines.
                for _ in 0..samples_wanted {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    self.samples.push(start.elapsed());
                    self.iters += 1;
                }
            }
        }
    }

    fn finish(mut self) -> Sampled {
        if self.samples.is_empty() {
            self.samples.push(Duration::ZERO);
        }
        self.samples.sort();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        Sampled {
            min,
            median,
            mean,
            iters: self.iters,
        }
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Group benchmark functions, optionally with a configured harness.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(25));
        c.bench_function("smoke/iter", |b| b.iter(|| 2u64 + 2));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
