//! Offline API-compatible shim for the subset of `bytes` this workspace
//! uses: [`Bytes`]/[`BytesMut`] plus the [`Buf`]/[`BufMut`] cursor
//! traits, with the crate's big-endian `put_*`/`get_*` convention (see
//! DESIGN.md, "Offline builds"). `Bytes` shares its backing store via
//! `Arc`, so `clone` and `slice` are O(1) and copy-free, matching the
//! real crate's contract; `BytesMut` is a plain growable buffer.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice sharing the same backing store.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range 0..{len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}
impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", &**self)
    }
}

/// A growable, mutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Resize to `new_len`, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.inner.resize(new_len, value);
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        Self {
            inner: data.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", &self.inner)
    }
}

/// Read cursor over a byte buffer. All multi-byte reads are big-endian,
/// as in the real `bytes` crate.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

/// Write cursor appending to a byte buffer. All multi-byte writes are
/// big-endian, as in the real `bytes` crate.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip_is_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_u32(0xAABB_CCDD);
        buf.put_u8(0x7F);
        assert_eq!(buf[0], 0x01, "big-endian: MSB first");
        let mut b = buf.freeze();
        assert_eq!(b.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(b.get_u32(), 0xAABB_CCDD);
        assert_eq!(b.get_u8(), 0x7F);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage_and_clone_is_cheap() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&*s2, &[3, 4]);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn bytes_mut_is_indexable_and_resizable() {
        let mut m = BytesMut::from(&[9u8, 9, 9][..]);
        m[1] = 5;
        m.resize(5, 0);
        assert_eq!(&*m, &[9, 5, 9, 0, 0]);
        assert_eq!(m.freeze().len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..9);
    }
}
