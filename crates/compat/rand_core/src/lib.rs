//! Offline API-compatible shim for the subset of `rand_core` this
//! workspace uses. The build environment cannot reach crates.io, so the
//! workspace pins resolve here (see DESIGN.md, "Offline builds").

#![forbid(unsafe_code)]

/// A random number generator core: raw integer output and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// Seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` (expanded implementation-defined).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut x = state;
        for chunk in bytes.chunks_mut(8) {
            // SplitMix64 expansion, as rand_core documents.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Counter(0);
        let r: &mut dyn RngCore = &mut c;
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u32(), 2);
        let mut buf = [0u8; 3];
        r.fill_bytes(&mut buf);
        assert_eq!(buf, [3, 4, 5]);
    }
}
