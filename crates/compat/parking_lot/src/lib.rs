//! Offline API-compatible shim for the subset of `parking_lot` this
//! workspace uses: `Mutex`/`RwLock` with non-poisoning guards (see
//! DESIGN.md, "Offline builds"). Backed by `std::sync`; a poisoned lock
//! (poisoning requires a panic mid-critical-section) is re-entered, which
//! matches parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
