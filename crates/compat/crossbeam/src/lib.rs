//! Offline API-compatible shim for the `crossbeam` facade: re-exports the
//! channel module from the vendored `crossbeam-channel` shim and the
//! scoped-thread API from std (see DESIGN.md, "Offline builds").

#![forbid(unsafe_code)]

pub use crossbeam_channel as channel;

/// Scoped threads, mapped to `std::thread::scope` (stable since 1.63).
pub mod thread {
    /// Run `f` with a scope in which spawned threads may borrow locals.
    ///
    /// Unlike crossbeam's original, this returns `R` directly rather than
    /// `thread::Result<R>`: `std::thread::scope` propagates child panics
    /// by panicking, so the error arm could never be observed.
    pub fn scope<'env, F, R>(f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        std::thread::scope(f)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_reexport_works() {
        let (tx, rx) = crate::channel::unbounded();
        tx.send(7u8).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn scope_joins_borrowing_threads() {
        let data = [1, 2, 3];
        let sum: i32 = crate::thread::scope(|s| {
            let h = s.spawn(|| data.iter().sum());
            h.join().unwrap()
        });
        assert_eq!(sum, 6);
    }
}
