//! Exact (numerical) Bayes detection rates for the idealized feature
//! sampling distributions.
//!
//! The paper's Theorems 1–3 are *approximations* (Chebyshev/Bhattacharyya
//! style bounds turned into estimates). These routines compute the same
//! detection rates exactly, under the model assumptions, so the bench
//! suite can separate two very different gaps:
//! "simulation vs theory-approximation" and "theory-approximation vs
//! exact Bayes".
//!
//! * Mean feature: both classes give `X̄ ~ N(µ, σ²/n)` with common µ —
//!   a two-sided threshold test between equal-mean Gaussians.
//! * Variance feature: `(n−1)Y/σ² ~ χ²_{n−1}`, i.e. Y is Gamma-
//!   distributed; the Bayes decision is a single threshold between two
//!   Gamma laws with equal shape and scales in ratio r.
//! * Entropy feature: via the normal approximation of `ln s²`
//!   (`Var[ln s²] ≈ 2/(n−1)`), entropy separation is `½ ln r`.

use linkpad_stats::special::{reg_lower_gamma, std_normal_cdf};
use linkpad_stats::StatsError;

fn check_r(r: f64) -> Result<f64, StatsError> {
    if !r.is_finite() || r <= 0.0 {
        return Err(StatsError::NonPositive {
            what: "variance ratio r",
            value: r,
        });
    }
    Ok(if r < 1.0 { 1.0 / r } else { r })
}

/// Exact Bayes detection rate for the **sample-mean** feature.
///
/// Classes: `N(µ, σ_l²/n)` vs `N(µ, σ_h²/n)`, equal priors. The Bayes
/// regions are `|x − µ| ≤ c` → low, else high, with the density-crossing
/// `c² = σ_l² σ_h² ln(σ_h²/σ_l²)/(σ_h² − σ_l²)` (per-observation σ's
/// cancel out of the ratio, so v depends only on r — and not on n).
///
/// `v = ½ + Φ(c_l) − Φ(c_h)` with `c_l = √(r·ln r/(r−1))`,
/// `c_h = c_l/√r`.
pub fn mean_detection(r: f64) -> Result<f64, StatsError> {
    let r = check_r(r)?;
    if r - 1.0 < 1e-12 {
        return Ok(0.5);
    }
    let c_l = (r * r.ln() / (r - 1.0)).sqrt();
    let c_h = c_l / r.sqrt();
    Ok(0.5 + std_normal_cdf(c_l) - std_normal_cdf(c_h))
}

/// Exact Bayes detection rate for the **sample-variance** feature at
/// sample size `n`.
///
/// `Y_class ~ Gamma(k, θ_class)` with `k = (n−1)/2`,
/// `θ_l ∝ σ_l²`, `θ_h ∝ σ_h²`. The likelihood-ratio threshold for equal
/// shapes is `t* = k·ln r·θ_l·r/(r−1)`; then
/// `v = ½·P(k, t*/θ_l) + ½·(1 − P(k, t*/θ_h))`
/// with `P` the regularized lower incomplete gamma.
pub fn variance_detection(r: f64, n: usize) -> Result<f64, StatsError> {
    if n < 2 {
        return Err(StatsError::InsufficientData {
            what: "sample size for exact variance rate",
            needed: 2,
            got: n,
        });
    }
    let r = check_r(r)?;
    if r - 1.0 < 1e-12 {
        return Ok(0.5);
    }
    let k = (n as f64 - 1.0) / 2.0;
    // Work in units of θ_l: t*/θ_l = k·ln r·r/(r−1); t*/θ_h = that / r.
    let t_over_theta_l = k * r.ln() * r / (r - 1.0);
    let t_over_theta_h = t_over_theta_l / r;
    let p_low_correct = reg_lower_gamma(k, t_over_theta_l);
    let p_high_correct = 1.0 - reg_lower_gamma(k, t_over_theta_h);
    Ok(0.5 * p_low_correct + 0.5 * p_high_correct)
}

/// Detection rate for the **entropy** feature under the log-variance
/// normal approximation: Ĥ differences concentrate at `½ ln r` with
/// standard deviation `√(1/(2(n−1)))` per class, giving
/// `v = Φ(√((n−1)/2)·ln r/2)`.
pub fn entropy_detection(r: f64, n: usize) -> Result<f64, StatsError> {
    if n < 2 {
        return Err(StatsError::InsufficientData {
            what: "sample size for exact entropy rate",
            needed: 2,
            got: n,
        });
    }
    let r = check_r(r)?;
    // Ĥ ≈ ½·ln s² + const ⇒ per-class Ĥ ~ N(½·ln σ², 1/(2(n−1))).
    // Equal-variance two-class Bayes: v = Φ(Δ/(2·sd)), Δ = ½·ln r.
    let separation = 0.5 * r.ln();
    let sd = (1.0 / (2.0 * (n as f64 - 1.0))).sqrt();
    Ok(std_normal_cdf(separation / (2.0 * sd)).clamp(0.5, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorems;
    use linkpad_stats::moments::sample_variance;
    use linkpad_stats::normal::Normal;
    use linkpad_stats::rng::MasterSeed;

    #[test]
    fn mean_detection_limits() {
        assert_eq!(mean_detection(1.0).unwrap(), 0.5);
        assert!(mean_detection(1e9).unwrap() > 0.99);
        // Monotone in r.
        let mut prev = 0.5;
        for i in 1..50 {
            let v = mean_detection(1.0 + i as f64 * 0.2).unwrap();
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn mean_detection_close_to_theorem1_estimate() {
        // The Bhattacharyya estimate should track the exact rate loosely
        // (same value at r=1; same monotonicity; gap < 0.15 for r ≤ 4).
        for &r in &[1.0, 1.2, 1.5, 2.0, 3.0, 4.0] {
            let exact = mean_detection(r).unwrap();
            let approx = theorems::detection_rate_mean(r).unwrap();
            assert!((exact - approx).abs() < 0.15, "r={r}: {exact} vs {approx}");
        }
    }

    #[test]
    fn variance_detection_limits_and_monotonicity() {
        assert_eq!(variance_detection(1.0, 100).unwrap(), 0.5);
        // Monotone in n.
        let mut prev = 0.0;
        for &n in &[2usize, 10, 50, 200, 1000, 5000] {
            let v = variance_detection(1.4, n).unwrap();
            assert!(v >= prev - 1e-12, "n={n}");
            prev = v;
        }
        assert!(variance_detection(1.4, 100_000).unwrap() > 0.9999);
        // Monotone in r.
        assert!(variance_detection(1.8, 200).unwrap() > variance_detection(1.2, 200).unwrap());
    }

    #[test]
    fn variance_detection_against_monte_carlo() {
        // Monte-Carlo the actual Bayes experiment at r = 1.5, n = 100.
        let n = 100;
        let r: f64 = 1.5;
        let sigma_l = 1.0f64;
        let sigma_h = r.sqrt();
        let k = (n as f64 - 1.0) / 2.0;
        let threshold = k * r.ln() * r / (r - 1.0) * (2.0 * sigma_l * sigma_l / (n as f64 - 1.0));
        let mut rng = MasterSeed::new(42).stream(0);
        let trials = 4000;
        let mut correct = 0;
        for t in 0..trials {
            let (sigma, is_low) = if t % 2 == 0 {
                (sigma_l, true)
            } else {
                (sigma_h, false)
            };
            let d = Normal::new(0.0, sigma).unwrap();
            let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let y = sample_variance(&xs).unwrap();
            let decide_low = y <= threshold;
            if decide_low == is_low {
                correct += 1;
            }
        }
        let mc = correct as f64 / trials as f64;
        let exact = variance_detection(r, n).unwrap();
        assert!(
            (mc - exact).abs() < 0.03,
            "monte carlo {mc} vs exact {exact}"
        );
    }

    #[test]
    fn entropy_detection_limits() {
        assert_eq!(entropy_detection(1.0, 100).unwrap(), 0.5);
        assert!(entropy_detection(1.5, 10_000).unwrap() > 0.99);
        let mut prev = 0.0;
        for &n in &[2usize, 10, 100, 1000] {
            let v = entropy_detection(1.4, n).unwrap();
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(mean_detection(-1.0).is_err());
        assert!(variance_detection(1.5, 1).is_err());
        assert!(entropy_detection(1.5, 0).is_err());
        assert!(mean_detection(f64::NAN).is_err());
    }

    #[test]
    fn exact_rates_flip_r_below_one() {
        assert_eq!(
            variance_detection(0.5, 50).unwrap(),
            variance_detection(2.0, 50).unwrap()
        );
    }
}
