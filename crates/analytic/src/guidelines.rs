//! Design guidelines (paper §6): configure a padding system to meet a
//! detection-rate budget.
//!
//! The paper's conclusion: CIT padding "may be compromised even at a
//! remote site behind noisy routers"; VIT with sufficient σ_T is the
//! recommended defence. [`DesignInput::recommend`] turns that into an
//! actionable procedure: given the measured (or modeled) gateway and
//! network variances, the attacker's feasible sample budget and the
//! operator's detection-rate ceiling, produce the minimal σ_T, and report
//! the residual risk per feature.

use crate::planning::{sigma_t_for_infeasible_attack, FeatureKind};
use crate::theorems::{detection_rate_entropy, detection_rate_mean, detection_rate_variance};
use linkpad_stats::StatsError;

/// What the operator knows / wants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignInput {
    /// On-the-wire gateway variance at the low rate (s²), i.e.
    /// `2·Var(δ_gw,l)` for an absolute timer.
    pub sigma_gw_low_sq: f64,
    /// On-the-wire gateway variance at the high rate (s²).
    pub sigma_gw_high_sq: f64,
    /// Network variance σ_net² at the adversary's assumed tap (s²). Use 0
    /// for the conservative tap-at-gateway assumption.
    pub sigma_net_sq: f64,
    /// Largest PIAT sample the adversary is assumed able to collect at
    /// one payload rate (the paper argues rates don't persist forever).
    pub adversary_sample_budget: f64,
    /// Detection-rate ceiling the operator accepts at that budget
    /// (e.g. 0.55 — barely better than guessing).
    pub max_detection_rate: f64,
}

impl DesignInput {
    /// Conservative defaults for the calibrated gateway: tap at GW1
    /// (σ_net = 0), adversary can gather 10⁶ PIATs, detection must stay
    /// below 55%.
    pub fn conservative(sigma_gw_low_sq: f64, sigma_gw_high_sq: f64) -> Self {
        Self {
            sigma_gw_low_sq,
            sigma_gw_high_sq,
            sigma_net_sq: 0.0,
            adversary_sample_budget: 1e6,
            max_detection_rate: 0.55,
        }
    }
}

/// The recommendation produced by [`DesignInput::recommend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignGuideline {
    /// Minimal σ_T (seconds) meeting the budget; 0 means CIT already
    /// suffices (e.g. the ambient network noise is overwhelming).
    pub sigma_t: f64,
    /// The variance ratio r at the recommendation.
    pub r: f64,
    /// Predicted detection rates at the adversary's full budget.
    pub mean_rate: f64,
    /// Predicted variance-feature rate at the budget.
    pub variance_rate: f64,
    /// Predicted entropy-feature rate at the budget.
    pub entropy_rate: f64,
}

impl DesignInput {
    fn r_at(&self, sigma_t: f64) -> f64 {
        let st2 = sigma_t * sigma_t;
        let r = (st2 + self.sigma_net_sq + self.sigma_gw_high_sq)
            / (st2 + self.sigma_net_sq + self.sigma_gw_low_sq);
        r.max(1.0)
    }

    /// Compute the minimal σ_T such that *every* feature's predicted
    /// detection rate at the adversary's sample budget stays at or below
    /// `max_detection_rate`.
    pub fn recommend(&self) -> Result<DesignGuideline, StatsError> {
        if !(0.5..1.0).contains(&self.max_detection_rate) {
            return Err(StatsError::InvalidProbability {
                what: "max detection rate",
                value: self.max_detection_rate,
            });
        }
        let n = self.adversary_sample_budget;
        if !n.is_finite() || n < 2.0 {
            return Err(StatsError::NonPositive {
                what: "adversary sample budget",
                value: n,
            });
        }
        // The binding constraint is whichever feature needs the larger
        // σ_T; take the max over variance and entropy (mean is never
        // binding — its rate is the smallest at any r in (1, ~3)).
        let mut sigma_t: f64 = 0.0;
        for feature in [FeatureKind::Variance, FeatureKind::Entropy] {
            let st = sigma_t_for_infeasible_attack(
                feature,
                self.sigma_gw_low_sq,
                self.sigma_gw_high_sq,
                self.sigma_net_sq,
                self.max_detection_rate,
                n,
            )?;
            sigma_t = sigma_t.max(st);
        }
        let n_int = (n as usize).max(2);
        let r = self.r_at(sigma_t);
        Ok(DesignGuideline {
            sigma_t,
            r,
            mean_rate: detection_rate_mean(r)?,
            variance_rate: detection_rate_variance(r, n_int)?,
            entropy_rate: detection_rate_entropy(r, n_int)?,
        })
    }

    /// Predicted rates if the operator *keeps CIT* (σ_T = 0) — the "what
    /// if we do nothing" row of a design report.
    pub fn cit_exposure(&self) -> Result<DesignGuideline, StatsError> {
        let r = self.r_at(0.0);
        let n = (self.adversary_sample_budget as usize).max(2);
        Ok(DesignGuideline {
            sigma_t: 0.0,
            r,
            mean_rate: detection_rate_mean(r)?,
            variance_rate: detection_rate_variance(r, n)?,
            entropy_rate: detection_rate_entropy(r, n)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GW_LOW: f64 = 85.7e-12;
    const GW_HIGH: f64 = 126.7e-12;

    #[test]
    fn cit_exposure_shows_the_leak() {
        let input = DesignInput::conservative(GW_LOW, GW_HIGH);
        let cit = input.cit_exposure().unwrap();
        assert_eq!(cit.sigma_t, 0.0);
        // At a 10⁶-sample budget CIT is fully compromised by variance
        // and entropy…
        assert!(cit.variance_rate > 0.99);
        assert!(cit.entropy_rate > 0.99);
        // …but not by the mean.
        assert!(cit.mean_rate < 0.55);
    }

    #[test]
    fn recommendation_meets_the_budget() {
        let input = DesignInput::conservative(GW_LOW, GW_HIGH);
        let rec = input.recommend().unwrap();
        assert!(rec.sigma_t > 0.0);
        assert!(
            rec.variance_rate <= input.max_detection_rate + 1e-6,
            "variance rate {}",
            rec.variance_rate
        );
        assert!(rec.entropy_rate <= input.max_detection_rate + 1e-6);
        assert!(rec.mean_rate <= input.max_detection_rate + 1e-6);
        assert!(rec.r < 1.01, "r should be pushed near 1, got {}", rec.r);
    }

    #[test]
    fn bigger_adversary_budget_needs_bigger_sigma_t() {
        let mut input = DesignInput::conservative(GW_LOW, GW_HIGH);
        input.adversary_sample_budget = 1e4;
        let small = input.recommend().unwrap();
        input.adversary_sample_budget = 1e8;
        let big = input.recommend().unwrap();
        assert!(
            big.sigma_t > small.sigma_t,
            "σ_T: {} vs {}",
            big.sigma_t,
            small.sigma_t
        );
    }

    #[test]
    fn noisy_network_reduces_required_sigma_t() {
        let quiet = DesignInput::conservative(GW_LOW, GW_HIGH);
        let mut noisy = quiet;
        noisy.sigma_net_sq = 400e-12; // heavy cross traffic at the tap
        let st_quiet = quiet.recommend().unwrap().sigma_t;
        let st_noisy = noisy.recommend().unwrap().sigma_t;
        assert!(st_noisy < st_quiet);
    }

    #[test]
    fn inputs_are_validated() {
        let mut input = DesignInput::conservative(GW_LOW, GW_HIGH);
        input.max_detection_rate = 0.3;
        assert!(input.recommend().is_err());
        let mut input = DesignInput::conservative(GW_LOW, GW_HIGH);
        input.adversary_sample_budget = 1.0;
        assert!(input.recommend().is_err());
    }
}
