//! Theorems 1–3: closed-form detection-rate estimates.
//!
//! All three are functions of the variance ratio `r ≥ 1` (eq. 16); the
//! variance and entropy rates additionally depend on the sample size `n`.
//! The three structural facts the paper derives — and every bench in this
//! workspace reproduces — are:
//!
//! 1. **Sample mean is useless**: `v_mean` does not depend on n and stays
//!    near 0.5 for the r values real gateways produce.
//! 2. **Sample variance and entropy win eventually**: both rates increase
//!    in n toward 1 for any fixed r > 1.
//! 3. **VIT defeats them**: as σ_T grows, r → 1 and every rate collapses
//!    to the 50% random-guessing floor.
//!
//! Note on Theorem 1's printed form: the paper's equation (18) is
//! typeset with a garbled radical in the available text. We implement
//! `v ≈ 1 − 1/√(2(1/√r + √r))` — the Bhattacharyya-bound estimate for
//! two equal-mean Gaussians — which is the unique reading consistent
//! with all three properties the paper states for it (v(1) = ½, strictly
//! increasing in r, independent of n). [`crate::exact::mean_detection`]
//! provides the exact Bayes rate for comparison.

use linkpad_stats::StatsError;

/// Validate r (must be finite and ≥ 1 after the caller's clamping; we
/// also accept r in (0,1) and flip it, since classes are exchangeable).
fn normalize_r(r: f64) -> Result<f64, StatsError> {
    if !r.is_finite() || r <= 0.0 {
        return Err(StatsError::NonPositive {
            what: "variance ratio r",
            value: r,
        });
    }
    Ok(if r < 1.0 { 1.0 / r } else { r })
}

/// Theorem 1: detection rate of the **sample-mean** feature,
/// `v ≈ 1 − 1/√(2(1/√r + √r))`. Independent of sample size.
pub fn detection_rate_mean(r: f64) -> Result<f64, StatsError> {
    let r = normalize_r(r)?;
    let s = r.sqrt();
    Ok(1.0 - 1.0 / (2.0 * (1.0 / s + s)).sqrt())
}

/// The constant `C_Y` of Theorem 2 (eq. 21):
/// `C_Y = 1/(2(1 − ln r/(r−1))²) + 1/(2(r·ln r/(r−1) − 1)²)`.
///
/// Diverges as r → 1 (detection impossible); returns `f64::INFINITY`
/// there.
pub fn c_y(r: f64) -> Result<f64, StatsError> {
    let r = normalize_r(r)?;
    if r - 1.0 < 1e-12 {
        return Ok(f64::INFINITY);
    }
    let q = r.ln() / (r - 1.0); // ∈ (0, 1) for r > 1
    let a = 1.0 - q; // h-side margin
    let b = r * q - 1.0; // l-side margin
    Ok(1.0 / (2.0 * a * a) + 1.0 / (2.0 * b * b))
}

/// Theorem 2: detection rate of the **sample-variance** feature with
/// sample size `n`: `v ≈ max(1 − C_Y/(n−1), 0.5)`.
pub fn detection_rate_variance(r: f64, n: usize) -> Result<f64, StatsError> {
    if n < 2 {
        return Err(StatsError::InsufficientData {
            what: "sample size for variance feature",
            needed: 2,
            got: n,
        });
    }
    let c = c_y(r)?;
    Ok((1.0 - c / (n as f64 - 1.0)).max(0.5))
}

/// The constant `C_H` of Theorem 3 (eq. 23):
/// `C_H = 1/(2·ln²(r·ln r/(r−1))) + 1/(2·ln²((r−1)/ln r))`.
pub fn c_h(r: f64) -> Result<f64, StatsError> {
    let r = normalize_r(r)?;
    if r - 1.0 < 1e-12 {
        return Ok(f64::INFINITY);
    }
    let q = r.ln() / (r - 1.0);
    let a = (r * q).ln(); // = ln(t*/σ_l²) > 0
    let b = (1.0 / q).ln(); // = ln(σ_h²/t*) > 0
    Ok(1.0 / (2.0 * a * a) + 1.0 / (2.0 * b * b))
}

/// Theorem 3: detection rate of the **sample-entropy** feature with
/// sample size `n`: `v ≈ max(1 − C_H/n, 0.5)`.
pub fn detection_rate_entropy(r: f64, n: usize) -> Result<f64, StatsError> {
    if n == 0 {
        return Err(StatsError::InsufficientData {
            what: "sample size for entropy feature",
            needed: 1,
            got: 0,
        });
    }
    let c = c_h(r)?;
    Ok((1.0 - c / n as f64).max(0.5))
}

/// All three theorem rates at once — convenient for printing paper-style
/// rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoremRates {
    /// Theorem 1 (sample mean).
    pub mean: f64,
    /// Theorem 2 (sample variance).
    pub variance: f64,
    /// Theorem 3 (sample entropy).
    pub entropy: f64,
}

/// Evaluate Theorems 1–3 at `(r, n)`.
pub fn theorem_rates(r: f64, n: usize) -> Result<TheoremRates, StatsError> {
    Ok(TheoremRates {
        mean: detection_rate_mean(r)?,
        variance: detection_rate_variance(r, n)?,
        entropy: detection_rate_entropy(r, n)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rates_hit_the_floor_at_r_equal_one() {
        assert!((detection_rate_mean(1.0).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(detection_rate_variance(1.0, 10_000).unwrap(), 0.5);
        assert_eq!(detection_rate_entropy(1.0, 10_000).unwrap(), 0.5);
    }

    #[test]
    fn rates_increase_with_r() {
        let mut prev_m = 0.0;
        let mut prev_v = 0.0;
        let mut prev_h = 0.0;
        for i in 1..40 {
            let r = 1.0 + i as f64 * 0.25;
            let m = detection_rate_mean(r).unwrap();
            let v = detection_rate_variance(r, 500).unwrap();
            let h = detection_rate_entropy(r, 500).unwrap();
            assert!(m >= prev_m);
            assert!(v >= prev_v);
            assert!(h >= prev_h);
            prev_m = m;
            prev_v = v;
            prev_h = h;
        }
    }

    #[test]
    fn variance_and_entropy_rates_increase_with_n() {
        let r = 1.4;
        let mut prev_v = 0.0;
        let mut prev_h = 0.0;
        for n in [10usize, 50, 100, 500, 1000, 5000] {
            let v = detection_rate_variance(r, n).unwrap();
            let h = detection_rate_entropy(r, n).unwrap();
            assert!(v >= prev_v);
            assert!(h >= prev_h);
            prev_v = v;
            prev_h = h;
        }
        // …and both saturate toward 1.
        assert!(detection_rate_variance(r, 1_000_000).unwrap() > 0.999);
        assert!(detection_rate_entropy(r, 1_000_000).unwrap() > 0.999);
    }

    #[test]
    fn mean_rate_is_independent_of_n_by_construction_and_small() {
        // At the paper's r ≈ 1.4 the mean feature barely beats guessing.
        let v = detection_rate_mean(1.4).unwrap();
        assert!(v < 0.52, "v_mean = {v}");
    }

    #[test]
    fn calibrated_regime_matches_fig4b_saturation() {
        // r ≈ 1.4: variance/entropy detection ≈ 1 by n = 1000 (paper:
        // "At sample size of 1,000, both features achieve almost 100%").
        let r = 1.45;
        assert!(detection_rate_variance(r, 1000).unwrap() > 0.95);
        assert!(detection_rate_entropy(r, 1000).unwrap() > 0.95);
        // …and are visibly partial at n = 100.
        let v100 = detection_rate_variance(r, 100).unwrap();
        assert!(v100 > 0.6 && v100 < 0.99, "v100 = {v100}");
    }

    #[test]
    fn constants_diverge_at_r_one() {
        assert!(c_y(1.0).unwrap().is_infinite());
        assert!(c_h(1.0 + 1e-15).unwrap().is_infinite());
        // And shrink with r.
        assert!(c_y(1.2).unwrap() > c_y(2.0).unwrap());
        assert!(c_h(1.2).unwrap() > c_h(2.0).unwrap());
    }

    #[test]
    fn c_y_matches_hand_computation() {
        // r = 2: q = ln2 ≈ 0.693147; a = 0.306853, b = 0.386294.
        // C_Y = 1/(2a²) + 1/(2b²) ≈ 5.3095 + 3.3508 ≈ 8.6603
        let c = c_y(2.0).unwrap();
        assert!((c - 8.6603).abs() < 0.01, "C_Y(2) = {c}");
    }

    #[test]
    fn c_h_matches_hand_computation() {
        // r = 2: a = ln(2·0.693147) = ln 1.386294 ≈ 0.326634,
        //        b = ln(1/0.693147) = 0.366513
        // C_H = 1/(2a²) + 1/(2b²) ≈ 4.6868 + 3.7226 ≈ 8.4094
        let c = c_h(2.0).unwrap();
        assert!((c - 8.4094).abs() < 0.01, "C_H(2) = {c}");
    }

    #[test]
    fn r_below_one_is_flipped_not_rejected() {
        assert_eq!(
            detection_rate_mean(0.5).unwrap(),
            detection_rate_mean(2.0).unwrap()
        );
        assert_eq!(
            detection_rate_variance(0.5, 100).unwrap(),
            detection_rate_variance(2.0, 100).unwrap()
        );
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(detection_rate_mean(0.0).is_err());
        assert!(detection_rate_mean(f64::NAN).is_err());
        assert!(detection_rate_variance(1.5, 1).is_err());
        assert!(detection_rate_entropy(1.5, 0).is_err());
    }

    #[test]
    fn theorem_rates_bundle_is_consistent() {
        let t = theorem_rates(1.4, 1000).unwrap();
        assert_eq!(t.mean, detection_rate_mean(1.4).unwrap());
        assert_eq!(t.variance, detection_rate_variance(1.4, 1000).unwrap());
        assert_eq!(t.entropy, detection_rate_entropy(1.4, 1000).unwrap());
    }

    #[test]
    fn rates_always_live_in_half_open_unit_band() {
        for &r in &[1.0, 1.01, 1.5, 3.0, 10.0, 1e6] {
            for &n in &[2usize, 10, 1000, 1_000_000] {
                let v = detection_rate_variance(r, n).unwrap();
                let h = detection_rate_entropy(r, n).unwrap();
                let m = detection_rate_mean(r).unwrap();
                for x in [v, h, m] {
                    assert!((0.5..=1.0).contains(&x), "rate {x} at r={r}, n={n}");
                }
            }
        }
    }
}
