//! # linkpad-analytic
//!
//! The closed-form analytical model of Fu et al. (ICPP 2003), Section 4:
//! detection-rate formulas for the three feature statistics, exact
//! numerical Bayes rates to validate the approximations, sample-size
//! planning (the basis of Fig. 5b), and the design guidelines the paper
//! derives from them.
//!
//! * [`ratio`] — the variance ratio `r = σ_h²/σ_l²` (eq. 16) from PIAT
//!   variance components, with the special cases of eq. 26/27/29.
//! * [`theorems`] — Theorems 1–3: `v_mean(r)`, `v_var(r, n)`,
//!   `v_ent(r, n)` with the constants `C_Y` (eq. 21) and `C_H` (eq. 23).
//! * [`exact`] — exact (numerical) Bayes detection rates for the
//!   idealized feature sampling distributions: two equal-mean Gaussians
//!   for the mean feature, Gamma/χ² for the variance feature, and the
//!   log-variance normal approximation for entropy. These bound how much
//!   of any simulation/theory gap is the paper's approximation vs. ours.
//! * [`planning`] — required sample size `n(p)` per feature and the
//!   σ_T needed to push an attack beyond any feasible sample (Fig. 5b's
//!   10¹¹-samples-for-99% result).
//! * [`guidelines`] — §6-style design guidance: given measured gateway
//!   and network variances and a detection-rate budget, recommend a VIT
//!   σ_T.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod guidelines;
pub mod planning;
pub mod ratio;
pub mod theorems;

pub use guidelines::{DesignGuideline, DesignInput};
pub use planning::required_sample_size;
pub use ratio::VarianceComponents;
pub use theorems::{detection_rate_entropy, detection_rate_mean, detection_rate_variance};
