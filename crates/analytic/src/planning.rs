//! Sample-size planning — the math behind Fig. 5(b).
//!
//! The paper asks: *"How large a sample has to be in order for the
//! adversary to have sufficient high probability in making a correct
//! detection?"* and answers with `n(p)`, the sample size achieving
//! detection rate `p`. Inverting Theorems 2–3:
//!
//! ```text
//! variance: n(p) = 1 + C_Y(r)/(1 − p)
//! entropy:  n(p) =     C_H(r)/(1 − p)
//! ```
//!
//! With VIT padding at σ_T = 1 ms on the calibrated gateway, `r − 1` is
//! ~10⁻⁵ and `n(99%)` explodes past 10¹¹ — "virtually impossible for an
//! attacker to retrieve such a sample" (the Fig. 5b result).

use crate::theorems::{c_h, c_y, detection_rate_mean};
use linkpad_stats::StatsError;

/// Which feature statistic the adversary uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Sample mean (eq. 17).
    Mean,
    /// Sample variance (eq. 19).
    Variance,
    /// Sample entropy (eq. 24/25).
    Entropy,
}

impl FeatureKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureKind::Mean => "sample-mean",
            FeatureKind::Variance => "sample-variance",
            FeatureKind::Entropy => "sample-entropy",
        }
    }
}

/// Sample size needed for detection rate `p` with the given feature at
/// variance ratio `r`.
///
/// Returns `None` when no finite sample size achieves `p`:
/// * always for [`FeatureKind::Mean`] when `v_mean(r) < p` (the rate is
///   n-independent);
/// * for variance/entropy when `r = 1` exactly (C = ∞).
pub fn required_sample_size(
    feature: FeatureKind,
    r: f64,
    p: f64,
) -> Result<Option<f64>, StatsError> {
    if !(0.5..1.0).contains(&p) {
        return Err(StatsError::InvalidProbability {
            what: "target detection rate (must be in [0.5, 1))",
            value: p,
        });
    }
    let n = match feature {
        FeatureKind::Mean => {
            if detection_rate_mean(r)? >= p {
                Some(1.0)
            } else {
                None
            }
        }
        FeatureKind::Variance => {
            let c = c_y(r)?;
            if c.is_infinite() {
                None
            } else {
                Some(1.0 + c / (1.0 - p))
            }
        }
        FeatureKind::Entropy => {
            let c = c_h(r)?;
            if c.is_infinite() {
                None
            } else {
                Some(c / (1.0 - p))
            }
        }
    };
    Ok(n)
}

/// The σ_T (seconds) that pushes the adversary's required sample size for
/// a target detection rate `p` beyond `n_max`, given the gateway's
/// on-the-wire variances (`sigma_gw_low_sq`, `sigma_gw_high_sq`, each
/// already doubled for an absolute timer) and `sigma_net_sq`.
///
/// Solved by bisection on σ_T over [0, 10 s] — monotone because larger
/// σ_T means r closer to 1 and a larger n(p). Returns 0 if even CIT
/// already suffices.
pub fn sigma_t_for_infeasible_attack(
    feature: FeatureKind,
    sigma_gw_low_sq: f64,
    sigma_gw_high_sq: f64,
    sigma_net_sq: f64,
    p: f64,
    n_max: f64,
) -> Result<f64, StatsError> {
    if !n_max.is_finite() || n_max <= 1.0 {
        return Err(StatsError::NonPositive {
            what: "n_max",
            value: n_max,
        });
    }
    let needed_at = |sigma_t: f64| -> Result<Option<f64>, StatsError> {
        let st2 = sigma_t * sigma_t;
        let r = (st2 + sigma_net_sq + sigma_gw_high_sq) / (st2 + sigma_net_sq + sigma_gw_low_sq);
        required_sample_size(feature, r.max(1.0), p)
    };
    // Feasibility check at σ_T = 0.
    match needed_at(0.0)? {
        None => return Ok(0.0),
        Some(n) if n > n_max => return Ok(0.0),
        _ => {}
    }
    let (mut lo, mut hi) = (0.0f64, 10.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let infeasible = match needed_at(mid)? {
            None => true,
            Some(n) => n > n_max,
        };
        if infeasible {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Calibrated on-the-wire variances (2·Var(δ_gw)) in s².
    const GW_LOW: f64 = 85.7e-12;
    const GW_HIGH: f64 = 126.7e-12;

    fn r_at_sigma_t(sigma_t: f64) -> f64 {
        let st2 = sigma_t * sigma_t;
        (st2 + GW_HIGH) / (st2 + GW_LOW)
    }

    #[test]
    fn fig5b_regime_sample_size_explodes_at_one_ms() {
        // σ_T = 1 ms ⇒ r − 1 ≈ 4×10⁻⁵ ⇒ n(99%) ≳ 10¹⁰–10¹².
        let r = r_at_sigma_t(1e-3);
        let n = required_sample_size(FeatureKind::Variance, r, 0.99)
            .unwrap()
            .unwrap();
        assert!(n > 1e10, "n(99%) = {n:e}");
        let n_ent = required_sample_size(FeatureKind::Entropy, r, 0.99)
            .unwrap()
            .unwrap();
        assert!(n_ent > 1e10, "entropy n(99%) = {n_ent:e}");
    }

    #[test]
    fn cit_needs_only_thousands_of_packets() {
        // CIT (σ_T = 0): the Fig. 4b regime — n(99%) is ~10³.
        let r = r_at_sigma_t(0.0);
        let n = required_sample_size(FeatureKind::Variance, r, 0.99)
            .unwrap()
            .unwrap();
        assert!(n > 100.0 && n < 10_000.0, "n = {n}");
    }

    #[test]
    fn required_n_is_monotone_in_p_and_sigma_t() {
        let r = r_at_sigma_t(0.0);
        let n90 = required_sample_size(FeatureKind::Entropy, r, 0.90)
            .unwrap()
            .unwrap();
        let n99 = required_sample_size(FeatureKind::Entropy, r, 0.99)
            .unwrap()
            .unwrap();
        assert!(n99 > n90);
        let mut prev = 0.0;
        for &st in &[0.0, 1e-5, 1e-4, 1e-3, 1e-2] {
            let n = required_sample_size(FeatureKind::Variance, r_at_sigma_t(st), 0.99)
                .unwrap()
                .unwrap();
            assert!(n >= prev, "σ_T={st}");
            prev = n;
        }
    }

    #[test]
    fn mean_feature_is_hopeless_at_realistic_r() {
        // v_mean(1.48) ≈ 0.503 — no n achieves 90%.
        assert_eq!(
            required_sample_size(FeatureKind::Mean, r_at_sigma_t(0.0), 0.90).unwrap(),
            None
        );
        // But with an absurd r it works immediately.
        assert_eq!(
            required_sample_size(FeatureKind::Mean, 1e9, 0.51).unwrap(),
            Some(1.0)
        );
    }

    #[test]
    fn r_equal_one_means_no_finite_sample() {
        assert_eq!(
            required_sample_size(FeatureKind::Variance, 1.0, 0.99).unwrap(),
            None
        );
        assert_eq!(
            required_sample_size(FeatureKind::Entropy, 1.0, 0.99).unwrap(),
            None
        );
    }

    #[test]
    fn target_rate_is_validated() {
        assert!(required_sample_size(FeatureKind::Variance, 1.4, 0.4).is_err());
        assert!(required_sample_size(FeatureKind::Variance, 1.4, 1.0).is_err());
        assert!(required_sample_size(FeatureKind::Variance, 1.4, f64::NAN).is_err());
    }

    #[test]
    fn sigma_t_recommendation_blocks_the_attack() {
        // Ask: make a 99%-confident attack need more than 10⁹ samples.
        let st =
            sigma_t_for_infeasible_attack(FeatureKind::Variance, GW_LOW, GW_HIGH, 0.0, 0.99, 1e9)
                .unwrap();
        assert!(st > 0.0 && st < 0.01, "σ_T = {st}");
        // Verify: at the recommended σ_T the attack is indeed infeasible.
        let r = r_at_sigma_t(st);
        let n = required_sample_size(FeatureKind::Variance, r, 0.99)
            .unwrap()
            .unwrap();
        assert!(n >= 1e9 * 0.9, "n = {n:e}");
    }

    #[test]
    fn sigma_t_zero_when_already_safe() {
        // Huge ambient noise: even CIT can't be attacked with n_max = 10.
        let st = sigma_t_for_infeasible_attack(
            FeatureKind::Entropy,
            GW_LOW,
            GW_HIGH,
            1e-3, // ms²-scale network noise swamps everything
            0.99,
            10.0,
        )
        .unwrap();
        assert_eq!(st, 0.0);
    }

    #[test]
    fn feature_kind_names() {
        assert_eq!(FeatureKind::Mean.name(), "sample-mean");
        assert_eq!(FeatureKind::Variance.name(), "sample-variance");
        assert_eq!(FeatureKind::Entropy.name(), "sample-entropy");
    }
}
