//! The variance ratio `r` (paper eq. 16) and its special cases.
//!
//! Everything in the analytical model is a function of
//!
//! ```text
//! r = σ_h²/σ_l² = (σ_T² + σ_net² + σ_gw,h²)/(σ_T² + σ_net² + σ_gw,l²)
//! ```
//!
//! with the regimes the paper walks through:
//! * eq. 26 — zero cross traffic (`σ_net = 0`, tap next to GW1);
//! * eq. 27 — CIT + zero cross traffic (`σ_T = 0` too);
//! * eq. 29 — CIT with cross traffic (`σ_T = 0`, `σ_net > 0`).

use linkpad_stats::StatsError;

/// PIAT variance components, all in seconds².
///
/// Components are *as observed on the wire*: if the padding gateway runs
/// an absolute periodic timer, the per-tick disturbance δ appears twice
/// in each inter-arrival (`X_i = T_i + δ_i − δ_{i−1}`), so pass
/// `2·Var(δ_gw)` here. `linkpad_core::CalibratedDefaults::predicted_r`
/// does exactly that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarianceComponents {
    /// Designed timer interval variance σ_T² (0 for CIT).
    pub sigma_t_sq: f64,
    /// Network disturbance variance σ_net² (0 at the sender's egress).
    pub sigma_net_sq: f64,
    /// Gateway disturbance variance under the low payload rate.
    pub sigma_gw_low_sq: f64,
    /// Gateway disturbance variance under the high payload rate.
    pub sigma_gw_high_sq: f64,
}

impl VarianceComponents {
    /// Build and validate (all components finite and ≥ 0; the low-rate
    /// denominator must end up positive).
    pub fn new(
        sigma_t_sq: f64,
        sigma_net_sq: f64,
        sigma_gw_low_sq: f64,
        sigma_gw_high_sq: f64,
    ) -> Result<Self, StatsError> {
        for (what, v) in [
            ("sigma_t_sq", sigma_t_sq),
            ("sigma_net_sq", sigma_net_sq),
            ("sigma_gw_low_sq", sigma_gw_low_sq),
            ("sigma_gw_high_sq", sigma_gw_high_sq),
        ] {
            if !v.is_finite() {
                return Err(StatsError::NonFinite { what, value: v });
            }
            if v < 0.0 {
                return Err(StatsError::NonPositive { what, value: v });
            }
        }
        let denom = sigma_t_sq + sigma_net_sq + sigma_gw_low_sq;
        if denom <= 0.0 {
            return Err(StatsError::NonPositive {
                what: "total low-rate PIAT variance",
                value: denom,
            });
        }
        Ok(Self {
            sigma_t_sq,
            sigma_net_sq,
            sigma_gw_low_sq,
            sigma_gw_high_sq,
        })
    }

    /// Eq. 26: zero cross traffic (tap adjacent to the sender gateway).
    pub fn no_cross_traffic(
        sigma_t_sq: f64,
        sigma_gw_low_sq: f64,
        sigma_gw_high_sq: f64,
    ) -> Result<Self, StatsError> {
        Self::new(sigma_t_sq, 0.0, sigma_gw_low_sq, sigma_gw_high_sq)
    }

    /// Eq. 27: CIT and zero cross traffic — the adversary's best case.
    pub fn cit_no_cross_traffic(
        sigma_gw_low_sq: f64,
        sigma_gw_high_sq: f64,
    ) -> Result<Self, StatsError> {
        Self::new(0.0, 0.0, sigma_gw_low_sq, sigma_gw_high_sq)
    }

    /// Eq. 29: CIT with cross traffic.
    pub fn cit_with_cross_traffic(
        sigma_net_sq: f64,
        sigma_gw_low_sq: f64,
        sigma_gw_high_sq: f64,
    ) -> Result<Self, StatsError> {
        Self::new(0.0, sigma_net_sq, sigma_gw_low_sq, sigma_gw_high_sq)
    }

    /// The ratio `r` (eq. 16), clamped to ≥ 1 (classes are exchangeable;
    /// the theorems are stated for r ≥ 1).
    pub fn r(&self) -> f64 {
        let num = self.sigma_t_sq + self.sigma_net_sq + self.sigma_gw_high_sq;
        let den = self.sigma_t_sq + self.sigma_net_sq + self.sigma_gw_low_sq;
        (num / den).max(den / num)
    }

    /// Total PIAT variance under the low rate.
    pub fn sigma_low_sq(&self) -> f64 {
        self.sigma_t_sq + self.sigma_net_sq + self.sigma_gw_low_sq
    }

    /// Total PIAT variance under the high rate.
    pub fn sigma_high_sq(&self) -> f64 {
        self.sigma_t_sq + self.sigma_net_sq + self.sigma_gw_high_sq
    }
}

/// Empirical `r` from two measured PIAT variances (order-free).
pub fn empirical_r(var_a: f64, var_b: f64) -> Result<f64, StatsError> {
    if !var_a.is_finite() || !var_b.is_finite() || var_a <= 0.0 || var_b <= 0.0 {
        return Err(StatsError::NonPositive {
            what: "measured PIAT variance",
            value: var_a.min(var_b),
        });
    }
    Ok((var_a / var_b).max(var_b / var_a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_matches_hand_computation() {
        // The calibrated regime: σ_gw,l² = 42.84, σ_gw,h² = 63.36 µs²
        // (doubled on the wire): r = (2·63.36)/(2·42.84) with σ_T=σ_net=0.
        let c = VarianceComponents::cit_no_cross_traffic(85.68e-12, 126.72e-12).unwrap();
        assert!((c.r() - 1.479) < 0.01);
        assert_eq!(c.sigma_low_sq(), 85.68e-12);
        assert_eq!(c.sigma_high_sq(), 126.72e-12);
    }

    #[test]
    fn sigma_t_drives_r_to_one() {
        let r_at = |st2: f64| {
            VarianceComponents::no_cross_traffic(st2, 80e-12, 120e-12)
                .unwrap()
                .r()
        };
        assert!(r_at(0.0) > r_at(1e-9));
        assert!(r_at(1e-9) > r_at(1e-6));
        assert!(r_at(1e-6) - 1.0 < 1e-4);
        // Monotone decreasing toward 1.
        let mut prev = r_at(0.0);
        for e in [-12i32, -11, -10, -9, -8, -7, -6] {
            let cur = r_at(10f64.powi(e));
            assert!(cur <= prev + 1e-15);
            prev = cur;
        }
    }

    #[test]
    fn sigma_net_drives_r_to_one() {
        let r_at = |sn2: f64| {
            VarianceComponents::cit_with_cross_traffic(sn2, 80e-12, 120e-12)
                .unwrap()
                .r()
        };
        assert!(r_at(0.0) > r_at(100e-12));
        assert!(r_at(100e-12) > r_at(1e-9));
    }

    #[test]
    fn r_is_at_least_one_even_when_classes_swap() {
        let c = VarianceComponents::new(0.0, 0.0, 120e-12, 80e-12).unwrap();
        assert!(c.r() >= 1.0);
        assert!((c.r() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_components() {
        assert!(VarianceComponents::new(-1.0, 0.0, 1.0, 1.0).is_err());
        assert!(VarianceComponents::new(f64::NAN, 0.0, 1.0, 1.0).is_err());
        assert!(VarianceComponents::new(0.0, 0.0, 0.0, 1.0).is_err()); // zero denominator
    }

    #[test]
    fn empirical_r_is_order_free() {
        assert_eq!(empirical_r(2.0, 1.0).unwrap(), 2.0);
        assert_eq!(empirical_r(1.0, 2.0).unwrap(), 2.0);
        assert!(empirical_r(0.0, 1.0).is_err());
        assert!(empirical_r(1.0, f64::INFINITY).is_err());
    }
}
