//! Terminal sink: absorbs packets and records arrival statistics.

use crate::engine::Context;
use crate::node::Node;
use crate::packet::{FlowId, Packet, PacketKind};
use crate::time::SimTime;
use linkpad_stats::moments::RunningMoments;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Default)]
struct SinkState {
    arrivals: Vec<(SimTime, FlowId, PacketKind)>,
    /// End-to-end latency moments (arrival − enqueued), per call site QoS.
    latency: RunningMoments,
    bytes: u64,
}

/// Shared read handle for a [`Sink`].
#[derive(Debug, Clone)]
pub struct SinkHandle {
    state: Rc<RefCell<SinkState>>,
}

impl SinkHandle {
    /// Number of packets absorbed.
    pub fn count(&self) -> usize {
        self.state.borrow().arrivals.len()
    }

    /// Total bytes absorbed.
    pub fn bytes(&self) -> u64 {
        self.state.borrow().bytes
    }

    /// Arrival times of all packets.
    pub fn arrival_times(&self) -> Vec<SimTime> {
        self.state
            .borrow()
            .arrivals
            .iter()
            .map(|&(t, _, _)| t)
            .collect()
    }

    /// Arrival times restricted to a flow.
    pub fn arrival_times_for_flow(&self, flow: FlowId) -> Vec<SimTime> {
        self.state
            .borrow()
            .arrivals
            .iter()
            .filter(|&&(_, f, _)| f == flow)
            .map(|&(t, _, _)| t)
            .collect()
    }

    /// Count of packets of a given kind (instrumentation).
    pub fn count_kind(&self, kind: PacketKind) -> usize {
        self.state
            .borrow()
            .arrivals
            .iter()
            .filter(|&&(_, _, k)| k == kind)
            .count()
    }

    /// End-to-end latency moments (arrival time − `Packet::enqueued`).
    pub fn latency_moments(&self) -> RunningMoments {
        self.state.borrow().latency
    }
}

/// A node that terminates traffic.
#[derive(Debug)]
pub struct Sink {
    state: Rc<RefCell<SinkState>>,
    label: String,
}

impl Sink {
    /// Create a sink and its read handle.
    pub fn new() -> (SinkHandle, Self) {
        let state = Rc::new(RefCell::new(SinkState::default()));
        (
            SinkHandle {
                state: Rc::clone(&state),
            },
            Self {
                state,
                label: "sink".to_string(),
            },
        )
    }

    /// Builder-style label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl Node for Sink {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let mut st = self.state.borrow_mut();
        st.bytes += packet.size_bytes as u64;
        st.latency
            .push(ctx.now().saturating_since(packet.enqueued).as_secs_f64());
        st.arrivals.push((ctx.now(), packet.flow, packet.kind));
    }

    fn reset(&mut self) {
        let mut st = self.state.borrow_mut();
        st.arrivals.clear();
        st.latency = RunningMoments::new();
        st.bytes = 0;
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::node::NodeId;
    use crate::time::SimDuration;
    use linkpad_stats::rng::MasterSeed;

    struct Pusher {
        dst: NodeId,
    }
    impl Node for Pusher {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let mut a = ctx.spawn_packet(FlowId::PADDED, PacketKind::Payload, 100);
            a.enqueued = SimTime::ZERO;
            ctx.send_after(SimDuration::from_millis_f64(2.0), self.dst, a);
            let b = ctx.spawn_packet(FlowId::CROSS, PacketKind::Cross, 900);
            ctx.send_after(SimDuration::from_millis_f64(5.0), self.dst, b);
        }
    }

    #[test]
    fn sink_counts_bytes_flows_and_latency() {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink.with_label("receiver")));
        b.add_node(Box::new(Pusher { dst: sink_id }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(handle.count(), 2);
        assert_eq!(handle.bytes(), 1000);
        assert_eq!(handle.arrival_times_for_flow(FlowId::PADDED).len(), 1);
        assert_eq!(handle.count_kind(PacketKind::Cross), 1);
        let lat = handle.latency_moments();
        assert_eq!(lat.count(), 2);
        // First packet enqueued at 0, arrives at 2ms.
        assert!((lat.min() - 2e-3).abs() < 1e-12);
        assert!((lat.max() - 5e-3).abs() < 1e-12);
    }
}
