//! Passive link tap — the adversary's measurement instrument.
//!
//! The paper's adversary "uses some means to tap the network between
//! gateways GW1 and GW2" and records packet timing with a hardware
//! network analyzer (§5). [`Tap`] is that instrument: it records the
//! arrival timestamp of every packet matching its flow filter and
//! forwards the packet unchanged (zero delay — a passive optical splitter,
//! in effect).
//!
//! **Information barrier:** the adversary-facing accessor
//! [`TapHandle::timestamps`] exposes *timestamps only*. Packet kinds
//! (payload vs dummy) are recorded separately behind the
//! instrumentation-only [`TapHandle::kind_counts`] accessor, which tests
//! and overhead accounting may use but the `linkpad-adversary` crate never
//! touches — packets are "perfectly encrypted" in the threat model.
//!
//! **Memory model:** a tap stores every matching arrival, so its memory
//! is `O(arrivals)` — one `SimTime` per capture, growing for as long as
//! the simulation runs. That is the right trade for per-flow captures
//! (the detection pipeline consumes the raw PIATs), but a *filterless*
//! tap on a many-flow trunk accumulates the whole aggregate: 10⁴ CIT
//! flows produce ~10⁶ captures per simulated second, reallocating the
//! buffer unboundedly on long runs. Scenario builders should pre-size
//! with [`Tap::with_capacity`] (or [`TapHandle::reserve`]) when the
//! capture size is predictable, and aggregate experiments that only need
//! window-level statistics should use
//! [`WindowedObserver`](crate::observer::WindowedObserver) instead,
//! whose memory is `O(windows)` — independent of the arrival count.

use crate::engine::Context;
use crate::node::{Node, NodeId};
use crate::packet::{FlowId, Packet, PacketKind};
use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Default)]
struct TapState {
    timestamps: Vec<SimTime>,
    payload: u64,
    dummy: u64,
    cross: u64,
}

impl TapState {
    /// Drop everything captured, keeping the timestamp buffer's
    /// capacity. Shared by [`TapHandle::clear`] and the node's
    /// scenario-reset hook so the two can never drift apart.
    fn clear(&mut self) {
        self.timestamps.clear();
        self.payload = 0;
        self.dummy = 0;
        self.cross = 0;
    }
}

/// Shared handle for reading what a [`Tap`] captured, usable after the
/// simulation has run (the engine owns the tap node itself). Simulations
/// are single-threaded, so the handle shares state over `Rc<RefCell<_>>`
/// — no atomics or locks on the per-packet path.
#[derive(Debug, Clone)]
pub struct TapHandle {
    state: Rc<RefCell<TapState>>,
}

impl TapHandle {
    /// Arrival timestamps of matching packets, in capture order.
    ///
    /// This is the adversary's *entire* view of the system.
    pub fn timestamps(&self) -> Vec<SimTime> {
        self.state.borrow().timestamps.clone()
    }

    /// Run `f` over the captured timestamps without cloning them.
    pub fn with_timestamps<R>(&self, f: impl FnOnce(&[SimTime]) -> R) -> R {
        f(&self.state.borrow().timestamps)
    }

    /// Pre-reserve capture capacity for an expected number of packets —
    /// lets long collections avoid re-allocation mid-run.
    pub fn reserve(&self, additional: usize) {
        self.state.borrow_mut().timestamps.reserve(additional);
    }

    /// Packet inter-arrival times in seconds (consecutive differences of
    /// [`TapHandle::timestamps`]).
    pub fn piats_secs(&self) -> Vec<f64> {
        let st = self.state.borrow();
        st.timestamps
            .windows(2)
            .map(|w| w[1].saturating_since(w[0]).as_secs_f64())
            .collect()
    }

    /// Append `count` PIATs (seconds) into `out`, computed from the
    /// captured timestamps starting after `warmup` packets. The reusable
    /// output buffer lets sweep loops collect millions of samples without
    /// per-sample allocation.
    ///
    /// Returns `false` (appending nothing) if fewer than
    /// `warmup + count + 1` packets have been captured.
    pub fn piats_window_into(&self, warmup: usize, count: usize, out: &mut Vec<f64>) -> bool {
        let st = self.state.borrow();
        let needed = warmup + count + 1;
        if st.timestamps.len() < needed {
            return false;
        }
        out.reserve(count);
        out.extend(
            st.timestamps[warmup..needed]
                .windows(2)
                .map(|w| w[1].saturating_since(w[0]).as_secs_f64()),
        );
        true
    }

    /// Number of captured packets.
    pub fn count(&self) -> usize {
        self.state.borrow().timestamps.len()
    }

    /// Instrumentation only: (payload, dummy, cross) counts. Not part of
    /// the adversary's view — used by overhead accounting and tests.
    pub fn kind_counts(&self) -> (u64, u64, u64) {
        let st = self.state.borrow();
        (st.payload, st.dummy, st.cross)
    }

    /// Drop everything captured so far (e.g. to discard a warm-up phase).
    pub fn clear(&self) {
        self.state.borrow_mut().clear();
    }
}

/// The tap node.
#[derive(Debug)]
pub struct Tap {
    state: Rc<RefCell<TapState>>,
    /// Only packets of this flow are recorded (`None` records everything).
    filter: Option<FlowId>,
    /// Downstream node (`None` = capture-only endpoint).
    next: Option<NodeId>,
    label: String,
}

impl Tap {
    /// A tap that records packets of `filter` (or all packets when
    /// `None`) and forwards everything to `next`.
    pub fn new(filter: Option<FlowId>, next: Option<NodeId>) -> (TapHandle, Self) {
        let state = Rc::new(RefCell::new(TapState::default()));
        (
            TapHandle {
                state: Rc::clone(&state),
            },
            Self {
                state,
                filter,
                next,
                label: "tap".to_string(),
            },
        )
    }

    /// Convenience: tap on the padded flow, forwarding to `next`.
    pub fn on_padded_flow(next: Option<NodeId>) -> (TapHandle, Self) {
        Self::new(Some(FlowId::PADDED), next)
    }

    /// Builder-style label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Builder-style capture-capacity hint: pre-size the timestamp
    /// buffer for `captures` expected packets, so a predictable capture
    /// (e.g. an aggregate trunk at a known rate) never reallocates
    /// mid-run. The buffer still grows beyond the hint on demand, and
    /// `reset`/[`TapHandle::clear`] keep the reserved capacity.
    pub fn with_capacity(self, captures: usize) -> Self {
        self.state.borrow_mut().timestamps.reserve(captures);
        self
    }
}

impl Node for Tap {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if self.filter.is_none_or(|f| packet.flow == f) {
            let mut st = self.state.borrow_mut();
            st.timestamps.push(ctx.now());
            match packet.kind {
                PacketKind::Payload => st.payload += 1,
                PacketKind::Dummy => st.dummy += 1,
                PacketKind::Cross => st.cross += 1,
            }
        }
        if let Some(next) = self.next {
            ctx.send_now(next, packet);
        }
    }

    fn on_packets(&mut self, packets: &mut Vec<Packet>, ctx: &mut Context<'_>) {
        // Burst path: one state borrow for the whole batch.
        {
            let mut st = self.state.borrow_mut();
            for packet in packets.iter() {
                if self.filter.is_none_or(|f| packet.flow == f) {
                    st.timestamps.push(ctx.now());
                    match packet.kind {
                        PacketKind::Payload => st.payload += 1,
                        PacketKind::Dummy => st.dummy += 1,
                        PacketKind::Cross => st.cross += 1,
                    }
                }
            }
        }
        if let Some(next) = self.next {
            for packet in packets.drain(..) {
                ctx.send_now(next, packet);
            }
        } else {
            packets.clear();
        }
    }

    fn reset(&mut self) {
        self.state.borrow_mut().clear();
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::sink::Sink;
    use crate::time::SimDuration;
    use linkpad_stats::rng::MasterSeed;

    /// Emits alternating padded/cross packets every 1 ms.
    struct Mixer {
        dst: NodeId,
        sent: u32,
        total: u32,
    }
    impl Node for Mixer {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.schedule_timer(SimDuration::from_millis_f64(1.0), 0);
        }
        fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
            let (flow, kind) = if self.sent.is_multiple_of(2) {
                (FlowId::PADDED, PacketKind::Dummy)
            } else {
                (FlowId::CROSS, PacketKind::Cross)
            };
            let pkt = ctx.spawn_packet(flow, kind, 500);
            ctx.send_now(self.dst, pkt);
            self.sent += 1;
            if self.sent < self.total {
                ctx.schedule_timer(SimDuration::from_millis_f64(1.0), 0);
            }
        }
    }

    #[test]
    fn filtered_tap_records_only_matching_flow() {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (sink_handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let (tap_handle, tap) = Tap::on_padded_flow(Some(sink_id));
        let tap_id = b.add_node(Box::new(tap));
        b.add_node(Box::new(Mixer {
            dst: tap_id,
            sent: 0,
            total: 10,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(tap_handle.count(), 5);
        // ...but everything is forwarded:
        assert_eq!(sink_handle.count(), 10);
        let (payload, dummy, cross) = tap_handle.kind_counts();
        assert_eq!((payload, dummy, cross), (0, 5, 0));
    }

    #[test]
    fn unfiltered_tap_records_everything() {
        let mut b = SimBuilder::new(MasterSeed::new(2));
        let (tap_handle, tap) = Tap::new(None, None);
        let tap_id = b.add_node(Box::new(tap.with_label("analyzer")));
        b.add_node(Box::new(Mixer {
            dst: tap_id,
            sent: 0,
            total: 6,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(tap_handle.count(), 6);
    }

    #[test]
    fn piats_are_consecutive_differences() {
        let mut b = SimBuilder::new(MasterSeed::new(3));
        let (tap_handle, tap) = Tap::new(None, None);
        let tap_id = b.add_node(Box::new(tap));
        b.add_node(Box::new(Mixer {
            dst: tap_id,
            sent: 0,
            total: 4,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        let piats = tap_handle.piats_secs();
        assert_eq!(piats.len(), 3);
        for p in piats {
            assert!((p - 1e-3).abs() < 1e-12);
        }
    }

    #[test]
    fn clear_discards_warmup() {
        let mut b = SimBuilder::new(MasterSeed::new(4));
        let (tap_handle, tap) = Tap::new(None, None);
        let tap_id = b.add_node(Box::new(tap));
        b.add_node(Box::new(Mixer {
            dst: tap_id,
            sent: 0,
            total: 8,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(0.0045));
        assert_eq!(tap_handle.count(), 4);
        tap_handle.clear();
        assert_eq!(tap_handle.count(), 0);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(tap_handle.count(), 4);
        assert_eq!(tap_handle.kind_counts().1 + tap_handle.kind_counts().2, 4);
    }

    #[test]
    fn with_capacity_pre_sizes_without_changing_behavior() {
        let mut b = SimBuilder::new(MasterSeed::new(6));
        let (handle, tap) = Tap::new(None, None);
        let tap_id = b.add_node(Box::new(tap.with_capacity(4096)));
        b.add_node(Box::new(Mixer {
            dst: tap_id,
            sent: 0,
            total: 6,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(handle.count(), 6);
        handle.clear();
        assert_eq!(handle.count(), 0);
    }

    #[test]
    fn capture_only_tap_does_not_forward() {
        let mut b = SimBuilder::new(MasterSeed::new(5));
        let (sink_handle, sink) = Sink::new();
        let _sink_id = b.add_node(Box::new(sink));
        let (tap_handle, tap) = Tap::new(None, None); // no next
        let tap_id = b.add_node(Box::new(tap));
        b.add_node(Box::new(Mixer {
            dst: tap_id,
            sent: 0,
            total: 3,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(tap_handle.count(), 3);
        assert_eq!(sink_handle.count(), 0);
    }
}
