//! # linkpad-sim
//!
//! A discrete-event network simulator — the substrate standing in for the
//! physical testbeds of Fu et al. (ICPP 2003): the laboratory LAN with its
//! Marconi ESR-5000 router (Fig. 3), the Texas A&M campus network and the
//! Ohio→Texas Internet path (Fig. 7).
//!
//! The simulator is deliberately small and sharply focused on what the
//! paper's experiments need:
//!
//! * **Nodes** ([`node::Node`]) exchange fixed-size encrypted
//!   [`packet::Packet`]s; the engine ([`engine::Sim`]) dispatches packet
//!   deliveries and timer fires in global timestamp order with FIFO
//!   tie-breaking.
//! * **Links** ([`link::Link`]) model serialization (finite bandwidth) and
//!   propagation delay.
//! * **Routers** ([`router::Router`]) are FIFO output-queued store-and-
//!   forwards; queueing behind cross traffic is exactly the paper's
//!   `δ_net` disturbance (eq. 10) and drives the Fig. 6 / Fig. 8 results.
//! * **Taps** ([`tap::Tap`]) are passive timestamp recorders — the
//!   "Agilent J6841A network analyzer" the paper's adversary uses.
//! * **Windowed observers** ([`observer::WindowedObserver`]) are the
//!   aggregate-link counterpart: they fold arrivals online into
//!   fixed-width window statistics (count, byte rate, PIAT moments) in
//!   `O(windows)` memory, for trunks where storing every timestamp is
//!   untenable.
//! * **Fault injection** ([`fault::LossyGate`], [`fault::FaultPlan`])
//!   drops packets deterministically — i.i.d. or bursty loss laws plus
//!   scheduled outages — so countermeasure/adversary trade-offs can be
//!   measured under imperfect links and partial observation.
//! * **Flow cohorts** ([`cohort::FlowCohort`]) superpose K CIT-padded
//!   flows' combined arrival process in one node — a per-cohort phase
//!   vector and a single pending timer instead of K gateways — which is
//!   what takes aggregate scenarios from ~10⁴ to 10⁶ concurrent flows.
//! * **Sources** ([`source::DistSource`]) emit traffic with pluggable
//!   inter-arrival and packet-size laws from `linkpad-stats`.
//! * **Parallel sweeps** ([`parallel::parallel_map`]) fan independent
//!   simulations out over scoped threads; every simulation owns a
//!   deterministic RNG substream, so results are bit-identical regardless
//!   of thread count.
//!
//! Determinism is a hard guarantee: `(MasterSeed, topology, duration)`
//! fully determines every event. The engine is single-threaded per
//! simulation (events are causally ordered); parallelism happens *across*
//! simulations, which is where all the throughput in a detection-rate
//! sweep lives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod cohort;
pub mod engine;
pub mod equeue;
pub mod fault;
pub mod link;
pub mod node;
pub mod observer;
pub mod packet;
pub mod parallel;
pub mod router;
pub mod sink;
pub mod source;
pub mod tap;
pub mod time;
pub mod trace;

pub use attr::{AttributionReport, AttributionRow, AttributionSampler};
pub use cohort::{
    CohortHandle, CohortJitter, FlowCohort, LawSchedule, MemberSchedule, COHORT_FLOW,
};
pub use engine::{Context, RunStats, Sim, SimBuilder};
pub use equeue::EventQueue;
pub use fault::{FaultGateHandle, FaultPlan, LossModel, LossyGate, OutageSchedule};
pub use link::Link;
pub use node::{Node, NodeId};
pub use observer::{ObserverHandle, WindowStats, WindowedObserver};
pub use packet::{FlowId, Packet, PacketKind};
pub use parallel::{parallel_map, parallel_map_init_catching, ItemPanic};
pub use router::Router;
pub use sink::{Sink, SinkHandle};
pub use source::DistSource;
pub use tap::{Tap, TapHandle};
pub use time::{SimDuration, SimTime};
pub use trace::{PacketTrace, TraceEntry, TraceRecorder, TraceSource};
