//! Coordinator-side wall-time attribution: *where do the ~50 ns/event
//! go?* (ROADMAP open item 4 — the dispatch bound.)
//!
//! [`AttributionSampler`] splits each sampled dispatch into the three
//! phases of the engine's hot loop — **store** (event-queue pop plus
//! same-instant batch collection), **context** ([`Context`] build via
//! the split-borrow), and **dispatch** (the boxed `dyn Node` handler
//! call) — and accumulates nanoseconds per phase *per node type*, so a
//! profile says "gateway handlers cost X, the store under router load
//! costs Y" rather than one blended number. Node *type* means the
//! [`Node::label`] with any trailing `-<digits>` instance suffix
//! stripped: per-flow scenarios stamp thousands of indexed labels
//! (`gw1-9982`), and attribution by instance would drown the signal in
//! one-sample rows.
//!
//! [`Node::label`]: crate::node::Node::label
//!
//! This is deliberately the **one wall-clock file in `linkpad-sim`**:
//! the engine's [`run_until_attributed`] twin calls only sampler
//! methods, so `engine.rs` itself contains no `Instant` tokens and the
//! `DET_WALLCLOCK` allowlist entry for this file is file+fragment
//! scoped. Nothing here feeds back into simulation state — the sampler
//! is write-only from the engine's perspective and the attributed run's
//! simulated results are bit-identical to a plain run (the sampler
//! cannot even be consulted mid-run). It is a measurement harness for
//! `perf_baseline`, not a simulation feature.
//!
//! [`Context`]: crate::engine::Context
//! [`run_until_attributed`]: crate::engine::Sim::run_until_attributed

use std::collections::BTreeMap;
use std::time::Instant;

/// Per-label phase accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct RowAccum {
    samples: u64,
    store_ns: u64,
    context_ns: u64,
    dispatch_ns: u64,
}

/// The node-type key for an attribution row: `label` with a trailing
/// `-<digits>` instance suffix stripped (`gw1-9982` → `gw1`). Labels
/// whose suffix is not purely numeric (`subnet-b`, `trunk-demux`) are
/// their own type.
fn type_key(label: &str) -> &str {
    match label.rsplit_once('-') {
        Some((head, tail))
            if !head.is_empty() && !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) =>
        {
            head
        }
        _ => label,
    }
}

/// Samples every N-th dispatch and attributes its wall time to
/// store / context / dispatch phases, keyed by the target node's type
/// (its label minus any numeric instance suffix — see [`type_key`]).
///
/// Sampling keeps the measurement from perturbing what it measures:
/// un-sampled events pay one counter increment and one branch per lap
/// call, no `Instant::now`.
#[derive(Debug)]
pub struct AttributionSampler {
    /// Sample every `every`-th dispatch (>= 1).
    every: u64,
    /// Dispatches seen (sampled or not).
    seen: u64,
    /// Is the current dispatch being sampled?
    sampling: bool,
    /// Timestamp of the last phase boundary within the sampled dispatch.
    mark: Instant,
    /// Phase durations staged until `lap_node` learns the label.
    pending_store_ns: u64,
    pending_context_ns: u64,
    rows: BTreeMap<String, RowAccum>,
}

impl AttributionSampler {
    /// A sampler measuring every `every`-th dispatch (`0` is treated
    /// as `1` — measure everything).
    pub fn new(every: u64) -> Self {
        Self {
            every: every.max(1),
            seen: 0,
            sampling: false,
            mark: Instant::now(),
            pending_store_ns: 0,
            pending_context_ns: 0,
            rows: BTreeMap::new(),
        }
    }

    /// Start of one dispatch iteration (called before the pop).
    pub(crate) fn begin(&mut self) {
        self.sampling = self.seen.is_multiple_of(self.every);
        self.seen += 1;
        if self.sampling {
            self.mark = Instant::now();
        }
    }

    /// Phase boundary: pop + same-instant batch collection finished.
    pub(crate) fn lap_store(&mut self) {
        if !self.sampling {
            return;
        }
        let now = Instant::now();
        self.pending_store_ns = now.duration_since(self.mark).as_nanos() as u64;
        self.mark = now;
    }

    /// Phase boundary: split-borrow + [`Context`] build finished.
    ///
    /// [`Context`]: crate::engine::Context
    pub(crate) fn lap_context(&mut self) {
        if !self.sampling {
            return;
        }
        let now = Instant::now();
        self.pending_context_ns = now.duration_since(self.mark).as_nanos() as u64;
        self.mark = now;
    }

    /// End of the dispatch: the node handler returned. Folds the staged
    /// phase durations into the row for `label`'s node type.
    pub(crate) fn lap_node(&mut self, label: &str) {
        if !self.sampling {
            return;
        }
        self.sampling = false;
        let dispatch_ns = Instant::now().duration_since(self.mark).as_nanos() as u64;
        let key = type_key(label);
        // get-or-insert without allocating the key on the (common) hit.
        if self.rows.get_mut(key).is_none() {
            self.rows.insert(key.to_string(), RowAccum::default());
        }
        if let Some(row) = self.rows.get_mut(key) {
            row.samples += 1;
            row.store_ns += self.pending_store_ns;
            row.context_ns += self.pending_context_ns;
            row.dispatch_ns += dispatch_ns;
        }
        self.pending_store_ns = 0;
        self.pending_context_ns = 0;
    }

    /// Snapshot the attribution accumulated so far.
    pub fn report(&self) -> AttributionReport {
        AttributionReport {
            rows: self
                .rows
                .iter()
                .map(|(label, r)| AttributionRow {
                    label: label.clone(),
                    samples: r.samples,
                    store_ns: r.store_ns,
                    context_ns: r.context_ns,
                    dispatch_ns: r.dispatch_ns,
                })
                .collect(),
            sample_every: self.every,
            dispatches_seen: self.seen,
        }
    }
}

/// One node type's sampled wall-time totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributionRow {
    /// Node type: the dispatched node's [`Node::label`] with any
    /// trailing `-<digits>` instance suffix stripped.
    ///
    /// [`Node::label`]: crate::node::Node::label
    pub label: String,
    /// Sampled dispatches attributed to this label.
    pub samples: u64,
    /// Wall nanoseconds in the event store (pop + batch collection).
    pub store_ns: u64,
    /// Wall nanoseconds building the dispatch [`Context`].
    ///
    /// [`Context`]: crate::engine::Context
    pub context_ns: u64,
    /// Wall nanoseconds inside the node handler itself.
    pub dispatch_ns: u64,
}

impl AttributionRow {
    /// Total sampled wall nanoseconds for this label.
    pub fn total_ns(&self) -> u64 {
        self.store_ns + self.context_ns + self.dispatch_ns
    }
}

/// Snapshot of an [`AttributionSampler`]: per-node-type rows sorted by
/// type key, plus the sampling parameters needed to interpret them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributionReport {
    /// Per-node-type phase totals, sorted by type key.
    pub rows: Vec<AttributionRow>,
    /// The sampler measured every `sample_every`-th dispatch.
    pub sample_every: u64,
    /// Total dispatches the sampler saw (sampled or not).
    pub dispatches_seen: u64,
}

impl AttributionReport {
    /// Total sampled dispatches across all node types.
    pub fn samples(&self) -> u64 {
        self.rows.iter().map(|r| r.samples).sum()
    }

    /// Total sampled wall nanoseconds across all node types and phases.
    pub fn total_ns(&self) -> u64 {
        self.rows.iter().map(AttributionRow::total_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_every_nth_and_attributes_by_label() {
        let mut s = AttributionSampler::new(2);
        for i in 0..10u64 {
            s.begin();
            s.lap_store();
            s.lap_context();
            s.lap_node(if i.is_multiple_of(2) { "even" } else { "odd" });
        }
        let report = s.report();
        assert_eq!(report.dispatches_seen, 10);
        assert_eq!(report.sample_every, 2);
        // Dispatches 0,2,4,6,8 are sampled — all land on "even".
        assert_eq!(report.samples(), 5);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].label, "even");
        assert_eq!(report.rows[0].samples, 5);
    }

    #[test]
    fn unsampled_dispatches_record_nothing() {
        let mut s = AttributionSampler::new(1_000_000);
        s.begin(); // sampled (index 0)
        s.lap_store();
        s.lap_context();
        s.lap_node("a");
        s.begin(); // not sampled
        s.lap_store();
        s.lap_context();
        s.lap_node("b");
        let report = s.report();
        assert_eq!(report.samples(), 1);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].label, "a");
    }

    #[test]
    fn indexed_instance_labels_fold_into_their_node_type() {
        let mut s = AttributionSampler::new(1);
        for label in [
            "gw1-9982",
            "gw1-17",
            "gw1",
            "subnet-b",
            "trunk-demux",
            "tap@gw1",
        ] {
            s.begin();
            s.lap_store();
            s.lap_context();
            s.lap_node(label);
        }
        let report = s.report();
        let labels: Vec<&str> = report.rows.iter().map(|r| r.label.as_str()).collect();
        // The three gw1 instances share one row; hyphenated labels whose
        // suffix is not numeric keep their own.
        assert_eq!(labels, ["gw1", "subnet-b", "tap@gw1", "trunk-demux"]);
        assert_eq!(report.rows[0].samples, 3);
    }

    #[test]
    fn zero_every_degrades_to_sample_everything() {
        let mut s = AttributionSampler::new(0);
        for _ in 0..3 {
            s.begin();
            s.lap_store();
            s.lap_context();
            s.lap_node("n");
        }
        assert_eq!(s.report().samples(), 3);
    }
}
