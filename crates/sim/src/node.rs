//! The `Node` trait: anything that lives in the simulated network.

use crate::engine::Context;
use crate::packet::Packet;

/// Index of a node inside one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index (stable for the lifetime of the simulation).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A network element: gateway, router, link, tap, source or sink.
///
/// Nodes are single-threaded state machines driven by the engine. They
/// react to packet deliveries and to their own timers; they never block
/// and never see wall-clock time. There is deliberately no `Send` bound:
/// a simulation lives and dies on one thread (parallel sweeps construct
/// each simulation inside its worker), which lets instrumentation handles
/// use plain `Rc<RefCell<_>>` state instead of atomics and locks on the
/// per-packet hot path.
pub trait Node {
    /// A packet has arrived at this node.
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>);

    /// A batch of packets has arrived at this node at the same instant
    /// (the engine coalesces consecutive same-timestamp deliveries to
    /// amortize virtual dispatch). The default forwards to
    /// [`Node::on_packet`] in order; high-throughput nodes may override
    /// to process the burst in one pass. Implementations must consume
    /// (drain) the vector — the engine reuses the buffer.
    fn on_packets(&mut self, packets: &mut Vec<Packet>, ctx: &mut Context<'_>) {
        for packet in packets.drain(..) {
            self.on_packet(packet, ctx);
        }
    }

    /// A timer previously scheduled by this node (via
    /// [`Context::schedule_timer`]) has fired. `tag` echoes the value
    /// given at scheduling so a node can multiplex timers.
    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_>) {
        let _ = (tag, ctx);
    }

    /// Called once when the simulation starts, before any event fires.
    /// Sources typically arm their first timer here.
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Restore the node to its as-built state so the simulation can be
    /// re-run without reconstructing the topology (the scenario-reset
    /// fast path; see `Sim::reset`).
    ///
    /// Contract: after `reset()` the node must behave **bit-identically**
    /// to a freshly constructed copy of itself — clear queues, counters,
    /// instrumentation state (including state shared with handles via
    /// `Rc<RefCell<_>>`), and any time-dependent fields. Wiring
    /// (downstream `NodeId`s) and configuration (schedules, rates,
    /// labels) are construction-time constants and stay untouched.
    /// Implementations should retain allocated capacity (e.g.
    /// `Vec::clear`, not `Vec::new`) so resets stay allocation-free.
    ///
    /// The default is a no-op, which is correct only for stateless nodes.
    fn reset(&mut self) {}

    /// Human-readable label for diagnostics.
    fn label(&self) -> &str {
        "node"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Inert;
    impl Node for Inert {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
    }

    #[test]
    fn default_methods_are_noops() {
        // Compile-and-run check that the default label and hooks exist.
        let n = Inert;
        assert_eq!(n.label(), "node");
    }

    #[test]
    fn node_id_index_round_trip() {
        let id = NodeId(7);
        assert_eq!(id.index(), 7);
    }
}
