//! Simulation time: nanosecond-resolution fixed-point timestamps.
//!
//! Timestamps are `u64` nanoseconds from simulation start. Nanosecond
//! integer arithmetic (rather than `f64` seconds) keeps event ordering
//! exact: the experiments classify jitter at the microsecond scale on a
//! 10 ms period, and accumulated floating-point drift across a day-long
//! simulated capture would otherwise alias into exactly the signal the
//! adversary is looking for.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds per second, as f64 for conversions.
const NANOS_PER_SEC: f64 = 1_000_000_000.0;

/// An absolute simulation timestamp (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulation time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future — useful as an "infinite" run bound.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From (possibly fractional) seconds; saturates below zero to 0.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// As floating-point seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// Duration since an earlier timestamp; saturates to zero if `earlier`
    /// is actually later (callers treat causality violations as zero
    /// spans, never as huge wrapped values).
    pub fn saturating_since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From (possibly fractional) seconds; negative values clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// From microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us * 1e-6)
    }

    /// From milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms * 1e-3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// As floating-point seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// As floating-point microseconds.
    pub fn as_micros_f64(&self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating sum of two durations.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        return 0;
    }
    let ns = secs * NANOS_PER_SEC;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        // Round to nearest to keep e.g. 10ms exactly 10_000_000 ns.
        (ns + 0.5) as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; saturates in release.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(0.01);
        assert_eq!(t.as_nanos(), 10_000_000);
        assert!((t.as_secs_f64() - 0.01).abs() < 1e-15);
        let d = SimDuration::from_micros_f64(6.0);
        assert_eq!(d.as_nanos(), 6_000);
        assert!((d.as_micros_f64() - 6.0).abs() < 1e-12);
        assert_eq!(SimDuration::from_millis_f64(10.0).as_nanos(), 10_000_000);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-5.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn huge_seconds_saturate() {
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        assert_eq!((t + d).as_nanos(), 150);
        let mut u = t;
        u += d;
        assert_eq!(u.as_nanos(), 150);
        assert_eq!((u - t).as_nanos(), 50);
        assert_eq!((d + d).as_nanos(), 100);
    }

    #[test]
    fn saturating_since_never_wraps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(b.saturating_since(a).as_nanos(), 10);
        assert_eq!(a.saturating_since(b).as_nanos(), 0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_nanos(5),
            SimTime::ZERO,
            SimTime::from_nanos(2),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|t| t.as_nanos()).collect::<Vec<_>>(),
            vec![0, 2, 5]
        );
    }

    #[test]
    fn ten_ms_is_exact() {
        // The paper's timer period must not pick up representation error.
        let tau = SimDuration::from_millis_f64(10.0);
        let mut t = SimTime::ZERO;
        for _ in 0..100_000 {
            t += tau;
        }
        assert_eq!(t.as_nanos(), 1_000_000_000_000); // exactly 1000 s
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(0.25)), "0.250000000s");
    }
}
