//! Deterministic fault injection: lossy trunks and scheduled outages.
//!
//! Every result in the repo so far assumed a perfect world — lossless
//! trunks and an observer that never blinks. Real aggregated links drop
//! packets (congestion, layer-2 errors) and real measurement
//! infrastructure has maintenance windows; the throughput-fingerprinting
//! and statistical-disclosure literature this workbench extends operates
//! explicitly on such noisy, partial observations. This module provides
//! the in-simulation half of the fault model:
//!
//! * [`LossModel`] — per-packet loss laws: i.i.d. Bernoulli and the
//!   bursty two-state Gilbert–Elliott chain.
//! * [`OutageSchedule`] — periodic up/down intervals with a closed-form
//!   coverage integral, shared by link outages (packets dropped while
//!   down) and observer measurement gaps (arrivals unrecorded while
//!   down; see [`WindowedObserver::with_gaps`](crate::observer::WindowedObserver::with_gaps)).
//! * [`LossyGate`] — the loss-capable hop: a zero-delay pass-through
//!   node that drops packets per its loss model and outage schedule and
//!   forwards survivors unchanged.
//! * [`FaultPlan`] — the scenario-level bundle wiring the three fault
//!   axes through `ScenarioBuilder`/`AggregateSpec` in
//!   `linkpad-workloads`.
//!
//! **Determinism contract.** Faults are as reproducible as everything
//! else: the gate's drop pattern is fully determined by
//! `(FaultPlan::seed, run seed, topology)`. At `on_start` the gate
//! derives a private RNG by mixing the plan seed with one draw from its
//! per-node stream — the same derivation `Sim::reset` re-runs — so
//! `reset(seed)` replays the exact drop pattern a fresh build at that
//! seed would produce, while changing `FaultPlan::seed` re-randomizes
//! the fault realization without touching traffic generation.

use crate::engine::Context;
use crate::node::{Node, NodeId};
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use linkpad_stats::rng::{splitmix64_mix, Xoshiro256StarStar};
use rand_core::RngCore;
use std::cell::RefCell;
use std::rc::Rc;

/// Per-packet loss law applied by a [`LossyGate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Independent loss: every packet is dropped with probability `p`.
    Bernoulli {
        /// Drop probability, in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott bursty loss. The channel alternates
    /// between a *good* and a *bad* state; each packet is dropped with
    /// the current state's loss probability, then the state transitions
    /// (packet-driven chain). Mean burst length in the bad state is
    /// `1 / p_bad_to_good` packets.
    GilbertElliott {
        /// Per-packet probability of moving good → bad.
        p_good_to_bad: f64,
        /// Per-packet probability of moving bad → good.
        p_bad_to_good: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Validate every probability is a finite value in `[0, 1]`.
    pub fn validate(&self) -> Result<(), &'static str> {
        let ok = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
        match *self {
            LossModel::Bernoulli { p } => {
                if !ok(p) {
                    return Err("Bernoulli loss probability must be in [0, 1]");
                }
            }
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                if !(ok(p_good_to_bad) && ok(p_bad_to_good) && ok(loss_good) && ok(loss_bad)) {
                    return Err("Gilbert-Elliott probabilities must be in [0, 1]");
                }
            }
        }
        Ok(())
    }

    /// Stationary mean loss rate of the law (Bernoulli: `p`;
    /// Gilbert–Elliott: the loss probabilities weighted by the chain's
    /// stationary state distribution; a chain with no transitions in
    /// either direction sits in its initial good state forever).
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::Bernoulli { p } => p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                let denom = p_good_to_bad + p_bad_to_good;
                if denom <= 0.0 {
                    return loss_good; // absorbing start state
                }
                let pi_bad = p_good_to_bad / denom;
                loss_good * (1.0 - pi_bad) + loss_bad * pi_bad
            }
        }
    }
}

/// A periodic up/down schedule: starting at `phase`, the subject is
/// *down* for the first `down` of every `period`, up for the rest.
/// Times before `phase` are up. Used both for link outages (the gate
/// drops every packet while down) and observer measurement gaps (the
/// observer records nothing while down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageSchedule {
    period: SimDuration,
    down: SimDuration,
    phase: SimDuration,
}

impl OutageSchedule {
    /// A schedule that is down for the first `down` of every `period`,
    /// starting at time zero.
    ///
    /// # Panics
    /// Panics if `period` is zero or `down > period` (configuration
    /// constants).
    pub fn new(period: SimDuration, down: SimDuration) -> Self {
        assert!(period > SimDuration::ZERO, "outage period must be positive");
        assert!(down <= period, "outage down-time cannot exceed the period");
        Self {
            period,
            down,
            phase: SimDuration::ZERO,
        }
    }

    /// Delay the first down interval: the schedule is up until `phase`,
    /// then cycles (down for `down`, up for the rest of each period).
    pub fn with_phase(mut self, phase: SimDuration) -> Self {
        self.phase = phase;
        self
    }

    /// The cycle period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Down-time per cycle.
    pub fn down(&self) -> SimDuration {
        self.down
    }

    /// Long-run fraction of time spent down.
    pub fn down_fraction(&self) -> f64 {
        self.down.as_nanos() as f64 / self.period.as_nanos() as f64
    }

    /// Is the subject down at instant `t`? Interval convention: down on
    /// `[cycle_start, cycle_start + down)`, matching the half-open
    /// observation windows.
    pub fn is_down(&self, t: SimTime) -> bool {
        let t = t.as_nanos();
        let phase = self.phase.as_nanos();
        if t < phase {
            return false;
        }
        (t - phase) % self.period.as_nanos() < self.down.as_nanos()
    }

    /// Cumulative down-time (nanoseconds) in `[0, t)`, closed form.
    fn downtime_before(&self, t: u64) -> u64 {
        let u = t.saturating_sub(self.phase.as_nanos());
        let period = self.period.as_nanos();
        let down = self.down.as_nanos();
        (u / period) * down + (u % period).min(down)
    }

    /// Fraction of the half-open interval `[a, b)` the subject is *up*
    /// (the coverage the observer stamps on its windows). Exact closed
    /// form, no sampling. An empty interval (`b <= a`) has coverage 1.
    pub fn coverage(&self, a: SimTime, b: SimTime) -> f64 {
        let (a, b) = (a.as_nanos(), b.as_nanos());
        if b <= a {
            return 1.0;
        }
        let down = self.downtime_before(b) - self.downtime_before(a);
        1.0 - down as f64 / (b - a) as f64
    }
}

/// The full fault configuration of a scenario: which trunk loss law,
/// link outage schedule and observer gap schedule apply, plus the
/// dedicated fault seed. `Copy` configuration, like
/// `AggregateSpec` — a plan with no axes set (`FaultPlan::new(seed)`)
/// injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Dedicated fault seed, mixed into the gate's RNG derivation so
    /// fault realizations can be varied independently of the run seed.
    pub seed: u64,
    /// Per-packet loss on the trunk ingress, if any.
    pub trunk_loss: Option<LossModel>,
    /// Scheduled trunk outages (all packets dropped while down), if any.
    pub trunk_outage: Option<OutageSchedule>,
    /// Observer measurement gaps (arrivals unrecorded while down), if
    /// any.
    pub observer_gaps: Option<OutageSchedule>,
}

impl FaultPlan {
    /// An empty plan (no faults) under a dedicated fault seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            trunk_loss: None,
            trunk_outage: None,
            observer_gaps: None,
        }
    }

    /// Add a trunk packet-loss law.
    pub fn with_trunk_loss(mut self, loss: LossModel) -> Self {
        self.trunk_loss = Some(loss);
        self
    }

    /// Add a scheduled trunk outage.
    pub fn with_trunk_outage(mut self, outage: OutageSchedule) -> Self {
        self.trunk_outage = Some(outage);
        self
    }

    /// Add observer measurement gaps.
    pub fn with_observer_gaps(mut self, gaps: OutageSchedule) -> Self {
        self.observer_gaps = Some(gaps);
        self
    }

    /// Does the plan require a [`LossyGate`] in front of the trunk?
    /// (Observer gaps live inside the observer; loss and outages need
    /// the gate hop.)
    pub fn affects_trunk(&self) -> bool {
        self.trunk_loss.is_some() || self.trunk_outage.is_some()
    }

    /// Validate every probability in the plan.
    pub fn validate(&self) -> Result<(), &'static str> {
        if let Some(loss) = &self.trunk_loss {
            loss.validate()?;
        }
        Ok(())
    }
}

/// Counters a [`LossyGate`] accumulates, shared with its
/// [`FaultGateHandle`].
#[derive(Debug, Default)]
struct GateStats {
    passed: u64,
    dropped_loss: u64,
    dropped_outage: u64,
}

/// Read-side handle to a [`LossyGate`]'s drop counters, usable after
/// the simulation has run (the engine owns the node).
#[derive(Debug, Clone)]
pub struct FaultGateHandle {
    state: Rc<RefCell<GateStats>>,
}

impl FaultGateHandle {
    /// Packets forwarded downstream.
    pub fn passed(&self) -> u64 {
        self.state.borrow().passed
    }

    /// Packets dropped by the loss model.
    pub fn dropped_loss(&self) -> u64 {
        self.state.borrow().dropped_loss
    }

    /// Packets dropped because the link was in a scheduled outage.
    pub fn dropped_outage(&self) -> u64 {
        self.state.borrow().dropped_outage
    }

    /// Total packets dropped (loss + outage).
    pub fn dropped(&self) -> u64 {
        let st = self.state.borrow();
        st.dropped_loss + st.dropped_outage
    }

    /// Total packets offered to the gate (passed + dropped).
    pub fn offered(&self) -> u64 {
        let st = self.state.borrow();
        st.passed + st.dropped_loss + st.dropped_outage
    }

    /// Realized drop fraction (`NaN` before any packet was offered).
    pub fn drop_fraction(&self) -> f64 {
        let st = self.state.borrow();
        let offered = st.passed + st.dropped_loss + st.dropped_outage;
        (st.dropped_loss + st.dropped_outage) as f64 / offered as f64
    }
}

/// The loss-capable hop: drops packets per an optional
/// [`OutageSchedule`] (checked first — a down link loses everything)
/// and an optional [`LossModel`], forwarding survivors to `next` with
/// zero delay (the gate models loss, not queueing; put a
/// [`Router`](crate::router::Router) behind it for that).
#[derive(Debug)]
pub struct LossyGate {
    next: NodeId,
    loss: Option<LossModel>,
    outage: Option<OutageSchedule>,
    plan_seed: u64,
    rng: Xoshiro256StarStar,
    /// Gilbert–Elliott chain state (`true` = bad). Always starts good.
    bad: bool,
    state: Rc<RefCell<GateStats>>,
    label: String,
}

impl LossyGate {
    /// A gate forwarding to `next`, dropping per `loss` and `outage`
    /// under the given plan seed. With both `None` the gate passes
    /// everything (zero drops, still one virtual-dispatch hop — the
    /// scenario builders skip the node entirely in that case).
    ///
    /// # Panics
    /// Panics if the loss model fails [`LossModel::validate`]
    /// (configuration constant; scenario builders validate first and
    /// return typed errors).
    pub fn new(
        next: NodeId,
        loss: Option<LossModel>,
        outage: Option<OutageSchedule>,
        plan_seed: u64,
    ) -> (FaultGateHandle, Self) {
        if let Some(l) = &loss {
            if let Err(msg) = l.validate() {
                panic!("invalid loss model: {msg}");
            }
        }
        let state = Rc::new(RefCell::new(GateStats::default()));
        (
            FaultGateHandle {
                state: Rc::clone(&state),
            },
            Self {
                next,
                loss,
                outage,
                plan_seed,
                rng: Xoshiro256StarStar::from_u64(splitmix64_mix(plan_seed)),
                bad: false,
                state,
                label: "lossy-gate".to_string(),
            },
        )
    }

    /// Builder-style label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// One per-packet drop decision. Outage first (a down link loses
    /// everything without consuming RNG draws), then the loss law.
    #[inline]
    fn passes(&mut self, now: SimTime, st: &mut GateStats) -> bool {
        if let Some(outage) = &self.outage {
            if outage.is_down(now) {
                st.dropped_outage += 1;
                return false;
            }
        }
        match self.loss {
            None => {}
            // The guard draws the per-packet Bernoulli exactly once.
            Some(LossModel::Bernoulli { p }) if self.rng.next_f64() < p => {
                st.dropped_loss += 1;
                return false;
            }
            Some(LossModel::Bernoulli { .. }) => {}
            Some(LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            }) => {
                // Draw loss in the current state, then transition —
                // exactly two RNG draws per packet, state included.
                let p = if self.bad { loss_bad } else { loss_good };
                let lost = self.rng.next_f64() < p;
                let flip = self.rng.next_f64()
                    < if self.bad {
                        p_bad_to_good
                    } else {
                        p_good_to_bad
                    };
                if flip {
                    self.bad = !self.bad;
                }
                if lost {
                    st.dropped_loss += 1;
                    return false;
                }
            }
        }
        st.passed += 1;
        true
    }
}

impl Node for LossyGate {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Mix the dedicated fault seed with one draw from this node's
        // per-(run seed, node index) stream: changing either the plan
        // seed or the run seed re-randomizes the drop pattern, and
        // `Sim::reset` re-derives the stream so reset replays it
        // bit-identically.
        self.rng =
            Xoshiro256StarStar::from_u64(splitmix64_mix(self.plan_seed) ^ ctx.rng.next_u64());
        self.bad = false;
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let pass = {
            let state = Rc::clone(&self.state);
            let mut st = state.borrow_mut();
            self.passes(now, &mut st)
        };
        if pass {
            ctx.send_now(self.next, packet);
        }
    }

    fn on_packets(&mut self, packets: &mut Vec<Packet>, ctx: &mut Context<'_>) {
        // Burst path: one state borrow, decisions in arrival order.
        let now = ctx.now();
        let state = Rc::clone(&self.state);
        let mut st = state.borrow_mut();
        for packet in packets.drain(..) {
            if self.passes(now, &mut st) {
                ctx.send_now(self.next, packet);
            }
        }
    }

    fn reset(&mut self) {
        // `on_start` re-derives the RNG; restore the construction-time
        // placeholder and chain state so a never-started sim is also
        // bit-identical to a fresh build.
        self.rng = Xoshiro256StarStar::from_u64(splitmix64_mix(self.plan_seed));
        self.bad = false;
        *self.state.borrow_mut() = GateStats::default();
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::packet::{FlowId, PacketKind};
    use crate::sink::Sink;
    use crate::sink::SinkHandle;
    use linkpad_stats::rng::MasterSeed;

    fn dur(secs: f64) -> SimDuration {
        SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn outage_schedule_membership_and_coverage() {
        // Down 0.25 s of every 1 s, starting at t = 0.5 s.
        let o = OutageSchedule::new(dur(1.0), dur(0.25)).with_phase(dur(0.5));
        assert!(!o.is_down(SimTime::from_secs_f64(0.1)), "before phase: up");
        assert!(o.is_down(SimTime::from_secs_f64(0.5)));
        assert!(o.is_down(SimTime::from_secs_f64(0.74)));
        assert!(!o.is_down(SimTime::from_secs_f64(0.75)), "half-open");
        assert!(o.is_down(SimTime::from_secs_f64(1.6)));
        assert!((o.down_fraction() - 0.25).abs() < 1e-12);

        // Closed-form coverage vs brute-force sampling of is_down.
        for (a, b) in [(0.0, 4.0), (0.3, 0.9), (0.55, 0.65), (1.9, 3.1)] {
            let samples = 100_000;
            let mut down = 0u32;
            for i in 0..samples {
                let t = a + (i as f64 + 0.5) / samples as f64 * (b - a);
                if o.is_down(SimTime::from_secs_f64(t)) {
                    down += 1;
                }
            }
            let sampled = 1.0 - down as f64 / samples as f64;
            let exact = o.coverage(SimTime::from_secs_f64(a), SimTime::from_secs_f64(b));
            assert!(
                (sampled - exact).abs() < 1e-3,
                "[{a},{b}): sampled {sampled} vs exact {exact}"
            );
        }
        // Empty interval.
        assert_eq!(
            o.coverage(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(2.0)),
            1.0
        );
        // Fully-down interval.
        assert_eq!(
            o.coverage(SimTime::from_secs_f64(1.5), SimTime::from_secs_f64(1.75)),
            0.0
        );
    }

    #[test]
    fn gilbert_elliott_mean_loss_matches_stationary_law() {
        let ge = LossModel::GilbertElliott {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.18,
            loss_good: 0.001,
            loss_bad: 0.45,
        };
        // π_bad = 0.02 / 0.20 = 0.1.
        assert!((ge.mean_loss() - (0.001 * 0.9 + 0.45 * 0.1)).abs() < 1e-12);
        assert!(ge.validate().is_ok());
        assert!(LossModel::Bernoulli { p: 1.5 }.validate().is_err());
        assert!(LossModel::GilbertElliott {
            p_good_to_bad: 0.5,
            p_bad_to_good: 0.5,
            loss_good: 0.0,
            loss_bad: f64::NAN,
        }
        .validate()
        .is_err());
    }

    /// Emits one 500-byte packet every `period` through a gate.
    struct Clock {
        dst: NodeId,
        period: SimDuration,
        remaining: u32,
    }
    impl Node for Clock {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.schedule_timer(self.period, 0);
        }
        fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
            let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 500);
            ctx.send_now(self.dst, pkt);
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.schedule_timer(self.period, 0);
            }
        }
    }

    fn run_gated(
        seed: u64,
        total: u32,
        loss: Option<LossModel>,
        outage: Option<OutageSchedule>,
        plan_seed: u64,
    ) -> (FaultGateHandle, SinkHandle) {
        let mut b = SimBuilder::new(MasterSeed::new(seed));
        let (sink_handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let (gate_handle, gate) = LossyGate::new(sink_id, loss, outage, plan_seed);
        let gate_id = b.add_node(Box::new(gate));
        b.add_node(Box::new(Clock {
            dst: gate_id,
            period: SimDuration::from_millis_f64(1.0),
            remaining: total,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::MAX);
        (gate_handle, sink_handle)
    }

    #[test]
    fn bernoulli_gate_drops_at_the_configured_rate() {
        let p = 0.05;
        let (gate, sink) = run_gated(3, 20_000, Some(LossModel::Bernoulli { p }), None, 11);
        assert_eq!(gate.offered(), 20_000);
        assert_eq!(gate.passed(), sink.count() as u64);
        assert_eq!(gate.dropped_outage(), 0);
        let rate = gate.dropped_loss() as f64 / gate.offered() as f64;
        assert!((rate - p).abs() < 0.01, "realized loss {rate} vs p={p}");
    }

    #[test]
    fn gilbert_elliott_gate_matches_stationary_rate_and_bursts() {
        let ge = LossModel::GilbertElliott {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.18,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        let (gate, _) = run_gated(5, 50_000, Some(ge), None, 29);
        let rate = gate.drop_fraction();
        let want = ge.mean_loss();
        assert!(
            (rate - want).abs() < 0.02,
            "realized loss {rate} vs stationary {want}"
        );
    }

    #[test]
    fn outage_gate_drops_exactly_the_down_windows() {
        // 1 ms arrivals; down the first 0.2 s of every 1 s. Every drop
        // is an outage drop and the realized drop fraction matches the
        // down fraction.
        let outage = OutageSchedule::new(dur(1.0), dur(0.2));
        let (gate, sink) = run_gated(7, 10_000, None, Some(outage), 0);
        assert_eq!(gate.dropped_loss(), 0);
        assert_eq!(gate.passed(), sink.count() as u64);
        let frac = gate.dropped_outage() as f64 / gate.offered() as f64;
        assert!((frac - 0.2).abs() < 0.01, "outage drop fraction {frac}");
    }

    #[test]
    fn same_seeds_reproduce_the_exact_drop_pattern() {
        let loss = Some(LossModel::Bernoulli { p: 0.1 });
        let (a, _) = run_gated(9, 5_000, loss, None, 77);
        let (b, _) = run_gated(9, 5_000, loss, None, 77);
        assert_eq!(a.dropped_loss(), b.dropped_loss());
        assert_eq!(a.passed(), b.passed());
        // Different plan seed, same run seed → different realization.
        let (c, _) = run_gated(9, 5_000, loss, None, 78);
        assert_ne!(
            a.dropped_loss(),
            c.dropped_loss(),
            "plan seed must re-randomize the drop pattern"
        );
    }

    #[test]
    fn plan_builder_and_validation() {
        let plan = FaultPlan::new(42)
            .with_trunk_loss(LossModel::Bernoulli { p: 0.05 })
            .with_trunk_outage(OutageSchedule::new(dur(1.0), dur(0.25)))
            .with_observer_gaps(OutageSchedule::new(dur(2.0), dur(0.5)));
        assert!(plan.affects_trunk());
        assert!(plan.validate().is_ok());
        assert!(!FaultPlan::new(1).affects_trunk());
        let bad = FaultPlan::new(1).with_trunk_loss(LossModel::Bernoulli { p: -0.1 });
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "outage down-time cannot exceed the period")]
    fn oversized_downtime_panics() {
        let _ = OutageSchedule::new(dur(1.0), dur(1.5));
    }
}
