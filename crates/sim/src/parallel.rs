//! Parallel execution of independent simulations.
//!
//! Detection-rate experiments run hundreds of independent simulations
//! (per class, per sample-size, per σ_T, per utilization point). Each
//! simulation is single-threaded and deterministic; the sweep fans them
//! out over scoped threads with **chunked work distribution**: the input
//! is pre-split into a few chunks per worker, and workers claim whole
//! chunks through one shared atomic counter. Compared with the previous
//! one-item-per-channel-message queue, this touches synchronization once
//! per chunk instead of once per item, allocates no channel nodes, and
//! keeps each worker's items contiguous — while still load-balancing
//! uneven task costs at chunk granularity.
//!
//! Results are returned **in input order** regardless of which worker ran
//! which chunk, preserving the workspace-wide reproducibility guarantee.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many chunks each worker gets on average; >1 so stragglers can be
/// absorbed by faster workers.
const CHUNKS_PER_WORKER: usize = 4;

/// Map `f` over `items` in parallel, preserving order.
///
/// Worker count defaults to `available_parallelism`, capped by the number
/// of items. Panics in `f` are propagated to the caller.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    parallel_map_with_threads(items, default_threads(), f)
}

/// [`parallel_map`] with per-worker state: each worker calls `init()`
/// once (lazily, before its first item) and threads the resulting state
/// through every item it processes, in input order within each chunk.
///
/// This is the scenario-reset hook: a sweep worker builds one simulation
/// topology in its state slot and *reseeds* it per item instead of
/// rebuilding it, while results still come back in input order. The
/// state is worker-local, so `S` needs no `Sync` and no locking; it is
/// dropped with the worker thread.
pub fn parallel_map_init<T, U, S, I, F>(items: Vec<T>, init: I, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    parallel_map_init_with_threads(items, default_threads(), init, f)
}

/// [`parallel_map_init`] with an explicit worker count (≥ 1).
pub fn parallel_map_init_with_threads<T, U, S, I, F>(
    items: Vec<T>,
    threads: usize,
    init: I,
    f: F,
) -> Vec<U>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }

    // Pre-split the input into chunks. Each chunk cell is taken exactly
    // once (guarded by the claim counter), and each result cell is
    // written exactly once; the mutexes are touched twice per chunk, so
    // they are cold even for thousands of items.
    let chunk_len = n.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
    let mut work: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(n / chunk_len + 1);
    {
        let mut items = items.into_iter();
        loop {
            let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            work.push(Mutex::new(Some(chunk)));
        }
    }
    let results: Vec<Mutex<Option<Vec<U>>>> = (0..work.len()).map(|_| Mutex::new(None)).collect();
    let next_chunk = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work = &work;
            let results = &results;
            let next_chunk = &next_chunk;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                // Lazy: a worker that never claims a chunk never pays for
                // state construction.
                let mut state: Option<S> = None;
                loop {
                    let i = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let chunk = work[i]
                        .lock()
                        .expect("work mutex never poisoned before take")
                        .take()
                        .expect("chunk claimed exactly once");
                    let state = state.get_or_insert_with(init);
                    let out: Vec<U> = chunk.into_iter().map(|item| f(state, item)).collect();
                    *results[i].lock().expect("result mutex poisoned") = Some(out);
                }
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for cell in results {
        let chunk = cell
            .into_inner()
            .expect("result mutex poisoned")
            .expect("every chunk produced a result");
        out.extend(chunk);
    }
    out
}

/// [`parallel_map`] with an explicit worker count (≥ 1).
pub fn parallel_map_with_threads<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    parallel_map_init_with_threads(items, threads, || (), |(), item| f(item))
}

/// Default worker count: `available_parallelism`, or 4 if unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_empty_output() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn order_is_preserved() {
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_map(items.clone(), |x| x * 2);
        let want: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn order_preserved_with_uneven_task_cost() {
        // Early tasks sleep longest; results must still come back sorted.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map_with_threads(items, 8, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 4 * x));
            }
            x
        });
        assert_eq!(out, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn single_thread_path_works() {
        let out = parallel_map_with_threads(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map_with_threads(vec![5, 6], 64, |x| x * x);
        assert_eq!(out, vec![25, 36]);
    }

    #[test]
    fn chunk_boundaries_cover_all_items() {
        // Sizes around the chunking arithmetic's edges.
        for n in [1usize, 2, 3, 7, 8, 9, 31, 32, 33, 100, 101] {
            let items: Vec<usize> = (0..n).collect();
            let out = parallel_map_with_threads(items, 8, |x| x + 1);
            assert_eq!(out, (1..=n).collect::<Vec<usize>>(), "n = {n}");
        }
    }

    #[test]
    fn results_match_sequential_for_stateful_work() {
        // Hash-like mixing per item: any index mixup would show.
        fn mix(x: u64) -> u64 {
            let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z ^ (z >> 31)
        }
        let items: Vec<u64> = (0..10_000).collect();
        let par = parallel_map(items.clone(), mix);
        let seq: Vec<u64> = items.into_iter().map(mix).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn init_state_is_reused_within_a_worker() {
        use std::sync::atomic::AtomicUsize;
        // Count state constructions: must be ≤ workers, not per item.
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        BUILDS.store(0, Ordering::SeqCst);
        let items: Vec<u64> = (0..256).collect();
        let out = parallel_map_init_with_threads(
            items.clone(),
            4,
            || {
                BUILDS.fetch_add(1, Ordering::SeqCst);
                0u64 // per-worker accumulator
            },
            |acc, x| {
                *acc += 1;
                x * 3
            },
        );
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<u64>>());
        let builds = BUILDS.load(Ordering::SeqCst);
        assert!(
            (1..=4).contains(&builds),
            "state built once per active worker, got {builds}"
        );
    }

    #[test]
    fn init_single_thread_path_matches() {
        let out = parallel_map_init_with_threads(vec![1u32, 2, 3], 1, || 10u32, |s, x| *s + x);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn init_order_preserved_across_chunks() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map_init(items.clone(), || (), |(), x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<usize>>());
    }
}
