//! Parallel execution of independent simulations.
//!
//! Detection-rate experiments run hundreds of independent simulations
//! (per class, per sample-size, per σ_T, per utilization point), and
//! sharded aggregate scenarios split one huge flow population over a few
//! heavyweight sub-simulations. Each simulation is single-threaded and
//! deterministic; the sweep fans them out over scoped threads with
//! **dynamic work-stealing chunks**: a single shared atomic index hands
//! out contiguous index ranges, and each claim takes a fraction of the
//! *remaining* work (guided self-scheduling, `remaining / (workers ×
//! 4)`, floor 1). Early claims are large — synchronization is touched a
//! handful of times for a balanced workload — while the tail degrades to
//! single items, so one straggling chunk can no longer serialize the
//! sweep the way the previous static 4-chunks-per-worker pre-split
//! could when chunk costs were uneven (exactly the sharded-aggregate
//! shape: a few items, minutes each).
//!
//! Results are returned **in input order** regardless of which worker ran
//! which range, preserving the workspace-wide reproducibility guarantee.

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Guided-scheduling divisor: each claim takes `remaining / (workers ×
/// OVERSUBSCRIBE)` items (min 1), so chunk sizes shrink geometrically
/// toward an item-granular tail.
const OVERSUBSCRIBE: usize = 4;

/// Map `f` over `items` in parallel, preserving order.
///
/// Worker count defaults to `available_parallelism`, capped by the number
/// of items. Panics in `f` are propagated to the caller.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    parallel_map_with_threads(items, default_threads(), f)
}

/// [`parallel_map`] with per-worker state: each worker calls `init()`
/// once (lazily, before its first item) and threads the resulting state
/// through every item it processes, in input order within each chunk.
///
/// This is the scenario-reset hook: a sweep worker builds one simulation
/// topology in its state slot and *reseeds* it per item instead of
/// rebuilding it, while results still come back in input order. The
/// state is worker-local, so `S` needs no `Sync` and no locking; it is
/// dropped with the worker thread.
pub fn parallel_map_init<T, U, S, I, F>(items: Vec<T>, init: I, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    parallel_map_init_with_threads(items, default_threads(), init, f)
}

/// [`parallel_map_init`] with an explicit worker count (≥ 1).
pub fn parallel_map_init_with_threads<T, U, S, I, F>(
    items: Vec<T>,
    threads: usize,
    init: I,
    f: F,
) -> Vec<U>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }

    // One cell per item. Each work cell is taken exactly once and each
    // result cell written exactly once, both guarded by the claim index,
    // so every lock is uncontended; items here are whole simulations
    // (µs–minutes each), which dwarfs a cold lock acquisition.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work = &work;
            let results = &results;
            let next = &next;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                // Lazy: a worker that never claims work never pays for
                // state construction.
                let mut state: Option<S> = None;
                loop {
                    // Guided claim: a fraction of the remaining work,
                    // computed from a (possibly stale) snapshot — the
                    // fetch_add is the only authority on ownership, and
                    // the range is clamped to the input, so staleness
                    // only perturbs the chunk size.
                    let claimed = next.load(Ordering::Relaxed);
                    if claimed >= n {
                        break;
                    }
                    let chunk = ((n - claimed) / (threads * OVERSUBSCRIBE)).max(1);
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let state = state.get_or_insert_with(init);
                    for i in start..end {
                        let item = work[i]
                            .lock()
                            .expect("work mutex never poisoned before take")
                            .take()
                            .expect("item claimed exactly once");
                        let out = f(state, item);
                        *results[i].lock().expect("result mutex poisoned") = Some(out);
                    }
                }
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for cell in results {
        out.push(
            cell.into_inner()
                .expect("result mutex poisoned")
                .expect("every item produced a result"),
        );
    }
    out
}

/// One item's worker panicked: the structured per-item error
/// [`parallel_map_init_catching`] surfaces instead of poisoning the
/// whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPanic {
    /// Input-order index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the overwhelmingly
    /// common case: `panic!`/`assert!`/`expect` messages).
    pub message: String,
}

impl fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for ItemPanic {}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-tolerant [`parallel_map_init`]: a panic in `f` is caught
/// ([`catch_unwind`]) and surfaced as that item's [`ItemPanic`] —
/// carrying the input-order index and panic message — while every
/// sibling item still runs to completion and returns `Ok`.
///
/// A caught panic may have left the worker's state half-mutated, so the
/// state is **dropped** and rebuilt by `init()` before the worker's
/// next item — a panic can never leak corruption into a later item's
/// result. Panics in `init` itself are *not* caught (a harness that
/// cannot construct worker state is broken, not faulted) and propagate
/// as before.
///
/// This is the sharded-execution safety net: one failed shard becomes
/// a typed per-shard error the caller can retry deterministically,
/// instead of tearing down the scope and every sibling's work with it.
pub fn parallel_map_init_catching<T, U, S, I, F>(
    items: Vec<T>,
    threads: usize,
    init: I,
    f: F,
) -> Vec<Result<U, ItemPanic>>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        let mut state: Option<S> = None;
        return items
            .into_iter()
            .enumerate()
            .map(|(index, item)| {
                let st = state.get_or_insert_with(&init);
                match catch_unwind(AssertUnwindSafe(|| f(st, item))) {
                    Ok(out) => Ok(out),
                    Err(payload) => {
                        state = None;
                        Err(ItemPanic {
                            index,
                            message: panic_message(payload),
                        })
                    }
                }
            })
            .collect();
    }

    // Same cell/claim structure as `parallel_map_init_with_threads`;
    // locks are never held across `f`, so a caught panic cannot poison
    // a work or result mutex.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<Result<U, ItemPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work = &work;
            let results = &results;
            let next = &next;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state: Option<S> = None;
                loop {
                    let claimed = next.load(Ordering::Relaxed);
                    if claimed >= n {
                        break;
                    }
                    let chunk = ((n - claimed) / (threads * OVERSUBSCRIBE)).max(1);
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        let item = work[i]
                            .lock()
                            .expect("work mutex never poisoned before take")
                            .take()
                            .expect("item claimed exactly once");
                        let st = state.get_or_insert_with(init);
                        let out = match catch_unwind(AssertUnwindSafe(|| f(st, item))) {
                            Ok(out) => Ok(out),
                            Err(payload) => {
                                // The state may be half-mutated; rebuild
                                // before the next item.
                                state = None;
                                Err(ItemPanic {
                                    index: i,
                                    message: panic_message(payload),
                                })
                            }
                        };
                        *results[i].lock().expect("result mutex poisoned") = Some(out);
                    }
                }
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for cell in results {
        out.push(
            cell.into_inner()
                .expect("result mutex poisoned")
                .expect("every item produced a result"),
        );
    }
    out
}

/// [`parallel_map`] with an explicit worker count (≥ 1).
pub fn parallel_map_with_threads<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    parallel_map_init_with_threads(items, threads, || (), |(), item| f(item))
}

/// Default worker count: `available_parallelism`, or 4 if unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_empty_output() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn order_is_preserved() {
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_map(items.clone(), |x| x * 2);
        let want: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn order_preserved_with_uneven_task_cost() {
        // Early tasks sleep longest; results must still come back sorted.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map_with_threads(items, 8, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 4 * x));
            }
            x
        });
        assert_eq!(out, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn single_thread_path_works() {
        let out = parallel_map_with_threads(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map_with_threads(vec![5, 6], 64, |x| x * x);
        assert_eq!(out, vec![25, 36]);
    }

    #[test]
    fn chunk_boundaries_cover_all_items() {
        // Sizes around the chunking arithmetic's edges.
        for n in [1usize, 2, 3, 7, 8, 9, 31, 32, 33, 100, 101] {
            let items: Vec<usize> = (0..n).collect();
            let out = parallel_map_with_threads(items, 8, |x| x + 1);
            assert_eq!(out, (1..=n).collect::<Vec<usize>>(), "n = {n}");
        }
    }

    #[test]
    fn results_match_sequential_for_stateful_work() {
        // Hash-like mixing per item: any index mixup would show.
        fn mix(x: u64) -> u64 {
            let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z ^ (z >> 31)
        }
        let items: Vec<u64> = (0..10_000).collect();
        let par = parallel_map(items.clone(), mix);
        let seq: Vec<u64> = items.into_iter().map(mix).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn init_state_is_reused_within_a_worker() {
        use std::sync::atomic::AtomicUsize;
        // Count state constructions: must be ≤ workers, not per item.
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        BUILDS.store(0, Ordering::SeqCst);
        let items: Vec<u64> = (0..256).collect();
        let out = parallel_map_init_with_threads(
            items.clone(),
            4,
            || {
                BUILDS.fetch_add(1, Ordering::SeqCst);
                0u64 // per-worker accumulator
            },
            |acc, x| {
                *acc += 1;
                x * 3
            },
        );
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<u64>>());
        let builds = BUILDS.load(Ordering::SeqCst);
        assert!(
            (1..=4).contains(&builds),
            "state built once per active worker, got {builds}"
        );
    }

    #[test]
    fn init_single_thread_path_matches() {
        let out = parallel_map_init_with_threads(vec![1u32, 2, 3], 1, || 10u32, |s, x| *s + x);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn init_order_preserved_across_chunks() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map_init(items.clone(), || (), |(), x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<usize>>());
    }

    #[test]
    fn dynamic_chunks_process_each_item_exactly_once() {
        // The guided claim loop over-requests past the end (a stale
        // snapshot may size a chunk beyond the input); ownership must
        // still be exactly-once and results order-stable.
        use std::sync::atomic::AtomicUsize;
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        CALLS.store(0, Ordering::SeqCst);
        for n in [1usize, 2, 5, 63, 64, 65, 997] {
            CALLS.store(0, Ordering::SeqCst);
            let items: Vec<usize> = (0..n).collect();
            let out = parallel_map_with_threads(items, 8, |x| {
                CALLS.fetch_add(1, Ordering::SeqCst);
                x * 7
            });
            assert_eq!(out, (0..n).map(|x| x * 7).collect::<Vec<usize>>(), "n={n}");
            assert_eq!(CALLS.load(Ordering::SeqCst), n, "n={n}");
        }
    }

    #[test]
    fn catching_map_isolates_a_panicking_item() {
        // One poisoned item must not take down its siblings, and the
        // error must carry the input-order index and the panic message.
        for threads in [1usize, 4] {
            let items: Vec<u64> = (0..64).collect();
            let out = parallel_map_init_catching(
                items,
                threads,
                || 0u64,
                |_, x| {
                    if x == 13 {
                        panic!("injected fault on item 13");
                    }
                    x * 2
                },
            );
            assert_eq!(out.len(), 64);
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    let err = r.as_ref().expect_err("item 13 must fail");
                    assert_eq!(err.index, 13);
                    assert!(
                        err.message.contains("injected fault"),
                        "message: {}",
                        err.message
                    );
                } else {
                    assert_eq!(*r, Ok(i as u64 * 2), "sibling {i} (threads={threads})");
                }
            }
        }
    }

    #[test]
    fn catching_map_rebuilds_state_after_a_panic() {
        // A panic may leave worker state half-mutated; the next item on
        // that worker must see freshly initialized state, never the
        // corrupted one. Single worker makes the schedule deterministic:
        // item 0 corrupts the accumulator then panics; item 1 must not
        // observe the corruption.
        let out = parallel_map_init_catching(
            vec![0u32, 1, 2],
            1,
            || 100u32,
            |acc, x| {
                if x == 0 {
                    *acc = 999; // half-done mutation...
                    panic!("die after corrupting state");
                }
                *acc += x;
                *acc
            },
        );
        assert!(out[0].is_err());
        assert_eq!(out[1], Ok(101), "state rebuilt, not 999 + 1");
        assert_eq!(out[2], Ok(103), "same worker state continues");
    }

    #[test]
    fn catching_map_matches_plain_map_when_nothing_panics() {
        let items: Vec<u64> = (0..300).collect();
        let caught = parallel_map_init_catching(items.clone(), 6, || (), |(), x| x * 7);
        let plain = parallel_map_with_threads(items, 6, |x| x * 7);
        assert_eq!(
            caught.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            plain
        );
    }

    #[test]
    fn item_panic_displays_index_and_message() {
        let e = ItemPanic {
            index: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "item 3 panicked: boom");
    }

    #[test]
    fn one_straggler_does_not_serialize_the_tail() {
        // With dynamic chunking the worker stuck on the slow first item
        // gives up the rest of the queue: the other workers drain all
        // remaining items while it sleeps, so total wall-clock stays far
        // below slow + (n-1)·fast serialized behind one static chunk.
        let t0 = std::time::Instant::now();
        let out = parallel_map_with_threads((0..64u64).collect(), 4, |x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(120));
            }
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<u64>>());
        // Generous bound: the slow item alone is 120 ms; a static
        // pre-split that trapped ~16 items behind it would add nothing
        // measurable here, but a *serial* run of the straggler's whole
        // claim under the old 4-chunks to a 2-core machine could. The
        // real assertion is above (order + coverage); the timing check
        // only guards against the claim loop degrading to fully serial
        // processing of every item behind the sleeper.
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(2_000),
            "dynamic claims should overlap the straggler"
        );
    }
}
