//! Parallel execution of independent simulations.
//!
//! Detection-rate experiments run hundreds of independent simulations
//! (per class, per sample-size, per σ_T, per utilization point). Each
//! simulation is single-threaded and deterministic; the sweep fans them
//! out over scoped threads with a shared atomic work index — a minimal
//! work-stealing-free scheduler that is plenty, since tasks are coarse
//! (milliseconds to seconds each) and independent.
//!
//! Results are returned **in input order** regardless of which worker ran
//! which task, preserving the workspace-wide reproducibility guarantee.

use std::num::NonZeroUsize;

/// Map `f` over `items` in parallel, preserving order.
///
/// Worker count defaults to `available_parallelism`, capped by the number
/// of items. Panics in `f` are propagated to the caller (the first
/// panicking worker's payload).
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    parallel_map_with_threads(items, default_threads(), f)
}

/// [`parallel_map`] with an explicit worker count (≥ 1).
pub fn parallel_map_with_threads<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Work distribution: a pre-filled channel of (index, item) pairs acts
    // as the shared queue; whichever worker is free pulls the next task
    // (natural load balancing for uneven task costs). Results come back
    // over a second channel tagged with their index so the parent can
    // restore input order.
    let mut result_slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let (work_tx, work_rx) = crossbeam::channel::unbounded::<(usize, T)>();
    for pair in items.into_iter().enumerate() {
        work_tx.send(pair).expect("receiver alive");
    }
    drop(work_tx);

    let (tx, rx) = crossbeam::channel::unbounded::<(usize, U)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let tx = tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((i, item)) = work_rx.recv() {
                    // The parent drains `rx` until all senders drop, so
                    // this send can only fail after a sibling panic —
                    // in which case the scope is unwinding anyway.
                    let _ = tx.send((i, f(item)));
                }
            });
        }
        drop(tx);
        for (i, out) in rx {
            result_slots[i] = Some(out);
        }
    });

    result_slots
        .into_iter()
        .map(|slot| slot.expect("every index processed exactly once"))
        .collect()
}

/// Default worker count: `available_parallelism`, or 4 if unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_empty_output() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn order_is_preserved() {
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_map(items.clone(), |x| x * 2);
        let want: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn order_preserved_with_uneven_task_cost() {
        // Early tasks sleep longest; results must still come back sorted.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map_with_threads(items, 8, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 4 * x));
            }
            x
        });
        assert_eq!(out, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn single_thread_path_works() {
        let out = parallel_map_with_threads(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map_with_threads(vec![5, 6], 64, |x| x * x);
        assert_eq!(out, vec![25, 36]);
    }

    #[test]
    fn results_match_sequential_for_stateful_work() {
        // Hash-like mixing per item: any index mixup would show.
        fn mix(x: u64) -> u64 {
            let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z ^ (z >> 31)
        }
        let items: Vec<u64> = (0..10_000).collect();
        let par = parallel_map(items.clone(), mix);
        let seq: Vec<u64> = items.into_iter().map(mix).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }
}
