//! The engine's event store: a ladder/calendar queue over a slab arena.
//!
//! A discrete-event sweep pushes and pops one event per packet hop, so
//! this structure is the single hottest data structure in the workspace.
//! The previous engine used `BinaryHeap<HeapEntry>`: every operation paid
//! `O(log n)` sift comparisons over the *whole* pending set and moved
//! 64-byte entries (the `Packet` payload rode inside the heap nodes)
//! through the heap array.
//!
//! This queue is a three-tier time ladder over compact 32-byte keys
//! (`(time, seq)` order, target/kind metadata, and a timer tag or packet
//! slot inline):
//!
//! * **near** — the currently active time window, a *small* binary heap
//!   sized around [`TARGET_BATCH`] events. It lives in L1 cache, so its
//!   `O(log B)` operations touch a dozen hot bytes per level.
//! * **rungs** — [`N_BUCKETS`] consecutive windows of width `width` ns
//!   after the near window (the calendar/timing-wheel tier). Insertion
//!   is an index computation plus a `Vec::push` — no comparisons.
//! * **far** — everything beyond the rung span, completely unsorted:
//!   insertion is a bare `Vec::push`.
//!
//! When `near` drains, the next non-empty rung is heapified into it
//! (`O(B)`). When all rungs are drained, one sequential sweep of `far`
//! re-bases the ladder at the minimum pending time and scatters the next
//! `N_BUCKETS × width` of events into fresh rungs; `width` is
//! re-estimated from the observed event density so a rung holds roughly
//! [`TARGET_BATCH`] events. A far event is therefore rescanned about
//! once per `N_BUCKETS` batches, so per-event ordering cost stays flat
//! as the pending set grows — instead of the global `O(log n)` the old
//! heap paid on every single push and pop.
//!
//! Timer events live entirely inside their key; delivery payloads live
//! in a **slab arena** (`slots` + an intrusive free list). The ordering
//! tiers therefore move only small keys, packets are written exactly
//! once, and no per-event allocation happens after the arena and rungs
//! warm up.
//!
//! **Determinism.** Pop order is exactly ascending `(time, seq)` — the
//! same total order the old heap produced. `seq` values are unique (the
//! engine's scheduling counter), so keys never compare equal and FIFO
//! tie-breaking at equal timestamps is preserved bit-for-bit. The
//! property tests in `tests/determinism.rs` pin this against a
//! `BinaryHeap` reference model.

use crate::packet::Packet;
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// What an event does when it fires.
#[derive(Debug)]
pub enum EventKind {
    /// Deliver a packet to the target node.
    Deliver(Packet),
    /// Fire a timer on the target node with the given tag.
    Timer(u64),
}

/// A scheduled event, as returned by [`EventQueue::pop`].
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Global scheduling sequence number (FIFO tie-break at equal times).
    pub seq: u64,
    /// Index of the node the event targets.
    pub target: usize,
    /// The action.
    pub kind: EventKind,
}

/// Self-contained sort key; what the ladder tiers hold.
///
/// Timer events live *entirely* in the key (`payload` = tag), so the
/// majority of events never touch the slab at all; deliveries keep their
/// `Packet` in the arena and carry its slot index in `payload`.
///
/// `Ord` is **reversed** (greater = earlier) so `BinaryHeap<Key>`, a
/// max-heap, pops the earliest `(time, seq)` first.
#[derive(Debug, Clone, Copy)]
struct Key {
    time: u64,
    seq: u64,
    /// Bit 31: timer flag; bits 0..31: target node index.
    meta: u32,
    /// Timer tag, or slab slot of the `Packet`.
    payload: u64,
}

const TIMER_FLAG: u32 = 1 << 31;

impl Key {
    #[inline]
    fn order(&self) -> (u64, u64) {
        (self.time, self.seq)
    }

    #[inline]
    fn target(&self) -> usize {
        (self.meta & !TIMER_FLAG) as usize
    }

    #[inline]
    fn is_timer(&self) -> bool {
        self.meta & TIMER_FLAG != 0
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.order() == other.order()
    }
}
impl Eq for Key {}
impl Ord for Key {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.order().cmp(&self.order())
    }
}
impl PartialOrd for Key {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Arena slot: a delivery's packet, or a link in the free list.
#[derive(Debug)]
enum Slot {
    Full(Packet),
    /// Free; holds the next free slot index (`u32::MAX` = end of list).
    Free(u32),
}

/// Rungs and the near window adapt toward this many events each: large
/// enough to amortize tier moves, small enough that the near heap stays
/// in L1 cache.
const TARGET_BATCH: usize = 512;

/// Rungs per ladder cycle. A `far` event is rescanned roughly once per
/// `N_BUCKETS` refills, bounding the re-sweep cost per event.
const N_BUCKETS: usize = 64;

/// Initial rung width in nanoseconds (~1 ms, the order of the paper's
/// timer periods); every re-base re-estimates it from the observed
/// event density.
const INITIAL_WIDTH: u64 = 1 << 20;

/// Ladder/calendar event queue with slab-arena storage.
///
/// Pops events in ascending `(time, seq)` order, identically to a
/// min-heap over the same keys.
#[derive(Debug)]
pub struct EventQueue {
    slots: Vec<Slot>,
    /// Head of the intrusive free list (`u32::MAX` = empty).
    free_head: u32,
    /// Min-heap (via reversed `Ord`) over the active window:
    /// events with `time <= horizon`.
    near: BinaryHeap<Key>,
    /// The calendar tier: rung `i` holds events in
    /// `[base + i*width, base + (i+1)*width)`, unsorted.
    rungs: Vec<Vec<Key>>,
    /// Events at or beyond `span_end`, unsorted.
    far: Vec<Key>,
    /// Inclusive upper time bound of the near window.
    horizon: u64,
    /// Start time of the current ladder cycle.
    base: u64,
    /// Index of the rung the near window was loaded from.
    cursor: usize,
    /// Rung width (ns) of the current cycle.
    width: u64,
    /// Inclusive upper time bound of the rung span; below `base` when no
    /// cycle is active.
    span_last: u64,
    len: usize,
    diag: Diag,
    /// Provenance hook for causal tracing: `Some` only while the engine
    /// records a trace, so the plain path pays one predictable
    /// `is-none` branch per push and nothing else.
    births: Option<Box<TraceBirths>>,
}

/// Scheduler-side provenance state for causal tracing: which event is
/// currently being dispatched (`current`), and the log of
/// `(child seq, parent seq)` pairs for every event scheduled since the
/// engine last drained it into the trace recorder.
#[derive(Debug)]
pub(crate) struct TraceBirths {
    /// Seq of the event whose handler is running, or
    /// [`NO_PARENT_SEQ`] outside any dispatch (`on_start`, pre-run).
    pub(crate) current: u64,
    /// `(child seq, parent seq)` pairs pending drain by the engine.
    pub(crate) log: Vec<(u64, u64)>,
}

/// The "no parent" sentinel threaded to the trace recorder — matches
/// `linkpad_obs::trace::NO_PARENT` (asserted in the engine's tests).
pub(crate) const NO_PARENT_SEQ: u64 = u64::MAX;

/// Cheap internal op counters (a few `u64` increments on cold paths),
/// exposed for perf diagnosis and regression hunting.
#[derive(Debug, Clone, Copy, Default)]
pub struct Diag {
    /// Pushes routed to the near heap.
    pub push_near: u64,
    /// Pushes routed to a calendar rung.
    pub push_rung: u64,
    /// Pushes routed to the far tier.
    pub push_far: u64,
    /// Rung-to-near refills.
    pub refills: u64,
    /// Ladder re-bases (full `far` sweeps).
    pub rebases: u64,
    /// Total keys examined by re-base sweeps.
    pub rebase_scanned: u64,
    /// Total keys moved into rungs by re-bases.
    pub rebase_moved: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue with `cap` slab slots pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            free_head: u32::MAX,
            near: BinaryHeap::with_capacity(TARGET_BATCH * 2),
            rungs: (0..N_BUCKETS).map(|_| Vec::new()).collect(),
            far: Vec::with_capacity(cap),
            horizon: 0,
            base: 0,
            cursor: N_BUCKETS,
            width: INITIAL_WIDTH,
            span_last: 0,
            len: 0,
            diag: Diag::default(),
            births: None,
        }
    }

    /// Arm the provenance hook: every subsequent [`EventQueue::push`]
    /// logs a `(child, parent)` pair until [`EventQueue::trace_disarm`].
    /// Idempotent; arming resets the current-parent to "no parent".
    pub(crate) fn trace_arm(&mut self) {
        match &mut self.births {
            Some(b) => {
                b.current = NO_PARENT_SEQ;
                b.log.clear();
            }
            None => {
                self.births = Some(Box::new(TraceBirths {
                    current: NO_PARENT_SEQ,
                    log: Vec::new(),
                }));
            }
        }
    }

    /// Disarm the provenance hook and drop its log.
    pub(crate) fn trace_disarm(&mut self) {
        self.births = None;
    }

    /// Set the parent attributed to events scheduled from now on — the
    /// engine calls this with the seq of each event it dispatches while
    /// tracing.
    pub(crate) fn trace_set_current(&mut self, seq: u64) {
        if let Some(b) = &mut self.births {
            b.current = seq;
        }
    }

    /// The pending birth log, for the engine to drain into the trace
    /// recorder. `None` when tracing is disarmed.
    pub(crate) fn trace_births_mut(&mut self) -> Option<&mut Vec<(u64, u64)>> {
        self.births.as_mut().map(|b| &mut b.log)
    }

    /// Internal op counters since construction.
    pub fn diag(&self) -> Diag {
        self.diag
    }

    /// Snapshot of tier occupancy and window geometry:
    /// `(width, horizon, span_last, near_len, rung_len, far_len)`.
    pub fn tier_state(&self) -> (u64, u64, u64, usize, usize, usize) {
        (
            self.width,
            self.horizon,
            self.span_last,
            self.near.len(),
            self.rungs.iter().map(Vec::len).sum(),
            self.far.len(),
        )
    }

    /// Per-rung occupancy of the calendar tier, lowest rung first —
    /// the per-rung view behind engine-profile depth samples (the
    /// summed total is in [`EventQueue::tier_state`]).
    pub fn rung_lens(&self) -> Vec<usize> {
        self.rungs.iter().map(Vec::len).collect()
    }

    /// Drop every pending event and reset the ladder geometry, keeping
    /// every allocation — the slab's packet slots, the near heap's
    /// buffer, the rung vectors and the far tier are all reused by the
    /// next simulation run. This is the scenario-reset fast path: a
    /// cleared queue schedules its first post-reset events without a
    /// single new allocation. Diagnostic counters are cumulative and
    /// survive the clear.
    pub fn clear(&mut self) {
        // `Vec::clear` keeps capacity; freed `Packet` slots are reused
        // across runs exactly like they are reused across hops.
        self.slots.clear();
        self.free_head = u32::MAX;
        self.near.clear();
        for rung in &mut self.rungs {
            rung.clear();
        }
        self.far.clear();
        self.horizon = 0;
        self.base = 0;
        self.cursor = N_BUCKETS;
        self.width = INITIAL_WIDTH;
        self.span_last = 0;
        self.len = 0;
        // Tracing (when armed) starts the next run with no provenance
        // carried over, exactly like a freshly armed queue — the hook
        // itself stays armed across `reset(seed)` replays.
        if let Some(b) = &mut self.births {
            b.current = NO_PARENT_SEQ;
            b.log.clear();
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule an event. `seq` values must be unique and increase with
    /// scheduling order (the engine's global counter guarantees both).
    pub fn push(&mut self, time: SimTime, seq: u64, target: usize, kind: EventKind) {
        // Hard assert (not debug): an index at or above TIMER_FLAG would
        // silently decode as a timer for the wrong node in release too.
        assert!(target < TIMER_FLAG as usize, "node index fits 31 bits");
        let meta = target as u32;
        let (meta, payload) = match kind {
            EventKind::Timer(tag) => (meta | TIMER_FLAG, tag),
            EventKind::Deliver(pkt) => (meta, self.alloc(pkt) as u64),
        };
        let key = Key {
            time: time.as_nanos(),
            seq,
            meta,
            payload,
        };
        if let Some(b) = &mut self.births {
            b.log.push((seq, b.current));
        }
        self.len += 1;
        if key.time <= self.horizon {
            // Active window: O(log B) push into the small L1 heap.
            self.diag.push_near += 1;
            self.near.push(key);
        } else if key.time <= self.span_last {
            // Calendar tier: O(1) indexed append. `time > horizon`
            // guarantees the rung is at or after the cursor. The `min`
            // only binds when the span saturated at `u64::MAX`.
            let idx = (((key.time - self.base) / self.width) as usize).min(N_BUCKETS - 1);
            debug_assert!(idx >= self.cursor);
            self.diag.push_rung += 1;
            self.rungs[idx].push(key);
        } else {
            // Beyond the ladder: O(1) append, rescanned at re-base.
            self.diag.push_far += 1;
            self.far.push(key);
        }
    }

    /// Key of the next event to fire, without removing it.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if self.near.is_empty() {
            self.refill();
        }
        self.near
            .peek()
            .map(|k| (SimTime::from_nanos(k.time), k.seq))
    }

    /// Remove and return the earliest event (ties broken by `seq`), but
    /// only if it fires at or before `until` — the engine's fused
    /// peek-and-pop for bounded runs (one window check instead of two).
    pub fn pop_at_or_before(&mut self, until: SimTime) -> Option<Event> {
        if self.near.is_empty() {
            self.refill();
        }
        if self.near.peek()?.time > until.as_nanos() {
            return None;
        }
        self.pop_unchecked()
    }

    /// Remove and return the earliest event (ties broken by `seq`).
    pub fn pop(&mut self) -> Option<Event> {
        if self.near.is_empty() {
            self.refill();
        }
        self.pop_unchecked()
    }

    #[inline]
    fn pop_unchecked(&mut self) -> Option<Event> {
        let key = self.near.pop()?;
        self.len -= 1;
        let kind = if key.is_timer() {
            EventKind::Timer(key.payload)
        } else {
            EventKind::Deliver(self.dealloc(key.payload as u32))
        };
        Some(Event {
            time: SimTime::from_nanos(key.time),
            seq: key.seq,
            target: key.target(),
            kind,
        })
    }

    /// Pop the next event only if it is a `Deliver` at exactly `time`
    /// targeting `target` — the engine's same-instant batching probe.
    /// Never refills: batching across a window boundary is legal but not
    /// worth the sweep.
    pub fn pop_deliver_if(&mut self, time: SimTime, target: usize) -> Option<Packet> {
        let key = *self.near.peek()?;
        if key.time != time.as_nanos() || key.is_timer() || key.target() != target {
            return None;
        }
        self.near.pop();
        self.len -= 1;
        Some(self.dealloc(key.payload as u32))
    }

    /// [`EventQueue::pop_deliver_if`], also returning the popped
    /// event's sequence number. The traced dispatch path's batching
    /// probe: the recorder needs each batched event's seq to retire its
    /// provenance entry. Kept separate so the hot untraced probe's
    /// signature (and codegen) is untouched.
    pub(crate) fn pop_deliver_if_keyed(
        &mut self,
        time: SimTime,
        target: usize,
    ) -> Option<(u64, Packet)> {
        let key = *self.near.peek()?;
        if key.time != time.as_nanos() || key.is_timer() || key.target() != target {
            return None;
        }
        self.near.pop();
        self.len -= 1;
        Some((key.seq, self.dealloc(key.payload as u32)))
    }

    fn alloc(&mut self, pkt: Packet) -> u32 {
        if self.free_head != u32::MAX {
            let idx = self.free_head;
            match std::mem::replace(&mut self.slots[idx as usize], Slot::Full(pkt)) {
                Slot::Free(next) => self.free_head = next,
                Slot::Full(_) => unreachable!("free list points at a full slot"),
            }
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab fits u32 indices");
            self.slots.push(Slot::Full(pkt));
            idx
        }
    }

    fn dealloc(&mut self, slot: u32) -> Packet {
        let taken = std::mem::replace(&mut self.slots[slot as usize], Slot::Free(self.free_head));
        self.free_head = slot;
        match taken {
            Slot::Full(pkt) => pkt,
            Slot::Free(_) => unreachable!("popped key points at a free slot"),
        }
    }

    /// Load the next non-empty rung into `near`, re-basing the ladder
    /// from `far` when the cycle is exhausted.
    fn refill(&mut self) {
        debug_assert!(self.near.is_empty());
        loop {
            while self.cursor < N_BUCKETS {
                let i = self.cursor;
                // The near window now covers this rung whether or not it
                // held events — later pushes inside it go to `near`.
                self.horizon = if i + 1 == N_BUCKETS {
                    self.span_last
                } else {
                    self.base
                        .saturating_add(self.width.saturating_mul(i as u64 + 1))
                        .saturating_sub(1)
                };
                if self.rungs[i].is_empty() {
                    self.cursor += 1;
                    continue;
                }
                // Reuse the near heap's buffer; O(B) heapify. A rung may
                // exceed TARGET_BATCH when events cluster at one instant
                // (no width can subdivide equal timestamps); the heap
                // absorbs that at O(log len) — still bounded by the rung's
                // time width, never the whole pending set.

                let mut buf = std::mem::take(&mut self.near).into_vec();
                buf.clear();
                buf.append(&mut self.rungs[i]);
                self.near = BinaryHeap::from(buf);
                self.cursor += 1;
                self.diag.refills += 1;
                return;
            }
            if self.far.is_empty() {
                return;
            }
            self.rebase();
        }
    }

    /// Start a new ladder cycle at the minimum pending `far` time.
    fn rebase(&mut self) {
        debug_assert!(self.cursor >= N_BUCKETS && self.near.is_empty());
        let (mut tmin, mut tmax) = (u64::MAX, 0u64);
        for k in &self.far {
            tmin = tmin.min(k.time);
            tmax = tmax.max(k.time);
        }
        // Width so a rung holds ~TARGET_BATCH events at the observed
        // density, assuming roughly even spread. Clustered regions make
        // individual rungs (and thus the near heap) larger; that costs
        // O(log cluster), never a global re-sort.
        self.width = if tmax > tmin {
            ((tmax - tmin) / (self.far.len() as u64 / TARGET_BATCH as u64 + 1)).max(1)
        } else {
            1
        };
        self.base = tmin;
        self.span_last = tmin
            .saturating_add(self.width.saturating_mul(N_BUCKETS as u64))
            .saturating_sub(1);
        self.cursor = 0;
        // `horizon` stays behind `base` until the first rung is loaded.
        self.horizon = tmin.saturating_sub(1);

        let mut moved = 0usize;
        let mut i = 0;
        while i < self.far.len() {
            let t = self.far[i].time;
            if t <= self.span_last {
                let idx = (((t - self.base) / self.width) as usize).min(N_BUCKETS - 1);
                self.rungs[idx].push(self.far.swap_remove(i));
                moved += 1;
            } else {
                i += 1;
            }
        }
        debug_assert!(moved > 0, "tmin is inside the rung span by construction");
        self.diag.rebases += 1;
        self.diag.rebase_scanned += (self.far.len() + moved) as u64;
        self.diag.rebase_moved += moved as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketKind};

    fn timer_at(q: &mut EventQueue, t: u64, seq: u64, target: usize, tag: u64) {
        q.push(SimTime::from_nanos(t), seq, target, EventKind::Timer(tag));
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        timer_at(&mut q, 500, 0, 0, 10);
        timer_at(&mut q, 500, 1, 0, 11);
        timer_at(&mut q, 100, 2, 0, 12);
        timer_at(&mut q, 500, 3, 0, 13);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![2, 0, 1, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        timer_at(&mut q, 10, 0, 0, 0);
        timer_at(&mut q, 30, 1, 0, 0);
        assert_eq!(q.pop().unwrap().time.as_nanos(), 10);
        // Push into the active window after a refill happened.
        timer_at(&mut q, 20, 2, 0, 0);
        assert_eq!(q.pop().unwrap().time.as_nanos(), 20);
        assert_eq!(q.pop().unwrap().time.as_nanos(), 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn slab_reuses_slots() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            timer_at(&mut q, round, round, 0, 0);
            assert_eq!(q.pop().unwrap().seq, round);
        }
        // One live event at a time → the arena never grew past the first
        // few slots.
        assert!(q.slots.len() <= 2, "slab grew to {}", q.slots.len());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        timer_at(&mut q, 42, 7, 3, 0);
        timer_at(&mut q, 41, 8, 3, 0);
        let (t, seq) = q.peek_key().unwrap();
        let e = q.pop().unwrap();
        assert_eq!((t, seq), (e.time, e.seq));
        assert_eq!(e.time.as_nanos(), 41);
    }

    #[test]
    fn deliver_batch_probe_matches_only_same_time_and_target() {
        let mut q = EventQueue::new();
        let pkt = |id| Packet::new(id, FlowId::PADDED, PacketKind::Dummy, 1, SimTime::ZERO);
        q.push(SimTime::from_nanos(5), 0, 1, EventKind::Deliver(pkt(0)));
        q.push(SimTime::from_nanos(5), 1, 1, EventKind::Deliver(pkt(1)));
        q.push(SimTime::from_nanos(5), 2, 2, EventKind::Deliver(pkt(2)));
        q.push(SimTime::from_nanos(5), 3, 1, EventKind::Timer(0));

        let first = q.pop().unwrap();
        assert!(matches!(first.kind, EventKind::Deliver(p) if p.id == 0));
        // Same time + target + kind → batched.
        assert_eq!(q.pop_deliver_if(first.time, 1).unwrap().id, 1);
        // Next is a Deliver for a *different* target.
        assert!(q.pop_deliver_if(first.time, 1).is_none());
        assert_eq!(q.pop().unwrap().target, 2);
        // Then a Timer for target 1 — not batchable.
        assert!(q.pop_deliver_if(first.time, 1).is_none());
        assert!(matches!(q.pop().unwrap().kind, EventKind::Timer(0)));
    }

    #[test]
    fn clear_reuses_allocations_and_restores_order() {
        let mut q = EventQueue::new();
        let pkt = |id| Packet::new(id, FlowId::PADDED, PacketKind::Dummy, 1, SimTime::ZERO);
        // Populate every tier: near (after a pop), rungs, far.
        for seq in 0..4096u64 {
            let t = seq * 777_777; // spans several ladder windows
            if seq.is_multiple_of(3) {
                q.push(SimTime::from_nanos(t), seq, 0, EventKind::Deliver(pkt(seq)));
            } else {
                timer_at(&mut q, t, seq, 0, 0);
            }
        }
        q.pop().unwrap();
        let slab_cap = q.slots.capacity();
        let far_cap = q.far.capacity();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert_eq!(q.slots.capacity(), slab_cap, "slab allocation retained");
        assert_eq!(q.far.capacity(), far_cap, "far allocation retained");
        // A cleared queue must order a fresh schedule exactly like a new
        // one — including times earlier than anything the first run saw.
        timer_at(&mut q, 500, 0, 0, 10);
        q.push(SimTime::from_nanos(100), 1, 0, EventKind::Deliver(pkt(99)));
        timer_at(&mut q, 500, 2, 0, 11);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![1, 0, 2]);
        assert!(q.slots.len() <= slab_cap, "packet slots reused, not grown");
    }

    #[test]
    fn birth_log_records_provenance_and_survives_clear_armed() {
        let mut q = EventQueue::new();
        // Disarmed: no log at all.
        timer_at(&mut q, 10, 0, 0, 0);
        assert!(q.trace_births_mut().is_none());
        q.trace_arm();
        timer_at(&mut q, 20, 1, 0, 0); // scheduled outside any dispatch
        q.trace_set_current(1);
        timer_at(&mut q, 30, 2, 0, 0); // scheduled "by" event 1
        assert_eq!(
            q.trace_births_mut().unwrap().as_slice(),
            &[(1, NO_PARENT_SEQ), (2, 1)]
        );
        q.trace_births_mut().unwrap().clear();
        // clear() keeps the hook armed but zeroes its state.
        q.trace_set_current(2);
        timer_at(&mut q, 40, 3, 0, 0);
        q.clear();
        assert!(q.trace_births_mut().unwrap().is_empty());
        timer_at(&mut q, 5, 0, 0, 0);
        assert_eq!(
            q.trace_births_mut().unwrap().as_slice(),
            &[(0, NO_PARENT_SEQ)],
            "post-clear parent is back to the root sentinel"
        );
        q.trace_disarm();
        timer_at(&mut q, 6, 1, 0, 0);
        assert!(q.trace_births_mut().is_none());
    }

    #[test]
    fn wide_time_spread_still_orders() {
        // Times spanning ns to hours stress the adaptive width and
        // multiple re-base cycles.
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..2000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) % 3_600_000_000_000)
            .collect();
        for (seq, &t) in times.iter().enumerate() {
            timer_at(&mut q, t, seq as u64, 0, 0);
        }
        let mut sorted: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &t)| (t, s as u64))
            .collect();
        sorted.sort();
        let popped: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.as_nanos(), e.seq))
            .collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn pushes_into_rungs_and_far_during_drain_stay_ordered() {
        // Steady-state shape: while draining, re-arm events one period
        // ahead (hits near, rung, and far tiers depending on phase).
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        for i in 0..256u64 {
            timer_at(&mut q, 1_000 + i * 977, seq, 0, 0);
            seq += 1;
        }
        let mut last = (0u64, 0u64);
        let mut popped = 0usize;
        let total = 4096;
        while popped < total {
            let e = q.pop().unwrap();
            let key = (e.time.as_nanos(), e.seq);
            assert!(key > last, "out of order: {key:?} after {last:?}");
            last = key;
            popped += 1;
            if popped + q.len() < total {
                // Re-arm far ahead, stressing tier routing.
                timer_at(
                    &mut q,
                    e.time.as_nanos() + 1 + (e.seq % 3) * 500_000,
                    seq,
                    0,
                    0,
                );
                seq += 1;
            }
        }
    }
}
