//! Packet-trace recording and replay.
//!
//! The paper's payload classes are synthetic CBR rates, but a downstream
//! user of a padding system wants to evaluate *their* traffic. A
//! [`TraceRecorder`] captures `(timestamp, size)` pairs for a flow; a
//! [`TraceSource`] replays a recorded (or externally produced) trace into
//! any topology, so real captures can drive the payload side of every
//! experiment in this workspace.

use crate::engine::Context;
use crate::node::{Node, NodeId};
use crate::packet::{FlowId, Packet, PacketKind};
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// One recorded packet: arrival offset from trace start, and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Offset from the first packet (the first entry is always 0).
    pub offset: SimDuration,
    /// Packet size in bytes.
    pub size_bytes: u32,
}

/// An ordered packet trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketTrace {
    entries: Vec<TraceEntry>,
}

impl PacketTrace {
    /// Build from raw `(offset, size)` pairs; offsets must be
    /// non-decreasing (returns `None` otherwise).
    pub fn from_entries(entries: Vec<TraceEntry>) -> Option<Self> {
        if entries.windows(2).any(|w| w[1].offset < w[0].offset) {
            return None;
        }
        Some(Self { entries })
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Total span from first to last packet.
    pub fn span(&self) -> SimDuration {
        match (self.entries.first(), self.entries.last()) {
            (Some(first), Some(last)) => {
                SimDuration::from_nanos(last.offset.as_nanos() - first.offset.as_nanos())
            }
            _ => SimDuration::ZERO,
        }
    }

    /// Mean packet rate over the span (packets/second); `None` for traces
    /// shorter than 2 packets.
    pub fn mean_rate(&self) -> Option<f64> {
        if self.entries.len() < 2 {
            return None;
        }
        let span = self.span().as_secs_f64();
        (span > 0.0).then(|| (self.entries.len() - 1) as f64 / span)
    }
}

/// A node that records the arrival trace of one flow.
#[derive(Debug)]
pub struct TraceRecorder {
    flow: FlowId,
    next: Option<NodeId>,
    state: Rc<RefCell<Vec<(SimTime, u32)>>>,
}

/// Read handle for a [`TraceRecorder`].
#[derive(Debug, Clone)]
pub struct TraceHandle {
    state: Rc<RefCell<Vec<(SimTime, u32)>>>,
}

impl TraceHandle {
    /// Convert what was captured into a replayable [`PacketTrace`]
    /// (offsets are re-based to the first packet).
    pub fn to_trace(&self) -> PacketTrace {
        let raw = self.state.borrow();
        let Some(&(t0, _)) = raw.first() else {
            return PacketTrace::default();
        };
        PacketTrace {
            entries: raw
                .iter()
                .map(|&(t, size)| TraceEntry {
                    offset: t.saturating_since(t0),
                    size_bytes: size,
                })
                .collect(),
        }
    }

    /// Packets captured so far.
    pub fn count(&self) -> usize {
        self.state.borrow().len()
    }

    /// Pre-reserve capture capacity for an expected number of packets.
    pub fn reserve(&self, additional: usize) {
        self.state.borrow_mut().reserve(additional);
    }
}

impl TraceRecorder {
    /// Record flow `flow`, forwarding packets to `next` (if any).
    pub fn new(flow: FlowId, next: Option<NodeId>) -> (TraceHandle, Self) {
        let state = Rc::new(RefCell::new(Vec::new()));
        (
            TraceHandle {
                state: Rc::clone(&state),
            },
            Self { flow, next, state },
        )
    }
}

impl Node for TraceRecorder {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if packet.flow == self.flow {
            self.state.borrow_mut().push((ctx.now(), packet.size_bytes));
        }
        if let Some(next) = self.next {
            ctx.send_now(next, packet);
        }
    }

    fn reset(&mut self) {
        self.state.borrow_mut().clear();
    }

    fn label(&self) -> &str {
        "trace-recorder"
    }
}

/// A node that replays a [`PacketTrace`] toward a destination.
pub struct TraceSource {
    dst: NodeId,
    flow: FlowId,
    kind: PacketKind,
    trace: PacketTrace,
    cursor: usize,
    /// Replay repeatedly (the trace restarts after its last packet plus
    /// one mean gap).
    looped: bool,
}

impl TraceSource {
    /// Replay `trace` once.
    pub fn new(dst: NodeId, flow: FlowId, kind: PacketKind, trace: PacketTrace) -> Self {
        Self {
            dst,
            flow,
            kind,
            trace,
            cursor: 0,
            looped: false,
        }
    }

    /// Replay the trace in a loop (for long experiments).
    pub fn looped(mut self) -> Self {
        self.looped = true;
        self
    }

    fn gap_to(&self, index: usize) -> SimDuration {
        let entries = self.trace.entries();
        if index == 0 {
            entries[0].offset
        } else {
            SimDuration::from_nanos(
                entries[index].offset.as_nanos() - entries[index - 1].offset.as_nanos(),
            )
        }
    }

    fn mean_gap(&self) -> SimDuration {
        match self.trace.mean_rate() {
            Some(rate) if rate > 0.0 => SimDuration::from_secs_f64(1.0 / rate),
            _ => SimDuration::from_secs_f64(1.0),
        }
    }
}

impl Node for TraceSource {
    fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if !self.trace.is_empty() {
            ctx.schedule_timer(self.gap_to(0), 0);
        }
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_>) {
        let entry = self.trace.entries()[self.cursor];
        let pkt = ctx.spawn_packet(self.flow, self.kind, entry.size_bytes.max(1));
        ctx.send_now(self.dst, pkt);
        self.cursor += 1;
        if self.cursor < self.trace.len() {
            ctx.schedule_timer(self.gap_to(self.cursor), 0);
        } else if self.looped && !self.trace.is_empty() {
            self.cursor = 0;
            ctx.schedule_timer(self.mean_gap(), 0);
        }
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }

    fn label(&self) -> &str {
        "trace-source"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::sink::Sink;
    use linkpad_stats::rng::MasterSeed;

    fn trace_of(gaps_ms: &[u64], size: u32) -> PacketTrace {
        let mut offset = 0u64;
        let mut entries = Vec::new();
        for &g in gaps_ms {
            offset += g * 1_000_000;
            entries.push(TraceEntry {
                offset: SimDuration::from_nanos(offset),
                size_bytes: size,
            });
        }
        PacketTrace::from_entries(entries).unwrap()
    }

    #[test]
    fn trace_validation_and_accessors() {
        let t = trace_of(&[0, 10, 10, 30], 500);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.span().as_nanos(), 50_000_000);
        assert!((t.mean_rate().unwrap() - 60.0).abs() < 1e-9);
        // Non-monotone offsets are rejected.
        let bad = vec![
            TraceEntry {
                offset: SimDuration::from_nanos(5),
                size_bytes: 1,
            },
            TraceEntry {
                offset: SimDuration::from_nanos(3),
                size_bytes: 1,
            },
        ];
        assert!(PacketTrace::from_entries(bad).is_none());
        assert!(PacketTrace::default().mean_rate().is_none());
    }

    #[test]
    fn replay_reproduces_the_recorded_timing() {
        // Record a trace from a replay of a hand-built trace: timestamps
        // must match exactly (determinism end to end). `to_trace`
        // re-bases offsets to the first packet, so the original must
        // start at offset 0 for bit-exact equality.
        let original = trace_of(&[0, 10, 10, 5, 20], 640);
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (_sink_handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let (rec_handle, rec) = TraceRecorder::new(FlowId::PADDED, Some(sink_id));
        let rec_id = b.add_node(Box::new(rec));
        b.add_node(Box::new(TraceSource::new(
            rec_id,
            FlowId::PADDED,
            PacketKind::Payload,
            original.clone(),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        let replayed = rec_handle.to_trace();
        assert_eq!(replayed, original);
    }

    #[test]
    fn looped_replay_keeps_emitting() {
        let t = trace_of(&[1, 1, 1], 100);
        let mut b = SimBuilder::new(MasterSeed::new(2));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        b.add_node(Box::new(
            TraceSource::new(sink_id, FlowId::PADDED, PacketKind::Payload, t).looped(),
        ));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(0.1));
        assert!(
            handle.count() > 20,
            "looped trace stalled: {}",
            handle.count()
        );
    }

    #[test]
    fn recorder_filters_by_flow() {
        let mut b = SimBuilder::new(MasterSeed::new(3));
        let (rec_handle, rec) = TraceRecorder::new(FlowId::CROSS, None);
        let rec_id = b.add_node(Box::new(rec));
        b.add_node(Box::new(TraceSource::new(
            rec_id,
            FlowId::PADDED, // wrong flow
            PacketKind::Payload,
            trace_of(&[1, 1], 64),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(rec_handle.count(), 0);
    }

    #[test]
    fn empty_trace_is_inert() {
        let mut b = SimBuilder::new(MasterSeed::new(4));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        b.add_node(Box::new(TraceSource::new(
            sink_id,
            FlowId::PADDED,
            PacketKind::Payload,
            PacketTrace::default(),
        )));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(handle.count(), 0);
    }
}
