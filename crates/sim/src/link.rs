//! Point-to-point link: serialization (finite bandwidth) + propagation.
//!
//! A link transmits packets one at a time. A packet arriving while the
//! link is busy waits for the wire (pure FIFO, infinite buffer — bounded
//! buffering belongs to [`crate::router::Router`]). The receiver sees the
//! packet after `serialization + propagation`.

use crate::engine::Context;
use crate::node::{Node, NodeId};
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// A unidirectional link.
#[derive(Debug)]
pub struct Link {
    next: NodeId,
    bits_per_sec: f64,
    propagation: SimDuration,
    /// When the transmitter becomes free.
    busy_until: SimTime,
    /// Cumulative bytes accepted (for utilization accounting).
    bytes_carried: u64,
    label: String,
}

impl Link {
    /// A link to `next` with the given capacity and propagation delay.
    ///
    /// # Panics
    /// Panics if `bits_per_sec` is not strictly positive and finite — a
    /// topology constant, so misconfiguration should fail at build time.
    pub fn new(next: NodeId, bits_per_sec: f64, propagation: SimDuration) -> Self {
        assert!(
            bits_per_sec.is_finite() && bits_per_sec > 0.0,
            "link bandwidth must be positive, got {bits_per_sec}"
        );
        Self {
            next,
            bits_per_sec,
            propagation,
            busy_until: SimTime::ZERO,
            bytes_carried: 0,
            label: "link".to_string(),
        }
    }

    /// Builder-style label for diagnostics.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Bytes accepted so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Link capacity in bits per second.
    pub fn bits_per_sec(&self) -> f64 {
        self.bits_per_sec
    }
}

impl Node for Link {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let start = self.busy_until.max(ctx.now());
        let tx = SimDuration::from_secs_f64(packet.tx_time_secs(self.bits_per_sec));
        let done = start + tx;
        self.busy_until = done;
        self.bytes_carried += packet.size_bytes as u64;
        let deliver_at = done + self.propagation;
        let delay = deliver_at.saturating_since(ctx.now());
        ctx.send_after(delay, self.next, packet);
    }

    fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.bytes_carried = 0;
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::packet::{FlowId, PacketKind};
    use crate::sink::Sink;
    use crate::time::SimTime;
    use linkpad_stats::rng::MasterSeed;

    /// Pushes `n` packets into the link back-to-back at t = 0.
    struct Blaster {
        link: NodeId,
        n: usize,
        size: u32,
    }
    impl Node for Blaster {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.n {
                let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Payload, self.size);
                ctx.send_now(self.link, pkt);
            }
        }
    }

    #[test]
    fn serialization_spaces_back_to_back_packets() {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        // 100 Mb/s, zero propagation: 500 B → 40 µs each.
        let link = b.add_node(Box::new(Link::new(sink_id, 100e6, SimDuration::ZERO)));
        b.add_node(Box::new(Blaster {
            link,
            n: 3,
            size: 500,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        let arrivals = handle.arrival_times();
        assert_eq!(arrivals.len(), 3);
        let ns: Vec<u64> = arrivals.iter().map(|t| t.as_nanos()).collect();
        assert_eq!(ns, vec![40_000, 80_000, 120_000]);
    }

    #[test]
    fn propagation_adds_constant_delay() {
        let mut b = SimBuilder::new(MasterSeed::new(2));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let prop = SimDuration::from_millis_f64(5.0);
        let link = b.add_node(Box::new(Link::new(sink_id, 100e6, prop)));
        b.add_node(Box::new(Blaster {
            link,
            n: 1,
            size: 1000,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        let arrivals = handle.arrival_times();
        // 80 µs serialization + 5 ms propagation
        assert_eq!(arrivals[0].as_nanos(), 80_000 + 5_000_000);
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut b = SimBuilder::new(MasterSeed::new(3));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let link_id = b.add_node(Box::new(Link::new(sink_id, 1e9, SimDuration::ZERO)));

        /// Sends one packet at t=1ms and another at t=2ms (link idle between).
        struct Spaced {
            link: NodeId,
            sent: u32,
        }
        impl Node for Spaced {
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.schedule_timer(SimDuration::from_millis_f64(1.0), 0);
            }
            fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_>) {
                let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Payload, 125);
                ctx.send_now(self.link, pkt);
                self.sent += 1;
                if self.sent < 2 {
                    ctx.schedule_timer(SimDuration::from_millis_f64(1.0), 0);
                }
            }
        }
        b.add_node(Box::new(Spaced {
            link: link_id,
            sent: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        let ns: Vec<u64> = handle
            .arrival_times()
            .iter()
            .map(|t| t.as_nanos())
            .collect();
        // 125 B at 1 Gb/s = 1 µs serialization.
        assert_eq!(ns, vec![1_001_000, 2_001_000]);
    }

    #[test]
    fn bytes_carried_accumulates() {
        let mut link = Link::new(NodeId(0), 1e6, SimDuration::ZERO).with_label("l0");
        assert_eq!(link.bytes_carried(), 0);
        assert_eq!(link.label(), "l0");
        assert_eq!(link.bits_per_sec(), 1e6);
        // Drive it through a sim to exercise on_packet.
        let mut b = SimBuilder::new(MasterSeed::new(4));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        link.next = sink_id; // retarget to the actual sink
        let link_id = b.add_node(Box::new(link));
        b.add_node(Box::new(Blaster {
            link: link_id,
            n: 4,
            size: 250,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(handle.count(), 4);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_is_a_build_error() {
        let _ = Link::new(NodeId(0), 0.0, SimDuration::ZERO);
    }
}
