//! FIFO output-queued router.
//!
//! The router is the physical origin of the paper's `δ_net` disturbance
//! (eq. 10): the padded flow shares the router's egress link with cross
//! traffic, so padded packets are delayed by the *residual service time
//! and queue backlog* left by cross-traffic packets. As the shared-link
//! utilization grows, the variance of that delay grows, `r → 1`, and the
//! detection rate falls — the mechanism behind Fig. 6 and Fig. 8.
//!
//! Model: single egress with service rate `bits_per_sec`; all arrivals
//! (any input) join one FIFO queue; optional finite buffer with
//! tail-drop; fixed egress propagation delay.

use crate::engine::Context;
use crate::node::{Node, NodeId};
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use linkpad_stats::moments::RunningMoments;
use std::collections::VecDeque;

/// Timer tag used for service completions.
const SERVICE_DONE: u64 = 0;

/// A store-and-forward router with one egress.
#[derive(Debug)]
pub struct Router {
    next: NodeId,
    bits_per_sec: f64,
    propagation: SimDuration,
    /// `None` = infinite buffer.
    buffer_packets: Option<usize>,
    queue: VecDeque<(Packet, SimTime)>,
    /// Packet currently in service, if any.
    in_service: Option<(Packet, SimTime)>,
    drops: u64,
    forwarded: u64,
    /// Queue+service delay moments for the padded flow (diagnostics: this
    /// is a direct empirical view of δ_net at this hop).
    padded_delay: RunningMoments,
    label: String,
}

impl Router {
    /// A router forwarding to `next` over an egress of `bits_per_sec`,
    /// with the given propagation delay to the next hop.
    ///
    /// # Panics
    /// Panics on a non-positive bandwidth (topology constant).
    pub fn new(next: NodeId, bits_per_sec: f64, propagation: SimDuration) -> Self {
        assert!(
            bits_per_sec.is_finite() && bits_per_sec > 0.0,
            "router bandwidth must be positive, got {bits_per_sec}"
        );
        Self {
            next,
            bits_per_sec,
            propagation,
            buffer_packets: None,
            queue: VecDeque::new(),
            in_service: None,
            drops: 0,
            forwarded: 0,
            padded_delay: RunningMoments::new(),
            label: "router".to_string(),
        }
    }

    /// Bound the queue (packets waiting, excluding the one in service);
    /// arrivals beyond the bound are tail-dropped.
    pub fn with_buffer_packets(mut self, capacity: usize) -> Self {
        self.buffer_packets = Some(capacity);
        self
    }

    /// Builder-style label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Packets tail-dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Packets fully forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Current backlog (waiting packets, excluding in-service).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Moments of the queue+service delay experienced by padded-flow
    /// packets at this router (an empirical view of this hop's δ_net).
    pub fn padded_delay_moments(&self) -> RunningMoments {
        self.padded_delay
    }

    fn start_service(&mut self, packet: Packet, arrived: SimTime, ctx: &mut Context<'_>) {
        let tx = SimDuration::from_secs_f64(packet.tx_time_secs(self.bits_per_sec));
        self.in_service = Some((packet, arrived));
        ctx.schedule_timer(tx, SERVICE_DONE);
    }
}

impl Node for Router {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if self.in_service.is_none() {
            self.start_service(packet, ctx.now(), ctx);
        } else if self.buffer_packets.is_none_or(|cap| self.queue.len() < cap) {
            self.queue.push_back((packet, ctx.now()));
        } else {
            self.drops += 1;
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_>) {
        debug_assert_eq!(tag, SERVICE_DONE);
        let (packet, arrived) = self
            .in_service
            .take()
            .expect("service completion without a packet in service");
        if packet.is_padded_flow() {
            let delay = ctx.now().saturating_since(arrived);
            self.padded_delay.push(delay.as_secs_f64());
        }
        self.forwarded += 1;
        ctx.send_after(self.propagation, self.next, packet);
        if let Some((next_pkt, next_arrived)) = self.queue.pop_front() {
            self.start_service(next_pkt, next_arrived, ctx);
        }
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.in_service = None;
        self.drops = 0;
        self.forwarded = 0;
        self.padded_delay = RunningMoments::new();
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimBuilder;
    use crate::packet::{FlowId, PacketKind};
    use crate::sink::Sink;
    use linkpad_stats::rng::MasterSeed;

    /// Pushes `n` packets into `dst` back-to-back at t = 0.
    struct Blaster {
        dst: NodeId,
        n: usize,
        size: u32,
    }
    impl Node for Blaster {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.n {
                let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Payload, self.size);
                ctx.send_now(self.dst, pkt);
            }
        }
    }

    #[test]
    fn fifo_service_spaces_departures() {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        // 100 Mb/s: 500 B → 40 µs service.
        let r = b.add_node(Box::new(Router::new(sink_id, 100e6, SimDuration::ZERO)));
        b.add_node(Box::new(Blaster {
            dst: r,
            n: 3,
            size: 500,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        let ns: Vec<u64> = handle
            .arrival_times()
            .iter()
            .map(|t| t.as_nanos())
            .collect();
        assert_eq!(ns, vec![40_000, 80_000, 120_000]);
    }

    #[test]
    fn finite_buffer_tail_drops() {
        let mut b = SimBuilder::new(MasterSeed::new(2));
        let (handle, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let router = Router::new(sink_id, 100e6, SimDuration::ZERO).with_buffer_packets(2);
        let r = b.add_node(Box::new(router));
        b.add_node(Box::new(Blaster {
            dst: r,
            n: 10,
            size: 500,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        // 1 in service + 2 buffered survive; 7 dropped.
        assert_eq!(handle.count(), 3);
    }

    #[test]
    fn drop_counter_matches() {
        let mut b = SimBuilder::new(MasterSeed::new(3));
        let (_, sink) = Sink::new();
        let sink_id = b.add_node(Box::new(sink));
        let router_id = b.reserve();
        b.install(
            router_id,
            Box::new(Router::new(sink_id, 100e6, SimDuration::ZERO).with_buffer_packets(0)),
        );
        b.add_node(Box::new(Blaster {
            dst: router_id,
            n: 5,
            size: 500,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_secs_f64(1.0));
        // Can't reach into the sim to read drops (nodes are owned by the
        // engine); assert observable behaviour instead: only the packet
        // that found the server idle survives. Covered further by the
        // sink-side count in `finite_buffer_tail_drops`.
        assert!(sim.events_processed() > 0);
    }

    #[test]
    fn padded_delay_moments_capture_queueing() {
        // Two packets arrive together: the second waits one service time.
        let mut router = Router::new(NodeId(0), 100e6, SimDuration::ZERO);
        assert_eq!(router.backlog(), 0);
        assert_eq!(router.drops(), 0);
        assert_eq!(router.forwarded(), 0);
        assert_eq!(router.padded_delay_moments().count(), 0);
        assert_eq!(router.label(), "router");
        router = router.with_label("esr-5000");
        assert_eq!(router.label(), "esr-5000");
    }

    #[test]
    fn cross_traffic_perturbs_padded_flow_timing() {
        // A padded CBR flow shares the router with a bursty cross flow;
        // padded inter-arrival variance at the sink must exceed the
        // no-cross-traffic case. This is δ_net in miniature.
        fn piat_variance(with_cross: bool) -> f64 {
            let mut b = SimBuilder::new(MasterSeed::new(42));
            let (handle, sink) = Sink::new();
            let sink_id = b.add_node(Box::new(sink));
            let r = b.add_node(Box::new(Router::new(sink_id, 10e6, SimDuration::ZERO)));

            /// CBR source, 1 kHz, 500 B, padded flow.
            struct Cbr {
                dst: NodeId,
            }
            impl Node for Cbr {
                fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
                fn on_start(&mut self, ctx: &mut Context<'_>) {
                    ctx.schedule_timer(SimDuration::from_millis_f64(1.0), 0);
                }
                fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
                    let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 500);
                    ctx.send_now(self.dst, pkt);
                    ctx.schedule_timer(SimDuration::from_millis_f64(1.0), 0);
                }
            }
            /// Poisson-ish cross source using the node RNG.
            struct Cross {
                dst: NodeId,
            }
            impl Node for Cross {
                fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
                fn on_start(&mut self, ctx: &mut Context<'_>) {
                    ctx.schedule_timer(SimDuration::from_micros_f64(700.0), 0);
                }
                fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
                    let pkt = ctx.spawn_packet(FlowId::CROSS, PacketKind::Cross, 1500);
                    ctx.send_now(self.dst, pkt);
                    let u = ctx.rng.next_f64();
                    let gap = -700.0 * (1.0 - u).ln();
                    ctx.schedule_timer(SimDuration::from_micros_f64(gap.max(1.0)), 0);
                }
            }
            b.add_node(Box::new(Cbr { dst: r }));
            if with_cross {
                b.add_node(Box::new(Cross { dst: r }));
            }
            let mut sim = b.build().unwrap();
            sim.run_until(SimTime::from_secs_f64(20.0));
            let times = handle.arrival_times_for_flow(FlowId::PADDED);
            let piats: Vec<f64> = times
                .windows(2)
                .map(|w| (w[1].saturating_since(w[0])).as_secs_f64())
                .collect();
            linkpad_stats::moments::sample_variance(&piats).unwrap()
        }
        let quiet = piat_variance(false);
        let noisy = piat_variance(true);
        assert!(
            noisy > quiet * 10.0,
            "cross traffic must inflate PIAT variance: quiet={quiet:e}, noisy={noisy:e}"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn bad_bandwidth_panics() {
        let _ = Router::new(NodeId(0), -1.0, SimDuration::ZERO);
    }
}
