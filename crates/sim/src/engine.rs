//! The discrete-event engine: event heap, dispatch loop, and the
//! [`Context`] handed to nodes.
//!
//! Events are processed in `(timestamp, sequence)` order; the sequence
//! number is a global monotone counter, so simultaneous events fire in
//! the order they were scheduled (FIFO tie-breaking). That rule is what
//! makes simulations bit-for-bit deterministic.

use crate::node::{Node, NodeId};
use crate::packet::{FlowId, Packet, PacketKind};
use crate::time::{SimDuration, SimTime};
use linkpad_stats::rng::{MasterSeed, Xoshiro256StarStar};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What an event does when it fires.
#[derive(Debug)]
enum EventKind {
    /// Deliver a packet to the target node.
    Deliver(Packet),
    /// Fire a timer on the target node with the given tag.
    Timer(u64),
}

#[derive(Debug)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    target: usize,
    kind: EventKind,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first.
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

/// Error from [`SimBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A reserved node slot was never installed.
    MissingNode(usize),
    /// The simulation has no nodes at all.
    Empty,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::MissingNode(i) => write!(f, "reserved node slot {i} was never installed"),
            BuildError::Empty => write!(f, "simulation has no nodes"),
        }
    }
}
impl std::error::Error for BuildError {}

/// Builds a [`Sim`]: allocate node ids, wire nodes together, build.
///
/// Two construction styles are supported:
/// * downstream-first: `let sink = b.add_node(...); let link = b.add_node(Link::to(sink, ...));`
/// * reserve-then-install, for wiring cycles or forward references:
///   `let id = b.reserve(); ...; b.install(id, node);`
pub struct SimBuilder {
    seed: MasterSeed,
    nodes: Vec<Option<Box<dyn Node>>>,
}

impl SimBuilder {
    /// Start building with the master seed that will drive every RNG
    /// stream in the simulation.
    pub fn new(seed: MasterSeed) -> Self {
        Self {
            seed,
            nodes: Vec::new(),
        }
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(Some(node));
        NodeId(self.nodes.len() - 1)
    }

    /// Reserve an id to be installed later (forward wiring).
    pub fn reserve(&mut self) -> NodeId {
        self.nodes.push(None);
        NodeId(self.nodes.len() - 1)
    }

    /// Install a node into a reserved slot.
    ///
    /// # Panics
    /// Panics if the slot is already occupied (a wiring bug worth failing
    /// loudly on at build time).
    pub fn install(&mut self, id: NodeId, node: Box<dyn Node>) {
        let slot = &mut self.nodes[id.0];
        assert!(slot.is_none(), "node slot {} installed twice", id.0);
        *slot = Some(node);
    }

    /// Finish building. Every node receives an independent RNG substream
    /// derived from `(seed, node index)`.
    pub fn build(self) -> Result<Sim, BuildError> {
        if self.nodes.is_empty() {
            return Err(BuildError::Empty);
        }
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for (i, slot) in self.nodes.into_iter().enumerate() {
            match slot {
                Some(n) => nodes.push(n),
                None => return Err(BuildError::MissingNode(i)),
            }
        }
        let rngs = (0..nodes.len())
            .map(|i| self.seed.stream(i as u64))
            .collect();
        Ok(Sim {
            nodes,
            rngs,
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            next_packet_id: 0,
            started: false,
            events_processed: 0,
        })
    }
}

/// Statistics from a run segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Events dispatched during the segment.
    pub events: u64,
    /// Simulation clock at the end of the segment.
    pub ended_at_nanos: u64,
}

/// A single discrete-event simulation instance.
pub struct Sim {
    nodes: Vec<Box<dyn Node>>,
    rngs: Vec<Xoshiro256StarStar>,
    heap: BinaryHeap<HeapEntry>,
    now: SimTime,
    seq: u64,
    next_packet_id: u64,
    started: bool,
    events_processed: u64,
}

impl Sim {
    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Run until the clock reaches `until` (events at exactly `until` are
    /// processed) or the event heap drains, whichever comes first.
    pub fn run_until(&mut self, until: SimTime) -> RunStats {
        self.ensure_started();
        let mut events = 0u64;
        while let Some(entry) = self.heap.peek() {
            if entry.time > until {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            self.now = entry.time;
            self.dispatch(entry);
            events += 1;
        }
        // Advance the clock to the bound even if the heap drained early,
        // so consecutive run_until calls observe monotone time.
        if self.now < until && until != SimTime::MAX {
            self.now = until;
        }
        self.events_processed += events;
        RunStats {
            events,
            ended_at_nanos: self.now.as_nanos(),
        }
    }

    /// Run for a span from the current clock.
    pub fn run_for(&mut self, span: SimDuration) -> RunStats {
        let until = self.now + span;
        self.run_until(until)
    }

    /// Process a single event. Returns `false` when the heap is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        match self.heap.pop() {
            Some(entry) => {
                self.now = entry.time;
                self.dispatch(entry);
                self.events_processed += 1;
                true
            }
            None => false,
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let (node, mut ctx) = self.split_at(i);
            node.on_start(&mut ctx);
        }
    }

    fn dispatch(&mut self, entry: HeapEntry) {
        let target = entry.target;
        debug_assert!(target < self.nodes.len(), "event for unknown node");
        let (node, mut ctx) = self.split_at(target);
        match entry.kind {
            EventKind::Deliver(pkt) => node.on_packet(pkt, &mut ctx),
            EventKind::Timer(tag) => node.on_timer(tag, &mut ctx),
        }
    }

    /// Split borrows: the node being dispatched and a context over the
    /// rest of the engine state (heap, clock, counters, that node's RNG).
    fn split_at(&mut self, index: usize) -> (&mut Box<dyn Node>, Context<'_>) {
        // `nodes` and the remaining fields are disjoint; indexing keeps
        // the borrow to one element while Context borrows the others.
        let Sim {
            nodes,
            rngs,
            heap,
            now,
            seq,
            next_packet_id,
            ..
        } = self;
        let node = &mut nodes[index];
        let ctx = Context {
            now: *now,
            self_id: NodeId(index),
            rng: &mut rngs[index],
            heap,
            seq,
            next_packet_id,
        };
        (node, ctx)
    }
}

/// The engine facilities a node may use while handling an event.
pub struct Context<'a> {
    now: SimTime,
    self_id: NodeId,
    /// The node's private RNG stream.
    pub rng: &'a mut Xoshiro256StarStar,
    heap: &'a mut BinaryHeap<HeapEntry>,
    seq: &'a mut u64,
    next_packet_id: &'a mut u64,
}

impl Context<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node handling this event.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Deliver `packet` to `dst` after `delay`.
    pub fn send_after(&mut self, delay: SimDuration, dst: NodeId, packet: Packet) {
        let time = self.now + delay;
        let seq = *self.seq;
        *self.seq += 1;
        self.heap.push(HeapEntry {
            time,
            seq,
            target: dst.0,
            kind: EventKind::Deliver(packet),
        });
    }

    /// Deliver `packet` to `dst` at the current timestamp (ordered after
    /// everything already scheduled for this instant).
    pub fn send_now(&mut self, dst: NodeId, packet: Packet) {
        self.send_after(SimDuration::ZERO, dst, packet);
    }

    /// Arm a timer on the *calling* node: `on_timer(tag)` fires after
    /// `delay`.
    pub fn schedule_timer(&mut self, delay: SimDuration, tag: u64) {
        let time = self.now + delay;
        let seq = *self.seq;
        *self.seq += 1;
        self.heap.push(HeapEntry {
            time,
            seq,
            target: self.self_id.0,
            kind: EventKind::Timer(tag),
        });
    }

    /// Mint a new packet originating here and now, with a globally unique
    /// id.
    pub fn spawn_packet(&mut self, flow: FlowId, kind: PacketKind, size_bytes: u32) -> Packet {
        let id = *self.next_packet_id;
        *self.next_packet_id += 1;
        Packet::new(id, flow, kind, size_bytes, self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Records every (time, note) it sees into a shared log.
    struct Recorder {
        log: Arc<Mutex<Vec<(u64, String)>>>,
    }
    impl Node for Recorder {
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            self.log
                .lock()
                .unwrap()
                .push((ctx.now().as_nanos(), format!("pkt {}", p.id)));
        }
        fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_>) {
            self.log
                .lock()
                .unwrap()
                .push((ctx.now().as_nanos(), format!("timer {tag}")));
        }
    }

    /// Emits `count` packets to `dst` every `period` nanoseconds.
    struct Ticker {
        dst: NodeId,
        period: u64,
        count: u64,
        emitted: u64,
    }
    impl Node for Ticker {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.schedule_timer(SimDuration::from_nanos(self.period), 0);
        }
        fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_>) {
            let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 500);
            ctx.send_now(self.dst, pkt);
            self.emitted += 1;
            if self.emitted < self.count {
                ctx.schedule_timer(SimDuration::from_nanos(self.period), 0);
            }
        }
    }

    fn logger() -> (Arc<Mutex<Vec<(u64, String)>>>, Box<Recorder>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        (log.clone(), Box::new(Recorder { log }))
    }

    #[test]
    fn build_errors() {
        let b = SimBuilder::new(MasterSeed::new(1));
        assert!(matches!(b.build(), Err(BuildError::Empty)));
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let _hole = b.reserve();
        assert!(matches!(b.build(), Err(BuildError::MissingNode(0))));
    }

    #[test]
    #[should_panic(expected = "installed twice")]
    fn double_install_panics() {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (_, rec) = logger();
        let id = b.reserve();
        b.install(id, rec);
        let (_, rec2) = logger();
        b.install(id, rec2);
    }

    #[test]
    fn ticker_emits_on_schedule() {
        let mut b = SimBuilder::new(MasterSeed::new(2));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 1000,
            count: 5,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        let stats = sim.run_until(SimTime::from_nanos(10_000));
        // 5 timer fires + 5 deliveries
        assert_eq!(stats.events, 10);
        let log = log.lock().unwrap();
        let times: Vec<u64> = log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![1000, 2000, 3000, 4000, 5000]);
    }

    #[test]
    fn events_fire_in_time_then_fifo_order() {
        let mut b = SimBuilder::new(MasterSeed::new(3));
        let (log, rec) = logger();
        let dst = b.add_node(rec);

        /// Schedules three deliveries at the same instant plus one earlier.
        struct Burst {
            dst: NodeId,
        }
        impl Node for Burst {
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let a = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                let b_ = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                let c = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                let d = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                ctx.send_after(SimDuration::from_nanos(500), self.dst, a); // id 0
                ctx.send_after(SimDuration::from_nanos(500), self.dst, b_); // id 1
                ctx.send_after(SimDuration::from_nanos(100), self.dst, c); // id 2, earlier
                ctx.send_after(SimDuration::from_nanos(500), self.dst, d); // id 3
            }
        }
        b.add_node(Box::new(Burst { dst }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_nanos(1_000));
        let log = log.lock().unwrap();
        let order: Vec<String> = log.iter().map(|(_, s)| s.clone()).collect();
        assert_eq!(order, vec!["pkt 2", "pkt 0", "pkt 1", "pkt 3"]);
    }

    #[test]
    fn run_until_respects_bound_and_resumes() {
        let mut b = SimBuilder::new(MasterSeed::new(4));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 1000,
            count: 10,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_nanos(3_000));
        assert_eq!(log.lock().unwrap().len(), 3);
        assert_eq!(sim.now(), SimTime::from_nanos(3_000));
        sim.run_until(SimTime::from_nanos(10_000));
        assert_eq!(log.lock().unwrap().len(), 10);
    }

    #[test]
    fn run_for_advances_relative_to_now() {
        let mut b = SimBuilder::new(MasterSeed::new(5));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 1000,
            count: 100,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.run_for(SimDuration::from_nanos(2_500));
        sim.run_for(SimDuration::from_nanos(2_500));
        assert_eq!(log.lock().unwrap().len(), 5); // events at 1..5 µs
        assert_eq!(sim.now(), SimTime::from_nanos(5_000));
    }

    #[test]
    fn step_processes_one_event() {
        let mut b = SimBuilder::new(MasterSeed::new(6));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 10,
            count: 2,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        assert!(sim.step()); // timer 1
        assert!(sim.step()); // delivery 1
        assert_eq!(log.lock().unwrap().len(), 1);
        assert!(sim.step());
        assert!(sim.step());
        assert!(!sim.step(), "heap must drain");
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    fn packet_ids_are_unique_across_nodes() {
        let mut b = SimBuilder::new(MasterSeed::new(7));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        for _ in 0..3 {
            b.add_node(Box::new(Ticker {
                dst,
                period: 100,
                count: 5,
                emitted: 0,
            }));
        }
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_nanos(10_000));
        let log = log.lock().unwrap();
        let mut ids: Vec<&String> = log.iter().map(|(_, s)| s).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate packet id observed");
        assert_eq!(before, 15);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run(seed: u64) -> Vec<(u64, String)> {
            let mut b = SimBuilder::new(MasterSeed::new(seed));
            let (log, rec) = logger();
            let dst = b.add_node(rec);
            b.add_node(Box::new(Ticker {
                dst,
                period: 777,
                count: 50,
                emitted: 0,
            }));
            let mut sim = b.build().unwrap();
            sim.run_until(SimTime::from_nanos(100_000));
            let out = log.lock().unwrap().clone();
            out
        }
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn node_count_reported() {
        let mut b = SimBuilder::new(MasterSeed::new(8));
        let (_, rec) = logger();
        b.add_node(rec);
        let sim = b.build().unwrap();
        assert_eq!(sim.node_count(), 1);
    }
}
