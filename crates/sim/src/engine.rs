//! The discrete-event engine: event store, dispatch loop, and the
//! [`Context`] handed to nodes.
//!
//! Events are processed in `(timestamp, sequence)` order; the sequence
//! number is a global monotone counter, so simultaneous events fire in
//! the order they were scheduled (FIFO tie-breaking). That rule is what
//! makes simulations bit-for-bit deterministic.
//!
//! The event store is the calendar queue of [`crate::equeue`] — a slab
//! arena plus a near/far split — rather than a `BinaryHeap`: pops are
//! `O(1)`, pushes are an append, and ordering work happens in cache-sized
//! sorted batches. Consecutive deliveries to the same node at the same
//! instant are dispatched as one [`Node::on_packets`] batch, amortizing
//! the virtual call per packet to a virtual call per burst.

use crate::equeue::{Diag, Event, EventKind, EventQueue};
use crate::node::{Node, NodeId};
use crate::packet::{FlowId, Packet, PacketKind};
use crate::time::{SimDuration, SimTime};
// The causal-trace recorder gets an alias: `linkpad_sim` has its own
// (packet-level) `trace::TraceRecorder` node, and the two must not be
// confused at a glance.
use linkpad_obs::trace::{TraceEventKind, TraceRecorder as CausalTrace};
use linkpad_obs::{EngineProfile, ProfileReport, StoreCounters, TraceReport};
use linkpad_stats::rng::{MasterSeed, Xoshiro256StarStar};

/// View the queue's cumulative op counters as obs store counters (the
/// profile subtracts an enable-time base so reports are span deltas).
fn store_counters(d: Diag) -> StoreCounters {
    StoreCounters {
        push_near: d.push_near,
        push_rung: d.push_rung,
        push_far: d.push_far,
        refills: d.refills,
        rebases: d.rebases,
        rebase_scanned: d.rebase_scanned,
        rebase_moved: d.rebase_moved,
    }
}

/// Error from [`SimBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A reserved node slot was never installed.
    MissingNode(usize),
    /// The simulation has no nodes at all.
    Empty,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::MissingNode(i) => write!(f, "reserved node slot {i} was never installed"),
            BuildError::Empty => write!(f, "simulation has no nodes"),
        }
    }
}
impl std::error::Error for BuildError {}

/// Builds a [`Sim`]: allocate node ids, wire nodes together, build.
///
/// Two construction styles are supported:
/// * downstream-first: `let sink = b.add_node(...); let link = b.add_node(Link::to(sink, ...));`
/// * reserve-then-install, for wiring cycles or forward references:
///   `let id = b.reserve(); ...; b.install(id, node);`
pub struct SimBuilder {
    seed: MasterSeed,
    nodes: Vec<Option<Box<dyn Node>>>,
}

impl SimBuilder {
    /// Start building with the master seed that will drive every RNG
    /// stream in the simulation.
    pub fn new(seed: MasterSeed) -> Self {
        Self {
            seed,
            nodes: Vec::new(),
        }
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(Some(node));
        NodeId(self.nodes.len() - 1)
    }

    /// Reserve an id to be installed later (forward wiring).
    pub fn reserve(&mut self) -> NodeId {
        self.nodes.push(None);
        NodeId(self.nodes.len() - 1)
    }

    /// Install a node into a reserved slot.
    ///
    /// # Panics
    /// Panics if the slot is already occupied (a wiring bug worth failing
    /// loudly on at build time).
    pub fn install(&mut self, id: NodeId, node: Box<dyn Node>) {
        let slot = &mut self.nodes[id.0];
        assert!(slot.is_none(), "node slot {} installed twice", id.0);
        *slot = Some(node);
    }

    /// Finish building. Every node receives an independent RNG substream
    /// derived from `(seed, node index)`.
    pub fn build(self) -> Result<Sim, BuildError> {
        if self.nodes.is_empty() {
            return Err(BuildError::Empty);
        }
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for (i, slot) in self.nodes.into_iter().enumerate() {
            match slot {
                Some(n) => nodes.push(n),
                None => return Err(BuildError::MissingNode(i)),
            }
        }
        let rngs = (0..nodes.len())
            .map(|i| self.seed.stream(i as u64))
            .collect();
        // Pre-size the event arena: a handful of in-flight events per
        // node is typical; the arena grows on demand beyond that.
        let cap = nodes.len() * 8;
        Ok(Sim {
            nodes,
            rngs,
            queue: EventQueue::with_capacity(cap),
            deliver_buf: Vec::with_capacity(16),
            now: SimTime::ZERO,
            seq: 0,
            next_packet_id: 0,
            started: false,
            events_processed: 0,
            watchdog: None,
            watchdog_tripped: false,
            profile: None,
            trace: None,
        })
    }
}

/// Run budget enforced inside the event loop (see [`Sim::set_watchdog`]).
#[derive(Debug, Clone, Copy)]
struct Watchdog {
    max_events: Option<u64>,
    max_wall: Option<std::time::Duration>,
    deadline: Option<std::time::Instant>,
}

/// Statistics from a run segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Events dispatched during the segment.
    pub events: u64,
    /// Simulation clock at the end of the segment.
    pub ended_at_nanos: u64,
}

/// A single discrete-event simulation instance.
pub struct Sim {
    nodes: Vec<Box<dyn Node>>,
    rngs: Vec<Xoshiro256StarStar>,
    queue: EventQueue,
    /// Reused batch buffer for same-instant deliveries to one node.
    deliver_buf: Vec<Packet>,
    now: SimTime,
    seq: u64,
    next_packet_id: u64,
    started: bool,
    events_processed: u64,
    watchdog: Option<Watchdog>,
    watchdog_tripped: bool,
    /// Engine self-profile, recorded only while enabled. Boxed so the
    /// disabled (overwhelmingly common) case costs one pointer of state
    /// and the run loop one branch per run call — mirrors the watchdog.
    profile: Option<Box<EngineProfile>>,
    /// Causal trace recorder, recorded only while enabled — same
    /// one-pointer/one-branch disabled contract as the profile. The
    /// queue's provenance hook ([`EventQueue::trace_arm`]) is armed
    /// exactly while this is `Some`.
    trace: Option<Box<CausalTrace>>,
}

impl Sim {
    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of events currently pending in the event store.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Rewind the simulation to its as-built state under a (possibly
    /// new) master seed, reusing the whole topology: nodes keep their
    /// wiring and configuration but drop all runtime state
    /// ([`Node::reset`]), the event store is cleared with every
    /// allocation retained ([`EventQueue::clear`]), and each node's RNG
    /// stream is re-derived from `(seed, node index)` exactly as
    /// [`SimBuilder::build`] did.
    ///
    /// Contract: `sim.reset(s)` followed by a run is bit-identical to a
    /// fresh build with master seed `s` followed by the same run. This
    /// is the scenario-reset fast path — sweeps re-run a topology
    /// hundreds of times with per-replication seeds without paying the
    /// build cost (node boxing, arena growth, buffer warm-up) each time.
    pub fn reset(&mut self, seed: MasterSeed) {
        self.queue.clear();
        self.deliver_buf.clear();
        for (i, rng) in self.rngs.iter_mut().enumerate() {
            *rng = seed.stream(i as u64);
        }
        for node in &mut self.nodes {
            node.reset();
        }
        self.now = SimTime::ZERO;
        self.seq = 0;
        self.next_packet_id = 0;
        self.started = false;
        self.events_processed = 0;
        // Re-arm the watchdog: the tripped flag is runtime state, the
        // budget is configuration (the wall-clock deadline restarts).
        self.watchdog_tripped = false;
        if let Some(wd) = &mut self.watchdog {
            wd.deadline = wd.max_wall.map(|d| std::time::Instant::now() + d);
        }
        // An enabled profile re-zeros with the post-clear cumulative
        // queue counters as its new base, so a reset-then-run profile
        // is bit-identical to a fresh-build-then-run profile.
        if let Some(p) = &mut self.profile {
            p.reset(store_counters(self.queue.diag()));
        }
        // Same contract for an enabled trace (the queue's provenance
        // hook was already re-zeroed by `clear()` above, staying armed).
        if let Some(t) = &mut self.trace {
            t.reset();
        }
    }

    /// Enable engine self-profiling: same-instant batch sizes, the
    /// timer/delivery event mix, a sim-time-stamped pending-depth
    /// series with per-rung peaks, and event-store op counters over the
    /// profiled span. Profiles are a pure function of `(spec, seed)` —
    /// bit-identical across reruns and resets. Enabling on an already
    /// profiled sim restarts the profile from now. While enabled, runs
    /// take an outlined profiled loop (cost asserted <1 % disabled,
    /// and reported while enabled, by `perf_baseline`).
    pub fn enable_profiling(&mut self) {
        let base = store_counters(self.queue.diag());
        match &mut self.profile {
            Some(p) => p.reset(base),
            None => self.profile = Some(Box::new(EngineProfile::new(base))),
        }
    }

    /// Drop the engine profile (if any) and return runs to the plain
    /// un-instrumented loop.
    pub fn disable_profiling(&mut self) {
        self.profile = None;
    }

    /// Is engine self-profiling currently enabled?
    pub fn profiling_enabled(&self) -> bool {
        self.profile.is_some()
    }

    /// Snapshot the engine profile accumulated since
    /// [`Sim::enable_profiling`] (or the last [`Sim::reset`]), or
    /// `None` when profiling is disabled.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.profile
            .as_ref()
            .map(|p| p.report(store_counters(self.queue.diag())))
    }

    /// Enable causal tracing: every dispatch records `(seq, parent seq,
    /// sim time, node, kind, batch size)` into a bounded decimating
    /// ring, with the **parent** threaded through the scheduler — the
    /// queue logs, for each scheduled event, which event's handler
    /// scheduled it. Traces are a pure function of `(spec, seed)`, like
    /// profiles. Enabling on an already traced sim restarts the trace
    /// from now. While enabled, runs take an outlined traced loop (cost
    /// asserted <1 % *disabled*, and reported while enabled, by
    /// `perf_baseline`).
    pub fn enable_tracing(&mut self) {
        match &mut self.trace {
            Some(t) => t.reset(),
            None => {
                let labels = self
                    .nodes
                    .iter()
                    .map(|n| n.label().to_string())
                    .collect::<Vec<_>>();
                self.trace = Some(Box::new(CausalTrace::new(labels)));
            }
        }
        self.queue.trace_arm();
    }

    /// Drop the causal trace (if any), disarm the queue's provenance
    /// hook, and return runs to the plain un-instrumented loop.
    pub fn disable_tracing(&mut self) {
        self.trace = None;
        self.queue.trace_disarm();
    }

    /// Is causal tracing currently enabled?
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Snapshot the causal trace accumulated since
    /// [`Sim::enable_tracing`] (or the last [`Sim::reset`]), or `None`
    /// when tracing is disabled.
    pub fn trace_report(&self) -> Option<TraceReport> {
        self.trace.as_ref().map(|t| t.report())
    }

    /// Builder-style [`Sim::enable_tracing`], for construction chains.
    #[must_use]
    pub fn with_tracing(mut self) -> Self {
        self.enable_tracing();
        self
    }

    /// Arm a run budget: the event loop ends a run early — leaving a
    /// partial but internally consistent state — once `max_events`
    /// total events have been dispatched or `max_wall` wall-clock time
    /// has elapsed (measured from arming; checked every 1024 events to
    /// keep `Instant::now` off the per-event path). A tripped run sets
    /// [`Sim::watchdog_tripped`] and subsequent runs are no-ops until
    /// the budget is re-armed or the sim is [`Sim::reset`]. This is the
    /// harness's defense against runaway shard sims hanging a CI job:
    /// the caller gets back everything simulated up to the trip point
    /// and can mark the tail windows invalid instead of blocking
    /// forever.
    pub fn set_watchdog(&mut self, max_events: Option<u64>, max_wall: Option<std::time::Duration>) {
        self.watchdog = Some(Watchdog {
            max_events,
            max_wall,
            deadline: max_wall.map(|d| std::time::Instant::now() + d),
        });
        self.watchdog_tripped = false;
    }

    /// Remove any armed watchdog budget and clear the tripped flag.
    pub fn clear_watchdog(&mut self) {
        self.watchdog = None;
        self.watchdog_tripped = false;
    }

    /// Did a watchdog budget end a run early? (Sticky until the next
    /// [`Sim::reset`], [`Sim::set_watchdog`] or [`Sim::clear_watchdog`].)
    pub fn watchdog_tripped(&self) -> bool {
        self.watchdog_tripped
    }

    /// Run until the clock reaches `until` (events at exactly `until` are
    /// processed) or the event store drains, whichever comes first. An
    /// armed watchdog budget ([`Sim::set_watchdog`]) may end the run
    /// early.
    pub fn run_until(&mut self, until: SimTime) -> RunStats {
        // Unarmed, unprofiled sims — every benchmark and the
        // overwhelmingly common case — take two predictable branches
        // here and then the exact pre-watchdog function body.
        // Everything watchdog- and profile-related lives in outlined
        // variants so their control flow and code size never perturb
        // this loop's codegen.
        if self.watchdog.is_some() || self.watchdog_tripped {
            return self.run_until_guarded(until);
        }
        // Trace before profile: the traced loop also records into an
        // enabled profile (via `record_profile`), the reverse does not.
        if self.trace.is_some() {
            return self.run_until_traced(until);
        }
        if self.profile.is_some() {
            return self.run_until_profiled(until);
        }
        self.ensure_started();
        let mut events = 0u64;
        while let Some(entry) = self.queue.pop_at_or_before(until) {
            self.now = entry.time;
            events += self.dispatch(entry);
        }
        // Advance the clock to the bound even if the store drained early,
        // so consecutive run_until calls observe monotone time.
        if self.now < until && until != SimTime::MAX {
            self.now = until;
        }
        self.events_processed += events;
        RunStats {
            events,
            ended_at_nanos: self.now.as_nanos(),
        }
    }

    /// [`Sim::run_until`] with an armed (or already tripped) watchdog:
    /// dispatch until the bound, the store draining, or the budget
    /// tripping. A tripped watchdog leaves the clock at the last event —
    /// the simulated-up-to point callers truncate partial results at —
    /// and makes subsequent runs no-ops until re-armed or reset.
    #[cold]
    #[inline(never)]
    fn run_until_guarded(&mut self, until: SimTime) -> RunStats {
        if self.watchdog_tripped {
            return RunStats {
                events: 0,
                ended_at_nanos: self.now.as_nanos(),
            };
        }
        let Some(wd) = self.watchdog else {
            // run_until only dispatches here with an armed or already
            // tripped watchdog, and tripped returned above — but if
            // that ever changes, degrade to the unarmed loop (watchdog
            // is None, so run_until takes its plain branch) rather
            // than panicking on a run path.
            return self.run_until(until);
        };
        self.ensure_started();
        let mut events = 0u64;
        let mut checks = 0u64;
        while let Some(entry) = self.queue.pop_at_or_before(until) {
            self.now = entry.time;
            let is_timer = matches!(entry.kind, EventKind::Timer(_));
            // Tracing composes with the watchdog the same way profiling
            // does: the guarded loop takes over the outer loop, the
            // traced dispatch keeps recording.
            let consumed = if self.trace.is_some() {
                self.dispatch_traced(entry)
            } else {
                self.dispatch(entry)
            };
            events += consumed;
            self.record_profile(is_timer, consumed);
            checks += 1;
            let events_over = wd
                .max_events
                .is_some_and(|m| self.events_processed + events >= m);
            let wall_over =
                checks & 1023 == 0 && wd.deadline.is_some_and(|d| std::time::Instant::now() >= d);
            if events_over || wall_over {
                self.watchdog_tripped = true;
                break;
            }
        }
        if self.now < until && until != SimTime::MAX && !self.watchdog_tripped {
            self.now = until;
        }
        self.events_processed += events;
        RunStats {
            events,
            ended_at_nanos: self.now.as_nanos(),
        }
    }

    /// [`Sim::run_until`] with engine self-profiling enabled (and no
    /// watchdog — the guarded variant records into the profile itself
    /// when both are armed): the plain loop plus per-event profile
    /// recording, outlined exactly like the watchdog so the
    /// un-instrumented loop's codegen is untouched.
    #[cold]
    #[inline(never)]
    fn run_until_profiled(&mut self, until: SimTime) -> RunStats {
        if self.profile.is_none() {
            // Only reachable if the routing in run_until changes; fall
            // back to the plain loop rather than panicking on a run
            // path.
            return self.run_until(until);
        }
        self.ensure_started();
        let mut events = 0u64;
        while let Some(entry) = self.queue.pop_at_or_before(until) {
            self.now = entry.time;
            let is_timer = matches!(entry.kind, EventKind::Timer(_));
            let consumed = self.dispatch(entry);
            events += consumed;
            self.record_profile(is_timer, consumed);
        }
        if self.now < until && until != SimTime::MAX {
            self.now = until;
        }
        self.events_processed += events;
        RunStats {
            events,
            ended_at_nanos: self.now.as_nanos(),
        }
    }

    /// [`Sim::run_until`] with causal tracing enabled (and no watchdog —
    /// the guarded variant dispatches through the traced path itself
    /// when both are armed): the profiled loop's shape with the traced
    /// dispatch, outlined so the plain loop's codegen is untouched.
    /// Also records into an enabled profile, so tracing and profiling
    /// compose.
    #[cold]
    #[inline(never)]
    fn run_until_traced(&mut self, until: SimTime) -> RunStats {
        if self.trace.is_none() {
            // Only reachable if the routing in run_until changes; fall
            // back to the plain loop rather than panicking on a run
            // path.
            return self.run_until(until);
        }
        self.ensure_started();
        let mut events = 0u64;
        while let Some(entry) = self.queue.pop_at_or_before(until) {
            self.now = entry.time;
            let is_timer = matches!(entry.kind, EventKind::Timer(_));
            let consumed = self.dispatch_traced(entry);
            events += consumed;
            self.record_profile(is_timer, consumed);
        }
        if self.now < until && until != SimTime::MAX {
            self.now = until;
        }
        self.events_processed += events;
        RunStats {
            events,
            ended_at_nanos: self.now.as_nanos(),
        }
    }

    /// Move pending scheduler birth records (child seq → parent seq)
    /// from the queue's log into the trace recorder's provenance map.
    /// Called at the top of every traced dispatch, so an event's birth
    /// is always in the map before the event fires or is absorbed into
    /// a batch.
    fn drain_births(&mut self) {
        let Some(t) = self.trace.as_deref_mut() else {
            return;
        };
        if let Some(log) = self.queue.trace_births_mut() {
            for (child, parent) in log.drain(..) {
                t.birth(child, parent);
            }
        }
    }

    /// [`Sim::dispatch`] plus trace recording. The event semantics are
    /// a deliberate line-for-line twin of the untraced dispatch — the
    /// traced≡untraced determinism test pins the two together — with
    /// provenance bookkeeping around the handler call: drain births,
    /// mark this event as the current parent, retire batched events'
    /// provenance as they are collected, record after the handler.
    #[cold]
    #[inline(never)]
    fn dispatch_traced(&mut self, entry: Event) -> u64 {
        self.drain_births();
        self.queue.trace_set_current(entry.seq);
        let target = entry.target;
        debug_assert!(target < self.nodes.len(), "event for unknown node");
        let (kind, consumed) = match entry.kind {
            EventKind::Timer(tag) => {
                let (node, mut ctx) = split_at(
                    &mut self.nodes,
                    &mut self.rngs,
                    &mut self.queue,
                    self.now,
                    &mut self.seq,
                    &mut self.next_packet_id,
                    target,
                );
                node.on_timer(tag, &mut ctx);
                (TraceEventKind::Timer, 1)
            }
            EventKind::Deliver(pkt) => {
                let mut batch = std::mem::take(&mut self.deliver_buf);
                batch.clear();
                batch.push(pkt);
                while let Some((tail_seq, next)) =
                    self.queue.pop_deliver_if_keyed(entry.time, target)
                {
                    batch.push(next);
                    // The batched event never fires on its own — retire
                    // its provenance entry here (its children attribute
                    // to the batch head, `entry.seq`).
                    if let Some(t) = self.trace.as_deref_mut() {
                        t.absorb(tail_seq);
                    }
                }
                let consumed = batch.len() as u64;
                let (node, mut ctx) = split_at(
                    &mut self.nodes,
                    &mut self.rngs,
                    &mut self.queue,
                    self.now,
                    &mut self.seq,
                    &mut self.next_packet_id,
                    target,
                );
                node.on_packets(&mut batch, &mut ctx);
                batch.clear();
                self.deliver_buf = batch;
                (TraceEventKind::Deliver, consumed)
            }
        };
        if let Some(t) = self.trace.as_deref_mut() {
            t.dispatched(
                entry.seq,
                self.now.as_nanos(),
                target as u32,
                kind,
                consumed as u32,
            );
        }
        consumed
    }

    /// [`Sim::run_until`] with per-node-type wall-time attribution: the
    /// plain dispatch split into its three phases — event-store work
    /// (pop + batch collection), [`Context`] build, and the node
    /// handler — with each sampled dispatch's phase times credited to
    /// the target node's label. A `perf_baseline` measurement harness
    /// (ROADMAP open item 4, "where do the ~50 ns/event go"), not a
    /// simulation feature: the sampler is write-only, so the simulated
    /// results are bit-identical to a plain run. Ignores the watchdog
    /// and profile (callers measure un-instrumented runs). All
    /// wall-clock reads live in [`crate::attr`] — this function calls
    /// only sampler methods.
    #[cold]
    #[inline(never)]
    pub fn run_until_attributed(
        &mut self,
        until: SimTime,
        sampler: &mut crate::attr::AttributionSampler,
    ) -> RunStats {
        self.ensure_started();
        let mut events = 0u64;
        loop {
            sampler.begin();
            let Some(entry) = self.queue.pop_at_or_before(until) else {
                break;
            };
            self.now = entry.time;
            let target = entry.target;
            debug_assert!(target < self.nodes.len(), "event for unknown node");
            let consumed = match entry.kind {
                EventKind::Timer(tag) => {
                    sampler.lap_store();
                    let (node, mut ctx) = split_at(
                        &mut self.nodes,
                        &mut self.rngs,
                        &mut self.queue,
                        self.now,
                        &mut self.seq,
                        &mut self.next_packet_id,
                        target,
                    );
                    sampler.lap_context();
                    node.on_timer(tag, &mut ctx);
                    1
                }
                EventKind::Deliver(pkt) => {
                    let mut batch = std::mem::take(&mut self.deliver_buf);
                    batch.clear();
                    batch.push(pkt);
                    while let Some(next) = self.queue.pop_deliver_if(entry.time, target) {
                        batch.push(next);
                    }
                    sampler.lap_store();
                    let consumed = batch.len() as u64;
                    let (node, mut ctx) = split_at(
                        &mut self.nodes,
                        &mut self.rngs,
                        &mut self.queue,
                        self.now,
                        &mut self.seq,
                        &mut self.next_packet_id,
                        target,
                    );
                    sampler.lap_context();
                    node.on_packets(&mut batch, &mut ctx);
                    batch.clear();
                    self.deliver_buf = batch;
                    consumed
                }
            };
            events += consumed;
            sampler.lap_node(self.nodes[target].label());
        }
        if self.now < until && until != SimTime::MAX {
            self.now = until;
        }
        self.events_processed += events;
        RunStats {
            events,
            ended_at_nanos: self.now.as_nanos(),
        }
    }

    /// Fold one dispatched event into the engine profile, sampling
    /// pending depth when due. A no-op when profiling is disabled (the
    /// profiled and guarded loops are the only callers on hot paths,
    /// and both are already outlined).
    fn record_profile(&mut self, is_timer: bool, consumed: u64) {
        if let Some(p) = &mut self.profile {
            if p.record_dispatch(is_timer, consumed) {
                let (_, _, _, near, rung, far) = self.queue.tier_state();
                p.sample_depth(
                    self.now.as_nanos(),
                    self.queue.len() as u64,
                    near as u64,
                    rung as u64,
                    far as u64,
                    &self.queue.rung_lens(),
                );
            }
        }
    }

    /// Run for a span from the current clock.
    pub fn run_for(&mut self, span: SimDuration) -> RunStats {
        let until = self.now + span;
        self.run_until(until)
    }

    /// Process a single event. Deliveries dispatch through
    /// [`Node::on_packets`] as a one-element batch, so nodes that
    /// implement only the batched hook behave identically under
    /// `step()` and [`Sim::run_until`]. Returns `false` when the event
    /// store is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        match self.queue.pop() {
            Some(entry) => {
                self.now = entry.time;
                let is_timer = matches!(entry.kind, EventKind::Timer(_));
                let (seq, target) = (entry.seq, entry.target as u32);
                if self.trace.is_some() {
                    self.drain_births();
                    self.queue.trace_set_current(seq);
                }
                self.dispatch_single(entry);
                self.events_processed += 1;
                if self.profile.is_some() {
                    self.record_profile(is_timer, 1);
                }
                if let Some(t) = self.trace.as_deref_mut() {
                    let kind = if is_timer {
                        TraceEventKind::Timer
                    } else {
                        TraceEventKind::Deliver
                    };
                    t.dispatched(seq, self.now.as_nanos(), target, kind, 1);
                }
                true
            }
            None => false,
        }
    }

    /// Dispatch one event without same-instant batching (deliveries
    /// still go through `on_packets`, as a batch of one).
    fn dispatch_single(&mut self, entry: Event) {
        let target = entry.target;
        debug_assert!(target < self.nodes.len(), "event for unknown node");
        match entry.kind {
            EventKind::Timer(tag) => {
                let (node, mut ctx) = split_at(
                    &mut self.nodes,
                    &mut self.rngs,
                    &mut self.queue,
                    self.now,
                    &mut self.seq,
                    &mut self.next_packet_id,
                    target,
                );
                node.on_timer(tag, &mut ctx);
            }
            EventKind::Deliver(pkt) => {
                let mut batch = std::mem::take(&mut self.deliver_buf);
                batch.clear();
                batch.push(pkt);
                let (node, mut ctx) = split_at(
                    &mut self.nodes,
                    &mut self.rngs,
                    &mut self.queue,
                    self.now,
                    &mut self.seq,
                    &mut self.next_packet_id,
                    target,
                );
                node.on_packets(&mut batch, &mut ctx);
                batch.clear();
                self.deliver_buf = batch;
            }
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let (node, mut ctx) = split_at(
                &mut self.nodes,
                &mut self.rngs,
                &mut self.queue,
                self.now,
                &mut self.seq,
                &mut self.next_packet_id,
                i,
            );
            node.on_start(&mut ctx);
        }
    }

    /// Dispatch one popped event, batching any immediately following
    /// deliveries for the same `(time, target)`. Returns the number of
    /// events consumed.
    fn dispatch(&mut self, entry: Event) -> u64 {
        let target = entry.target;
        debug_assert!(target < self.nodes.len(), "event for unknown node");
        match entry.kind {
            EventKind::Timer(tag) => {
                let (node, mut ctx) = split_at(
                    &mut self.nodes,
                    &mut self.rngs,
                    &mut self.queue,
                    self.now,
                    &mut self.seq,
                    &mut self.next_packet_id,
                    target,
                );
                node.on_timer(tag, &mut ctx);
                1
            }
            EventKind::Deliver(pkt) => {
                // Collect the run of same-instant deliveries to this node
                // *before* dispatching: anything the handlers schedule
                // gets a later seq and therefore sorts after this run, so
                // batching cannot reorder the original event sequence.
                let mut batch = std::mem::take(&mut self.deliver_buf);
                batch.clear();
                batch.push(pkt);
                while let Some(next) = self.queue.pop_deliver_if(entry.time, target) {
                    batch.push(next);
                }
                let consumed = batch.len() as u64;
                let (node, mut ctx) = split_at(
                    &mut self.nodes,
                    &mut self.rngs,
                    &mut self.queue,
                    self.now,
                    &mut self.seq,
                    &mut self.next_packet_id,
                    target,
                );
                node.on_packets(&mut batch, &mut ctx);
                batch.clear();
                self.deliver_buf = batch;
                consumed
            }
        }
    }
}

/// Split borrows: the node being dispatched and a context over the rest
/// of the engine state (queue, clock, counters, that node's RNG).
#[allow(clippy::too_many_arguments)]
fn split_at<'a>(
    nodes: &'a mut [Box<dyn Node>],
    rngs: &'a mut [Xoshiro256StarStar],
    queue: &'a mut EventQueue,
    now: SimTime,
    seq: &'a mut u64,
    next_packet_id: &'a mut u64,
    index: usize,
) -> (&'a mut Box<dyn Node>, Context<'a>) {
    let node = &mut nodes[index];
    let ctx = Context {
        now,
        self_id: NodeId(index),
        rng: &mut rngs[index],
        queue,
        seq,
        next_packet_id,
    };
    (node, ctx)
}

/// The engine facilities a node may use while handling an event.
pub struct Context<'a> {
    now: SimTime,
    self_id: NodeId,
    /// The node's private RNG stream.
    pub rng: &'a mut Xoshiro256StarStar,
    queue: &'a mut EventQueue,
    seq: &'a mut u64,
    next_packet_id: &'a mut u64,
}

impl Context<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node handling this event.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Deliver `packet` to `dst` after `delay`.
    pub fn send_after(&mut self, delay: SimDuration, dst: NodeId, packet: Packet) {
        let time = self.now + delay;
        let seq = *self.seq;
        *self.seq += 1;
        self.queue
            .push(time, seq, dst.0, EventKind::Deliver(packet));
    }

    /// Deliver `packet` to `dst` at the current timestamp (ordered after
    /// everything already scheduled for this instant).
    pub fn send_now(&mut self, dst: NodeId, packet: Packet) {
        self.send_after(SimDuration::ZERO, dst, packet);
    }

    /// Arm a timer on the *calling* node: `on_timer(tag)` fires after
    /// `delay`.
    pub fn schedule_timer(&mut self, delay: SimDuration, tag: u64) {
        let time = self.now + delay;
        let seq = *self.seq;
        *self.seq += 1;
        self.queue
            .push(time, seq, self.self_id.0, EventKind::Timer(tag));
    }

    /// Mint a new packet originating here and now, with a globally unique
    /// id.
    pub fn spawn_packet(&mut self, flow: FlowId, kind: PacketKind, size_bytes: u32) -> Packet {
        let id = *self.next_packet_id;
        *self.next_packet_id += 1;
        Packet::new(id, flow, kind, size_bytes, self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<(u64, String)>>>;

    /// Records every (time, note) it sees into a shared log.
    struct Recorder {
        log: Log,
    }
    impl Node for Recorder {
        fn on_packet(&mut self, p: Packet, ctx: &mut Context<'_>) {
            self.log
                .borrow_mut()
                .push((ctx.now().as_nanos(), format!("pkt {}", p.id)));
        }
        fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_>) {
            self.log
                .borrow_mut()
                .push((ctx.now().as_nanos(), format!("timer {tag}")));
        }
        fn reset(&mut self) {
            self.log.borrow_mut().clear();
        }
    }

    /// Emits `count` packets to `dst` every `period` nanoseconds.
    struct Ticker {
        dst: NodeId,
        period: u64,
        count: u64,
        emitted: u64,
    }
    impl Node for Ticker {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.schedule_timer(SimDuration::from_nanos(self.period), 0);
        }
        fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_>) {
            let pkt = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 500);
            ctx.send_now(self.dst, pkt);
            self.emitted += 1;
            if self.emitted < self.count {
                ctx.schedule_timer(SimDuration::from_nanos(self.period), 0);
            }
        }
        fn reset(&mut self) {
            self.emitted = 0;
        }
    }

    fn logger() -> (Log, Box<Recorder>) {
        let log = Rc::new(RefCell::new(Vec::new()));
        (log.clone(), Box::new(Recorder { log }))
    }

    #[test]
    fn build_errors() {
        let b = SimBuilder::new(MasterSeed::new(1));
        assert!(matches!(b.build(), Err(BuildError::Empty)));
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let _hole = b.reserve();
        assert!(matches!(b.build(), Err(BuildError::MissingNode(0))));
    }

    #[test]
    #[should_panic(expected = "installed twice")]
    fn double_install_panics() {
        let mut b = SimBuilder::new(MasterSeed::new(1));
        let (_, rec) = logger();
        let id = b.reserve();
        b.install(id, rec);
        let (_, rec2) = logger();
        b.install(id, rec2);
    }

    #[test]
    fn ticker_emits_on_schedule() {
        let mut b = SimBuilder::new(MasterSeed::new(2));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 1000,
            count: 5,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        let stats = sim.run_until(SimTime::from_nanos(10_000));
        // 5 timer fires + 5 deliveries
        assert_eq!(stats.events, 10);
        let log = log.borrow();
        let times: Vec<u64> = log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![1000, 2000, 3000, 4000, 5000]);
    }

    #[test]
    fn events_fire_in_time_then_fifo_order() {
        let mut b = SimBuilder::new(MasterSeed::new(3));
        let (log, rec) = logger();
        let dst = b.add_node(rec);

        /// Schedules three deliveries at the same instant plus one earlier.
        struct Burst {
            dst: NodeId,
        }
        impl Node for Burst {
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let a = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                let b_ = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                let c = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                let d = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                ctx.send_after(SimDuration::from_nanos(500), self.dst, a); // id 0
                ctx.send_after(SimDuration::from_nanos(500), self.dst, b_); // id 1
                ctx.send_after(SimDuration::from_nanos(100), self.dst, c); // id 2, earlier
                ctx.send_after(SimDuration::from_nanos(500), self.dst, d); // id 3
            }
        }
        b.add_node(Box::new(Burst { dst }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_nanos(1_000));
        let log = log.borrow();
        let order: Vec<String> = log.iter().map(|(_, s)| s.clone()).collect();
        assert_eq!(order, vec!["pkt 2", "pkt 0", "pkt 1", "pkt 3"]);
    }

    #[test]
    fn run_until_respects_bound_and_resumes() {
        let mut b = SimBuilder::new(MasterSeed::new(4));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 1000,
            count: 10,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_nanos(3_000));
        assert_eq!(log.borrow().len(), 3);
        assert_eq!(sim.now(), SimTime::from_nanos(3_000));
        sim.run_until(SimTime::from_nanos(10_000));
        assert_eq!(log.borrow().len(), 10);
    }

    #[test]
    fn run_for_advances_relative_to_now() {
        let mut b = SimBuilder::new(MasterSeed::new(5));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 1000,
            count: 100,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.run_for(SimDuration::from_nanos(2_500));
        sim.run_for(SimDuration::from_nanos(2_500));
        assert_eq!(log.borrow().len(), 5); // events at 1..5 µs
        assert_eq!(sim.now(), SimTime::from_nanos(5_000));
    }

    #[test]
    fn step_processes_one_event() {
        let mut b = SimBuilder::new(MasterSeed::new(6));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 10,
            count: 2,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        assert!(sim.step()); // timer 1
        assert!(sim.step()); // delivery 1
        assert_eq!(log.borrow().len(), 1);
        assert!(sim.step());
        assert!(sim.step());
        assert!(!sim.step(), "event store must drain");
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    fn watchdog_event_budget_ends_the_run_early_and_is_sticky() {
        let build = || {
            let mut b = SimBuilder::new(MasterSeed::new(8));
            let (log, rec) = logger();
            let dst = b.add_node(rec);
            b.add_node(Box::new(Ticker {
                dst,
                period: 1000,
                count: 100,
                emitted: 0,
            }));
            (log, b.build().unwrap())
        };
        let (log, mut sim) = build();
        sim.set_watchdog(Some(20), None);
        let stats = sim.run_until(SimTime::from_nanos(1_000_000));
        assert!(sim.watchdog_tripped());
        assert!(stats.events >= 20 && stats.events < 200, "{}", stats.events);
        // The clock stays at the last event, not the bound.
        assert!(sim.now() < SimTime::from_nanos(1_000_000));
        let partial = log.borrow().len();
        assert!(partial > 0 && partial < 100, "partial but non-empty");
        // Sticky: further runs make no progress until re-armed.
        let again = sim.run_until(SimTime::from_nanos(1_000_000));
        assert_eq!(again.events, 0);
        assert_eq!(log.borrow().len(), partial);
        // The partial prefix is bit-identical to an unbudgeted run's.
        let (full_log, mut full) = build();
        full.run_until(SimTime::from_nanos(1_000_000));
        assert_eq!(log.borrow()[..], full_log.borrow()[..partial]);
        // Re-arming (or reset) clears the trip and the run completes.
        sim.clear_watchdog();
        sim.run_until(SimTime::from_nanos(1_000_000));
        assert_eq!(log.borrow().len(), 100);
    }

    #[test]
    fn watchdog_reset_rearms_and_replays_identically() {
        let mut b = SimBuilder::new(MasterSeed::new(9));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 500,
            count: 50,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.set_watchdog(Some(10), None);
        sim.run_until(SimTime::from_nanos(100_000));
        assert!(sim.watchdog_tripped());
        sim.reset(MasterSeed::new(9));
        assert!(!sim.watchdog_tripped(), "reset re-arms the watchdog");
        log.borrow_mut().clear();
        sim.run_until(SimTime::from_nanos(100_000));
        assert!(sim.watchdog_tripped(), "budget applies again after reset");
        assert!(!log.borrow().is_empty());
    }

    #[test]
    fn zero_wall_budget_trips_without_hanging() {
        let mut b = SimBuilder::new(MasterSeed::new(10));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 10,
            count: 100_000,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.set_watchdog(None, Some(std::time::Duration::ZERO));
        sim.run_until(SimTime::MAX);
        assert!(sim.watchdog_tripped());
        // The wall check runs every 1024 events, so at most a couple of
        // thousand events slip through before the trip.
        assert!(log.borrow().len() < 100_000);
    }

    #[test]
    fn packet_ids_are_unique_across_nodes() {
        let mut b = SimBuilder::new(MasterSeed::new(7));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        for _ in 0..3 {
            b.add_node(Box::new(Ticker {
                dst,
                period: 100,
                count: 5,
                emitted: 0,
            }));
        }
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_nanos(10_000));
        let log = log.borrow();
        let mut ids: Vec<&String> = log.iter().map(|(_, s)| s).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate packet id observed");
        assert_eq!(before, 15);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run(seed: u64) -> Vec<(u64, String)> {
            let mut b = SimBuilder::new(MasterSeed::new(seed));
            let (log, rec) = logger();
            let dst = b.add_node(rec);
            b.add_node(Box::new(Ticker {
                dst,
                period: 777,
                count: 50,
                emitted: 0,
            }));
            let mut sim = b.build().unwrap();
            sim.run_until(SimTime::from_nanos(100_000));
            let out = log.borrow().clone();
            out
        }
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn reset_replays_bit_identically() {
        let mut b = SimBuilder::new(MasterSeed::new(77));
        let (log, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 777,
            count: 40,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.run_until(SimTime::from_nanos(100_000));
        let first = log.borrow().clone();
        assert!(!first.is_empty());
        assert!(sim.events_processed() > 0);

        sim.reset(MasterSeed::new(77));
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.events_processed(), 0);
        assert_eq!(sim.pending_events(), 0);
        assert!(log.borrow().is_empty(), "Recorder::reset cleared the log");
        sim.run_until(SimTime::from_nanos(100_000));
        assert_eq!(*log.borrow(), first, "reset run must replay exactly");

        // A reset mid-run (partially drained store) also rewinds cleanly.
        sim.reset(MasterSeed::new(77));
        sim.run_until(SimTime::from_nanos(3_000));
        sim.reset(MasterSeed::new(77));
        sim.run_until(SimTime::from_nanos(100_000));
        assert_eq!(*log.borrow(), first);
    }

    #[test]
    fn profiled_run_matches_plain_run_and_profiles_replay_bit_identically() {
        let build = || {
            let mut b = SimBuilder::new(MasterSeed::new(21));
            let (log, rec) = logger();
            let dst = b.add_node(rec);
            b.add_node(Box::new(Ticker {
                dst,
                period: 700,
                count: 400,
                emitted: 0,
            }));
            (log, b.build().unwrap())
        };
        // Plain run as the behavior reference.
        let (plain_log, mut plain) = build();
        let plain_stats = plain.run_until(SimTime::from_nanos(1_000_000));
        assert!(plain.profile_report().is_none());

        // Profiled run: identical node-visible behavior, full profile.
        let (prof_log, mut prof) = build();
        prof.enable_profiling();
        assert!(prof.profiling_enabled());
        let prof_stats = prof.run_until(SimTime::from_nanos(1_000_000));
        assert_eq!(prof_stats, plain_stats);
        assert_eq!(*prof_log.borrow(), *plain_log.borrow());
        let report = prof.profile_report().expect("profiling enabled");
        assert_eq!(report.events(), prof_stats.events);
        assert_eq!(report.timer_events, 400);
        assert_eq!(report.deliver_events, 400);
        assert!(report.store.push_near + report.store.push_rung + report.store.push_far > 0);

        // Reset-and-rerun produces a bit-identical profile.
        prof.reset(MasterSeed::new(21));
        prof.run_until(SimTime::from_nanos(1_000_000));
        let replay = prof.profile_report().expect("profiling survives reset");
        assert_eq!(replay, report);

        // ...and so does a fresh build with profiling enabled.
        let (_, mut fresh) = build();
        fresh.enable_profiling();
        fresh.run_until(SimTime::from_nanos(1_000_000));
        assert_eq!(fresh.profile_report().expect("enabled"), report);

        // Disabling drops the profile and returns to the plain loop.
        fresh.disable_profiling();
        assert!(fresh.profile_report().is_none());
    }

    #[test]
    fn traced_run_matches_plain_run_and_traces_replay_bit_identically() {
        let build = || {
            let mut b = SimBuilder::new(MasterSeed::new(31));
            let (log, rec) = logger();
            let dst = b.add_node(rec);
            b.add_node(Box::new(Ticker {
                dst,
                period: 700,
                count: 400,
                emitted: 0,
            }));
            (log, b.build().unwrap())
        };
        // Plain run as the behavior reference.
        let (plain_log, mut plain) = build();
        let plain_stats = plain.run_until(SimTime::from_nanos(1_000_000));
        assert!(plain.trace_report().is_none());

        // Traced run: identical node-visible behavior, full trace.
        let (traced_log, mut traced) = build();
        traced.enable_tracing();
        assert!(traced.tracing_enabled());
        let traced_stats = traced.run_until(SimTime::from_nanos(1_000_000));
        assert_eq!(
            traced_stats, plain_stats,
            "tracing must not perturb the run"
        );
        assert_eq!(*traced_log.borrow(), *plain_log.borrow());
        let report = traced.trace_report().expect("tracing enabled");
        assert_eq!(report.stride, 1, "800 dispatches fit the ring uncut");
        assert_eq!(report.dispatched, report.records.len() as u64);
        assert_eq!(report.node_labels.len(), 2);

        // Provenance is exact: the one root is the on_start timer;
        // every delivery's parent is a recorded timer at the same
        // instant (the ticker sends with send_now); every re-armed
        // timer's parent is the previous timer.
        use std::collections::BTreeMap;
        let by_seq: BTreeMap<u64, &linkpad_obs::TraceRecord> =
            report.records.iter().map(|r| (r.seq, r)).collect();
        let mut roots = 0;
        for r in &report.records {
            if r.parent == linkpad_obs::NO_PARENT {
                roots += 1;
                assert_eq!(r.kind, linkpad_obs::TraceEventKind::Timer);
                continue;
            }
            let parent = by_seq[&r.parent];
            assert_eq!(parent.kind, linkpad_obs::TraceEventKind::Timer);
            match r.kind {
                linkpad_obs::TraceEventKind::Deliver => {
                    assert_eq!(parent.sim_nanos, r.sim_nanos, "send_now child")
                }
                linkpad_obs::TraceEventKind::Timer => {
                    assert_eq!(parent.sim_nanos + 700, r.sim_nanos, "re-armed timer")
                }
            }
        }
        assert_eq!(roots, 1, "exactly one on_start root");

        // Reset-and-rerun produces a bit-identical trace.
        traced.reset(MasterSeed::new(31));
        traced.run_until(SimTime::from_nanos(1_000_000));
        assert_eq!(traced.trace_report().expect("survives reset"), report);

        // ...and so does a fresh build with tracing enabled.
        let (_, mut fresh) = build();
        fresh.enable_tracing();
        fresh.run_until(SimTime::from_nanos(1_000_000));
        assert_eq!(fresh.trace_report().expect("enabled"), report);

        // Disabling drops the trace and returns to the plain loop.
        fresh.disable_tracing();
        assert!(fresh.trace_report().is_none());
        assert!(!fresh.tracing_enabled());
    }

    #[test]
    fn no_parent_sentinels_agree_across_crates() {
        assert_eq!(crate::equeue::NO_PARENT_SEQ, linkpad_obs::NO_PARENT);
    }

    #[test]
    fn tracing_batches_attribute_to_the_head_and_count_every_event() {
        // Same topology as the batching test: 3 same-instant deliveries
        // plus a straggler — the batch must appear as one record of
        // batch 3 whose absorbed tails left no provenance leak.
        struct TripleSend {
            dst: NodeId,
        }
        impl Node for TripleSend {
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for _ in 0..3 {
                    let p = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                    ctx.send_after(SimDuration::from_nanos(10), self.dst, p);
                }
                let p = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                ctx.send_after(SimDuration::from_nanos(20), self.dst, p);
            }
        }
        let mut b = SimBuilder::new(MasterSeed::new(32));
        let (_, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(TripleSend { dst }));
        let mut sim = b.build().unwrap().with_tracing();
        let stats = sim.run_until(SimTime::from_nanos(100));
        assert_eq!(stats.events, 4);
        let report = sim.trace_report().expect("enabled");
        let batches: Vec<u32> = report.records.iter().map(|r| r.batch).collect();
        assert_eq!(batches, vec![3, 1], "burst batched, straggler alone");
        assert!(report
            .records
            .iter()
            .all(|r| r.parent == linkpad_obs::NO_PARENT));
    }

    #[test]
    fn tracing_and_profiling_compose() {
        let mut b = SimBuilder::new(MasterSeed::new(33));
        let (_, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 100,
            count: 50,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.enable_profiling();
        sim.enable_tracing();
        let stats = sim.run_until(SimTime::MAX);
        let profile = sim.profile_report().expect("profile recorded");
        assert_eq!(profile.events(), stats.events, "traced loop feeds profile");
        let trace = sim.trace_report().expect("trace recorded");
        assert_eq!(
            trace
                .records
                .iter()
                .map(|r| u64::from(r.batch))
                .sum::<u64>(),
            stats.events,
            "trace covers every event"
        );
    }

    #[test]
    fn watchdog_and_tracing_compose() {
        let mut b = SimBuilder::new(MasterSeed::new(34));
        let (_, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 100,
            count: 1000,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.enable_tracing();
        sim.set_watchdog(Some(50), None);
        let stats = sim.run_until(SimTime::MAX);
        assert!(sim.watchdog_tripped());
        let trace = sim.trace_report().expect("trace recorded under watchdog");
        assert_eq!(
            trace
                .records
                .iter()
                .map(|r| u64::from(r.batch))
                .sum::<u64>(),
            stats.events
        );
    }

    #[test]
    fn step_records_into_the_trace() {
        let mut b = SimBuilder::new(MasterSeed::new(35));
        let (_, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 10,
            count: 3,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.enable_tracing();
        while sim.step() {}
        let trace = sim.trace_report().expect("enabled");
        assert_eq!(trace.dispatched, sim.events_processed());
        // Stepped deliveries still know their scheduling timer.
        let deliver_parents: Vec<u64> = trace
            .records
            .iter()
            .filter(|r| r.kind == linkpad_obs::TraceEventKind::Deliver)
            .map(|r| r.parent)
            .collect();
        assert_eq!(deliver_parents.len(), 3);
        assert!(deliver_parents.iter().all(|&p| p != linkpad_obs::NO_PARENT));
    }

    #[test]
    fn attributed_run_matches_plain_run() {
        let build = || {
            let mut b = SimBuilder::new(MasterSeed::new(36));
            let (log, rec) = logger();
            let dst = b.add_node(rec);
            b.add_node(Box::new(Ticker {
                dst,
                period: 700,
                count: 200,
                emitted: 0,
            }));
            (log, b.build().unwrap())
        };
        let (plain_log, mut plain) = build();
        let plain_stats = plain.run_until(SimTime::from_nanos(1_000_000));
        let (attr_log, mut attr) = build();
        let mut sampler = crate::attr::AttributionSampler::new(4);
        let attr_stats = attr.run_until_attributed(SimTime::from_nanos(1_000_000), &mut sampler);
        assert_eq!(attr_stats, plain_stats, "sampler must not perturb the run");
        assert_eq!(*attr_log.borrow(), *plain_log.borrow());
        let report = sampler.report();
        assert_eq!(
            report.dispatches_seen,
            400 + 1,
            "400 dispatches + final probe"
        );
        assert!(report.samples() >= 100, "every 4th of 400 dispatches");
        // Both node labels appear (default label for both test nodes).
        assert!(!report.rows.is_empty());
        assert_eq!(
            report.rows.iter().map(|r| r.samples).sum::<u64>(),
            report.samples()
        );
    }

    #[test]
    fn watchdog_and_profiling_compose() {
        let mut b = SimBuilder::new(MasterSeed::new(22));
        let (_, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 100,
            count: 1000,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.enable_profiling();
        sim.set_watchdog(Some(50), None);
        let stats = sim.run_until(SimTime::MAX);
        assert!(sim.watchdog_tripped());
        let report = sim
            .profile_report()
            .expect("profile recorded under watchdog");
        assert_eq!(report.events(), stats.events);
    }

    #[test]
    fn step_records_into_the_profile() {
        let mut b = SimBuilder::new(MasterSeed::new(23));
        let (_, rec) = logger();
        let dst = b.add_node(rec);
        b.add_node(Box::new(Ticker {
            dst,
            period: 10,
            count: 3,
            emitted: 0,
        }));
        let mut sim = b.build().unwrap();
        sim.enable_profiling();
        while sim.step() {}
        let report = sim.profile_report().expect("enabled");
        assert_eq!(report.events(), sim.events_processed());
        assert_eq!(report.timer_events, 3);
        assert_eq!(report.deliver_events, 3);
    }

    #[test]
    fn node_count_reported() {
        let mut b = SimBuilder::new(MasterSeed::new(8));
        let (_, rec) = logger();
        b.add_node(rec);
        let sim = b.build().unwrap();
        assert_eq!(sim.node_count(), 1);
    }

    #[test]
    fn same_instant_deliveries_are_batched_into_one_call() {
        /// Counts on_packets invocations and packets per invocation.
        struct BatchProbe {
            calls: Rc<RefCell<Vec<usize>>>,
        }
        impl Node for BatchProbe {
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {
                unreachable!("on_packets override consumes the batch");
            }
            fn on_packets(&mut self, packets: &mut Vec<Packet>, _ctx: &mut Context<'_>) {
                self.calls.borrow_mut().push(packets.len());
                packets.clear();
            }
        }
        struct TripleSend {
            dst: NodeId,
        }
        impl Node for TripleSend {
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for _ in 0..3 {
                    let p = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                    ctx.send_after(SimDuration::from_nanos(10), self.dst, p);
                }
                let p = ctx.spawn_packet(FlowId::PADDED, PacketKind::Dummy, 1);
                ctx.send_after(SimDuration::from_nanos(20), self.dst, p);
            }
        }
        let calls = Rc::new(RefCell::new(Vec::new()));
        let mut b = SimBuilder::new(MasterSeed::new(9));
        let dst = b.add_node(Box::new(BatchProbe {
            calls: calls.clone(),
        }));
        b.add_node(Box::new(TripleSend { dst }));
        let mut sim = b.build().unwrap();
        let stats = sim.run_until(SimTime::from_nanos(100));
        assert_eq!(stats.events, 4, "all four deliveries counted");
        assert_eq!(
            *calls.borrow(),
            vec![3, 1],
            "burst batched, straggler alone"
        );
    }
}
